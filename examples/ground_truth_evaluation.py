#!/usr/bin/env python3
"""Evaluate community-search methods against planted ground truth (Figure 12).

This example runs the full quality pipeline of the paper's Exp-3 on one of
the built-in synthetic networks: draw query sets from single ground-truth
communities, run MDC, QDC, Truss and LCTC for each query, and report the mean
F1 score, runtime and community size per method.

Run with::

    python examples/ground_truth_evaluation.py [dataset] [num_queries]

where ``dataset`` is one of the registry names (default ``dblp-like``) and
``num_queries`` defaults to 15.
"""

from __future__ import annotations

import sys

from repro import build_index
from repro.datasets import dataset_names, ground_truth_query_sets, load_dataset
from repro.experiments.config import QUICK_CONFIG
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_method_on_queries, score_against_ground_truth

METHODS = ("mdc", "qdc", "truss", "lctc")


def main(argv: list[str]) -> int:
    dataset = argv[1] if len(argv) > 1 else "dblp-like"
    num_queries = int(argv[2]) if len(argv) > 2 else 15
    if dataset not in dataset_names():
        print(f"unknown dataset {dataset!r}; choose from {', '.join(dataset_names())}")
        return 2

    network = load_dataset(dataset)
    graph = network.graph
    print(
        f"dataset {dataset}: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges, {len(network.communities)} ground-truth communities"
    )
    print(f"running {num_queries} query sets per method...\n")

    index = build_index(graph)
    pairs = ground_truth_query_sets(network, num_queries, size_range=(1, 8), seed=42)
    queries = [query for query, _truth in pairs]
    truths = [truth for _query, truth in pairs]

    rows = []
    for method in METHODS:
        run = run_method_on_queries(method, graph, index, queries, QUICK_CONFIG, eta=200)
        rows.append(
            {
                "method": method,
                "f1": score_against_ground_truth(run, truths),
                "time_s": run.mean_elapsed,
                "nodes": run.mean_nodes,
                "edges": run.mean_edges,
                "failures": run.failures,
            }
        )

    print(format_table(rows, title=f"Figure 12-style evaluation on {dataset}"))
    best = max(rows, key=lambda row: row["f1"])
    print(f"\nbest-aligned method on this workload: {best['method']} (F1 = {best['f1']:.3f})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
