#!/usr/bin/env python3
"""Demonstrate the free-rider effect and how the CTC model avoids it.

Section 3.2 of the paper defines the free-rider effect: a community
definition suffers from it when bolting a query-independent dense subgraph
onto the answer does not hurt the goodness metric.  This example shows, on a
synthetic social network:

1. the maximal connected k-truss (the ``Truss`` baseline) drags in nodes far
   from the query — the free riders;
2. the CTC algorithms (BulkDelete and LCTC) trim them while keeping the same
   trussness;
3. the retained percentage, density and diameter before/after, which is
   exactly what Figures 5-10 of the paper measure.

Run with::

    python examples/free_rider_demo.py
"""

from __future__ import annotations

from repro import build_index, search
from repro.ctc.free_rider import free_riders, retained_node_percentage
from repro.datasets import ground_truth_query_sets, load_dataset
from repro.graph.traversal import query_distances


def main() -> None:
    network = load_dataset("facebook-like")
    graph = network.graph
    print(
        f"facebook-like network: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges\n"
    )
    index = build_index(graph)

    # Pick a query from inside one planted community.
    (query, community), *_ = ground_truth_query_sets(network, 1, size_range=(3, 3), seed=11)
    print(f"query nodes: {sorted(query)} (drawn from a planted community of size {len(community)})\n")

    reference = search(index, query, method="truss")
    print("[truss] the raw maximal connected k-truss G0")
    print(f"  trussness {reference.trussness}, nodes {reference.num_nodes}, "
          f"density {reference.density():.2f}, diameter {reference.diameter()}")

    for method in ("bulk-delete", "lctc"):
        result = search(index, query, method=method, eta=200)
        riders = free_riders(result.graph, reference.graph)
        kept = retained_node_percentage(result.graph, reference.graph)
        print(f"\n[{method}]")
        print(f"  trussness {result.trussness}, nodes {result.num_nodes}, "
              f"density {result.density():.2f}, diameter {result.diameter()}")
        print(f"  kept {kept:.0f}% of G0's nodes, removed {len(riders)} free riders")
        if riders:
            distances = query_distances(reference.graph, query)
            farthest = max(riders, key=lambda node: distances.get(node, 0))
            print(
                f"  farthest removed node sits {distances[farthest]:.0f} hops from the "
                f"query inside G0"
            )

    print(
        "\nThe trimmed communities keep the maximum trussness while dropping the\n"
        "distant riders, which is the defining behaviour of the closest truss\n"
        "community model."
    )


if __name__ == "__main__":
    main()
