#!/usr/bin/env python3
"""Quickstart: find the closest truss community in a small graph.

This walks through the paper's running example (Figure 1): a 12-node graph
with three dense 4-cliques, a handful of stitching edges, and one weakly
attached node ``t``.  For the query ``{q1, q2, q3}`` the maximal connected
4-truss contains three "free rider" nodes (p1, p2, p3) that are far from q1;
the closest-truss-community algorithms remove them.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_index, search
from repro.datasets import figure_1_graph, figure_1_query


def main() -> None:
    graph = figure_1_graph()
    query = list(figure_1_query())
    print(f"graph: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges")
    print(f"query: {query}")
    print()

    # Build the truss index once; it can be reused for any number of queries.
    index = build_index(graph)
    print(f"truss index: max trussness = {index.max_trussness()}")
    print()

    for method in ("truss", "basic", "bulk-delete", "lctc"):
        result = search(index, query, method=method, eta=50)
        members = ", ".join(sorted(result.nodes, key=str))
        print(f"[{method}]")
        print(f"  trussness : {result.trussness}")
        print(f"  nodes     : {result.num_nodes}  ({members})")
        print(f"  diameter  : {result.diameter()}")
        print(f"  density   : {result.density():.2f}")
        print(f"  time      : {result.elapsed_seconds * 1000:.1f} ms")
        print()

    print(
        "Note how 'truss' (the raw maximal connected 4-truss) keeps the free\n"
        "riders p1, p2, p3 while 'basic' and 'lctc' return the tight 8-node\n"
        "community of Figure 1(b) with diameter 3."
    )


if __name__ == "__main__":
    main()
