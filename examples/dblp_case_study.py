#!/usr/bin/env python3
"""The Figure 11 case study: who is in the community of four DB researchers?

The paper queries the DBLP co-authorship graph with {Alon Y. Halevy,
Michael J. Franklin, Jeffrey D. Ullman, Jennifer Widom}.  The raw maximal
connected 9-truss around them has 73 authors, most only loosely related to
all four; LCTC trims it to a 14-author, density-0.89 community of senior
database researchers.

The raw DBLP dump is not bundled, so this example runs on the synthetic
collaboration network of :mod:`repro.datasets.collaboration`, which plants
the same structure (a dense senior core plus satellite research groups that
act as free riders).

Run with::

    python examples/dblp_case_study.py
"""

from __future__ import annotations

from repro import build_index, search
from repro.ctc.free_rider import free_riders, retained_node_percentage
from repro.datasets import CASE_STUDY_QUERY, build_collaboration_network


def describe(label: str, result) -> None:
    print(f"[{label}]")
    print(f"  authors   : {result.num_nodes}")
    print(f"  edges     : {result.num_edges}")
    print(f"  trussness : {result.trussness}")
    print(f"  density   : {result.density():.2f}")
    print(f"  diameter  : {result.diameter()}")
    print()


def main() -> None:
    network = build_collaboration_network()
    graph = network.graph
    print(
        f"collaboration network: {graph.number_of_nodes()} authors, "
        f"{graph.number_of_edges()} co-authorship edges"
    )
    print(f"query authors: {', '.join(CASE_STUDY_QUERY)}")
    print()

    index = build_index(graph)

    # Figure 11(a): the raw maximal connected k-truss containing the query.
    truss_result = search(index, list(CASE_STUDY_QUERY), method="truss")
    describe("G0 — maximal connected k-truss (Figure 11a)", truss_result)

    # Figure 11(b): the closest truss community found by LCTC.
    lctc_result = search(index, list(CASE_STUDY_QUERY), method="lctc", eta=300)
    describe("LCTC — closest truss community (Figure 11b)", lctc_result)

    print("community members found by LCTC:")
    for author in sorted(lctc_result.nodes, key=str):
        marker = "*" if author in CASE_STUDY_QUERY else " "
        print(f"  {marker} {author}")
    print()

    removed = free_riders(lctc_result.graph, truss_result.graph)
    kept = retained_node_percentage(lctc_result.graph, truss_result.graph)
    print(
        f"LCTC kept {kept:.0f}% of the G0 authors and removed {len(removed)} free riders\n"
        f"(satellite-group and peripheral authors loosely tied to the query)."
    )


if __name__ == "__main__":
    main()
