"""repro: Closest Truss Community search in networks.

A from-scratch Python reproduction of

    Xin Huang, Laks V.S. Lakshmanan, Jeffrey Xu Yu, Hong Cheng.
    "Approximate Closest Community Search in Networks."  PVLDB 2015.

The package provides the graph substrate (mutable :class:`UndirectedGraph`
store plus frozen :class:`CSRGraph` read snapshots), truss machinery, the
three CTC search algorithms (Basic, BulkDelete, LCTC), the baselines the
paper compares against (Truss, MDC, QDC), a cached read-optimized
:class:`CTCEngine` for serving repeated queries, synthetic datasets with
ground-truth communities, quality metrics, and the experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import UndirectedGraph, search
>>> graph = UndirectedGraph([(1, 2), (2, 3), (1, 3), (1, 4), (2, 4), (3, 4)])
>>> result = search(graph, [1, 2], method="bulk-delete")
>>> result.trussness
4
"""

from repro.ctc.api import available_methods, build_engine, build_index, search
from repro.ctc.basic import BasicCTC
from repro.engine import CTCEngine
from repro.ctc.bulk_delete import BulkDeleteCTC
from repro.ctc.local import LocalCTC
from repro.ctc.result import CommunityResult
from repro.exceptions import (
    ConfigurationError,
    GraphError,
    NoCommunityFoundError,
    QueryError,
    ReproError,
)
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.index import TrussIndex

__version__ = "1.8.0"

__all__ = [
    "__version__",
    "UndirectedGraph",
    "CSRGraph",
    "TrussIndex",
    "CTCEngine",
    "search",
    "build_index",
    "build_engine",
    "GraphDelta",
    "available_methods",
    "CommunityResult",
    "BasicCTC",
    "BulkDeleteCTC",
    "LocalCTC",
    "ReproError",
    "GraphError",
    "QueryError",
    "NoCommunityFoundError",
    "ConfigurationError",
]
