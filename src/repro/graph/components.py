"""Connected components and connectivity predicates.

The CTC algorithms repeatedly ask two questions:

* "is the query node set ``Q`` still connected inside the current graph?"
  (the while-loop guards of Algorithms 1 and 4), and
* "what is the connected component of the current truss that contains ``Q``?"
  (FindG0 termination, LCTC extraction).

Both are answered here with plain BFS/union-find utilities on
:class:`~repro.graph.simple_graph.UndirectedGraph`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.exceptions import NodeNotFoundError
from repro.graph.simple_graph import UndirectedGraph

__all__ = [
    "connected_components",
    "connected_component_containing",
    "is_connected",
    "nodes_are_connected",
    "component_count",
    "largest_component",
    "balanced_shards",
    "UnionFind",
]


def connected_components(graph: UndirectedGraph) -> list[set[Hashable]]:
    """Return the connected components as a list of node sets.

    Components are returned in discovery order of their first node, which
    follows the graph's (insertion-ordered) node iteration, so the output is
    deterministic for a deterministically built graph.
    """
    seen: set[Hashable] = set()
    components: list[set[Hashable]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = _bfs_component(graph, start)
        seen |= component
        components.append(component)
    return components


def _bfs_component(graph: UndirectedGraph, start: Hashable) -> set[Hashable]:
    component = {start}
    queue: deque[Hashable] = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in component:
                component.add(neighbor)
                queue.append(neighbor)
    return component


def connected_component_containing(graph: UndirectedGraph, node: Hashable) -> set[Hashable]:
    """Return the node set of the connected component containing ``node``."""
    if node not in graph:
        raise NodeNotFoundError(node)
    return _bfs_component(graph, node)


def is_connected(graph: UndirectedGraph) -> bool:
    """Return ``True`` if the graph is connected (empty graphs count as connected)."""
    total = graph.number_of_nodes()
    if total <= 1:
        return True
    start = next(iter(graph.nodes()))
    return len(_bfs_component(graph, start)) == total


def nodes_are_connected(graph: UndirectedGraph, nodes: Iterable[Hashable]) -> bool:
    """Return ``True`` if all of ``nodes`` lie in one connected component.

    This is the ``connect_G(Q)`` predicate used by the while-loops of the
    paper's Algorithms 1, 2 and 4.  Nodes missing from the graph make the
    predicate ``False`` (they were peeled away, so ``Q`` is no longer
    contained in the graph, let alone connected).
    """
    node_list = list(dict.fromkeys(nodes))
    if not node_list:
        return True
    if any(node not in graph for node in node_list):
        return False
    if len(node_list) == 1:
        return True
    component = _bfs_component(graph, node_list[0])
    return all(node in component for node in node_list[1:])


def component_count(graph: UndirectedGraph) -> int:
    """Return the number of connected components."""
    return len(connected_components(graph))


def largest_component(graph: UndirectedGraph) -> set[Hashable]:
    """Return the node set of the largest connected component (empty set if empty)."""
    components = connected_components(graph)
    if not components:
        return set()
    return max(components, key=len)


def balanced_shards(
    graph: UndirectedGraph, shard_count: int
) -> list[set[Hashable]]:
    """Partition the graph's components into at most ``shard_count`` shards.

    The serving layer (:mod:`repro.engine.serving`) assigns each connected
    component wholly to one shard — truss communities never span components,
    so shards can rebuild and answer queries independently.  Components are
    greedily bin-packed by descending edge count (longest-processing-time
    heuristic) onto the currently lightest shard, which keeps shard rebuild
    costs balanced; ties break on discovery order, so the assignment is
    deterministic for a deterministically built graph.

    Returns between 1 and ``shard_count`` non-empty node sets (fewer when
    there are fewer components than shards; a single set for an empty
    graph is never returned — the list is empty instead).
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    components = connected_components(graph)
    if not components:
        return []
    shard_count = min(shard_count, len(components))
    # Weight = intra-component edge count; isolated nodes still weigh 1 so
    # they spread across shards instead of all landing on the first.
    weights = [
        max(1, sum(graph.degree(node) for node in component) // 2)
        for component in components
    ]
    order = sorted(range(len(components)), key=lambda i: (-weights[i], i))
    shards: list[set[Hashable]] = [set() for _ in range(shard_count)]
    loads = [0] * shard_count
    for index in order:
        lightest = min(range(shard_count), key=lambda s: (loads[s], s))
        shards[lightest] |= components[index]
        loads[lightest] += weights[index]
    return shards


class UnionFind:
    """Disjoint-set forest with union by size and path compression.

    Used by the Steiner tree construction (Kruskal phase over the metric
    closure) and by the synthetic dataset generators when stitching planted
    communities into a connected network.
    """

    def __init__(self, elements: Iterable[Hashable] | None = None) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        if elements is not None:
            for element in elements:
                self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set if unseen."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def find(self, element: Hashable) -> Hashable:
        """Return the representative of ``element``'s set (adding it if new)."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, first: Hashable, second: Hashable) -> bool:
        """Merge the sets containing the two elements.

        Returns ``True`` if a merge happened, ``False`` if they were already
        in the same set.
        """
        root_a = self.find(first)
        root_b = self.find(second)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True

    def connected(self, first: Hashable, second: Hashable) -> bool:
        """Return ``True`` if both elements are in the same set."""
        return self.find(first) == self.find(second)

    def groups(self) -> list[set[Hashable]]:
        """Return the current partition as a list of sets."""
        by_root: dict[Hashable, set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())
