"""``CSRGraph``: a frozen, read-optimized snapshot of an :class:`UndirectedGraph`.

The mutable dict-of-sets :class:`~repro.graph.simple_graph.UndirectedGraph`
is the right store for updates (O(1) edge insertion/deletion), but it is a
poor substrate for the read-heavy analytical side of CTC search: every
neighbourhood walk chases pointers through hash sets, every per-edge
attribute lives behind a tuple-keyed dict, and nothing is cache-friendly.

``CSRGraph`` is the read replica.  It freezes a graph into compressed
sparse row (CSR) form:

* nodes are remapped to dense integer ids ``0..n-1`` (sorted by label when
  the labels are comparable, by ``repr`` otherwise, so the remapping is
  deterministic);
* the adjacency of node ``i`` is the sorted slice
  ``indices[indptr[i]:indptr[i + 1]]``, giving O(1) degree, O(log d)
  membership tests and merge-based common-neighbour intersection;
* every undirected edge gets a dense integer *edge id* in ``0..m-1``
  (assigned in row-major ``(u, v)`` order with ``u < v``), and the parallel
  ``slot_edge`` array maps each adjacency slot to its edge id, so per-edge
  attributes (support, trussness) can live in flat ``numpy`` arrays instead
  of tuple-keyed dicts.

A ``CSRGraph`` is immutable by contract: it represents one *version* of the
mutable store.  :class:`~repro.engine.CTCEngine` builds one per graph
version and serves every analytical query from it, which is the
HTAP-replica design the ROADMAP's scaling track builds on.

The array-based truss routines that consume this layout live in
:mod:`repro.trusses.csr_decomposition`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.delta import GraphDelta
from repro.graph.keys import EdgeKey, edge_key
from repro.graph.simple_graph import UndirectedGraph

__all__ = ["CSRGraph", "CSRPatch", "CSRSubgraph"]


@dataclass(frozen=True)
class CSRSubgraph:
    """The result of :meth:`CSRGraph.edge_subgraph`.

    The sub-snapshot uses its own dense ids; the two origin arrays map them
    back to the parent snapshot, which is how the CSR-native LCTC kernel
    (:mod:`repro.ctc.kernels`) translates communities found on a locally
    decomposed expansion back into parent-graph terms.

    Attributes
    ----------
    csr:
        The extracted snapshot (node labels shared with the parent).
    node_origin:
        ``int64`` array; entry ``i`` is the parent node id of sub node ``i``.
    edge_origin:
        ``int64`` array; entry ``e`` is the parent edge id of sub edge ``e``.
    """

    csr: "CSRGraph"
    node_origin: np.ndarray
    edge_origin: np.ndarray


@dataclass(frozen=True)
class CSRPatch:
    """The result of :meth:`CSRGraph.apply_delta`.

    Besides the patched snapshot itself, it carries the edge-id
    correspondence that incremental truss maintenance
    (:mod:`repro.trusses.incremental`) needs to transplant per-edge
    attributes between the two snapshots: edge ids are dense and assigned in
    row-major order, so any structural change renumbers them globally even
    though only a few adjacency rows were touched.

    Attributes
    ----------
    csr:
        The new snapshot (bit-for-bit identical to freezing the mutated
        graph from scratch).
    edge_origin:
        ``int64`` array of length ``csr.number_of_edges()``; entry ``e`` is
        the old edge id that new edge ``e`` carried over from, or ``-1`` if
        the edge was added by the delta.
    removed_edge_ids:
        ``int64`` array of the old edge ids the delta removed.
    node_remap:
        ``int64`` array mapping old node ids to new node ids (``-1`` for
        removed nodes), or ``None`` when the node set did not change (the
        identity mapping).
    """

    csr: "CSRGraph"
    edge_origin: np.ndarray
    removed_edge_ids: np.ndarray
    node_remap: np.ndarray | None

    @property
    def old_edge_count(self) -> int:
        """The edge count of the snapshot the delta was applied to.

        Every old edge either survived (it appears in ``edge_origin``) or
        was removed (it appears in ``removed_edge_ids``), so the old count
        is recoverable from the patch alone.
        """
        return int((self.edge_origin >= 0).sum()) + int(self.removed_edge_ids.size)

    def new_ids_of_old(self, old_edge_count: int | None = None) -> np.ndarray:
        """Return the inverse mapping: old edge id -> new edge id or ``-1``.

        ``old_edge_count`` defaults to :attr:`old_edge_count`; passing it
        explicitly just skips the recount.
        """
        if old_edge_count is None:
            old_edge_count = self.old_edge_count
        inverse = np.full(old_edge_count, -1, dtype=np.int64)
        carried = self.edge_origin >= 0
        inverse[self.edge_origin[carried]] = np.nonzero(carried)[0]
        return inverse

    def inserted_edge_ids(self) -> np.ndarray:
        """Return the new edge ids the delta inserted, in ascending order."""
        return np.nonzero(self.edge_origin < 0)[0]

    def preserves_edge_order(self) -> bool:
        """Return ``True`` if surviving edges kept their relative id order.

        Edge ids are row-major over node ids, so the surviving edges'
        old-id order and new-id order agree exactly when the node remap is
        monotonic — always, except when adding a label flips the node sort
        into its ``repr`` fallback.  Consumers transplanting whole per-edge
        structures (:func:`repro.graph.csr_triangles.patch_incidence`) use
        this to skip re-canonicalization on the common path.
        """
        if self.node_remap is None:
            return True
        kept = self.node_remap[self.node_remap >= 0]
        return kept.size <= 1 or bool(np.all(np.diff(kept) > 0))


class CSRGraph:
    """An immutable compressed-sparse-row snapshot of an undirected graph.

    Build one with :meth:`from_graph`; the constructor is internal.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; node ``i``'s adjacency occupies
        ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int64`` array of length ``2m`` holding neighbour ids, sorted
        within each row.
    slot_edge:
        ``int64`` array parallel to ``indices`` mapping each adjacency slot
        to the id of its undirected edge.
    edge_u, edge_v:
        ``int64`` arrays of length ``m``; edge ``e`` connects ids
        ``edge_u[e] < edge_v[e]``.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> csr = CSRGraph.from_graph(complete_graph(4))
    >>> csr.number_of_nodes(), csr.number_of_edges()
    (4, 6)
    >>> csr.degree(0)
    3
    """

    __slots__ = (
        "indptr", "indices", "slot_edge", "edge_u", "edge_v", "_labels", "_ids",
        "_retained",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        slot_edge: np.ndarray,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        labels: list[Hashable],
        ids: dict[Hashable, int],
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.slot_edge = slot_edge
        self.edge_u = edge_u
        self.edge_v = edge_v
        self._labels = labels
        self._ids = ids
        #: Keeps the shared-memory bundle backing the arrays alive (set by
        #: :meth:`from_shared`; ``None`` for ordinary in-process snapshots).
        self._retained = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: UndirectedGraph) -> "CSRGraph":
        """Freeze ``graph`` into CSR form.

        The node-id remapping sorts labels directly when they are mutually
        comparable and by ``repr`` otherwise, so two structurally identical
        graphs always freeze to the same arrays.
        """
        try:
            labels = sorted(graph.nodes())
        except TypeError:
            labels = sorted(graph.nodes(), key=repr)
        ids = {label: position for position, label in enumerate(labels)}
        num_nodes = len(labels)

        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        for position, label in enumerate(labels):
            indptr[position + 1] = graph.degree(label)
        np.cumsum(indptr, out=indptr)

        total_slots = int(indptr[-1])
        indices = np.empty(total_slots, dtype=np.int64)
        for position, label in enumerate(labels):
            row = sorted(ids[other] for other in graph.neighbors(label))
            indices[indptr[position]:indptr[position + 1]] = row

        # Edge ids in row-major (u, v) order with u < v.  A reverse slot
        # (u, v) with v < u always refers to an edge already assigned in row
        # v, so a single pass with a lookup table suffices.
        slot_edge = np.empty(total_slots, dtype=np.int64)
        edge_u: list[int] = []
        edge_v: list[int] = []
        assigned: dict[tuple[int, int], int] = {}
        next_edge = 0
        for u in range(num_nodes):
            for slot in range(int(indptr[u]), int(indptr[u + 1])):
                v = int(indices[slot])
                if u < v:
                    slot_edge[slot] = next_edge
                    assigned[(u, v)] = next_edge
                    edge_u.append(u)
                    edge_v.append(v)
                    next_edge += 1
                else:
                    slot_edge[slot] = assigned[(v, u)]

        return cls(
            indptr=indptr,
            indices=indices,
            slot_edge=slot_edge,
            edge_u=np.asarray(edge_u, dtype=np.int64),
            edge_v=np.asarray(edge_v, dtype=np.int64),
            labels=labels,
            ids=ids,
        )

    #: Array attributes exported to / imported from shared memory, in order.
    _SHARED_ARRAYS = ("indptr", "indices", "slot_edge", "edge_u", "edge_v")

    def to_shared(self, prefix: str, extra_arrays: dict | None = None):
        """Publish the snapshot's arrays into a shared-memory bundle.

        Returns the owning :class:`~repro.graph.shm.SharedArrayBundle`; its
        picklable ``meta`` descriptor is what travels to worker processes,
        which rebuild the snapshot zero-copy via :meth:`from_shared`.
        ``extra_arrays`` rides along in the same bundle (per-edge trussness,
        supports, incidence arrays — anything keyed off this snapshot's
        edge ids); names must not collide with the CSR's own
        (:data:`_SHARED_ARRAYS`).  The caller owns the bundle's lifecycle:
        keep it alive while attachers exist, then :meth:`~SharedArrayBundle.unlink`.
        """
        from repro.graph.shm import SharedArrayBundle

        arrays = {name: getattr(self, name) for name in self._SHARED_ARRAYS}
        if extra_arrays:
            collisions = set(arrays) & set(extra_arrays)
            if collisions:
                raise ValueError(f"extra_arrays shadow CSR arrays: {sorted(collisions)}")
            arrays.update(extra_arrays)
        return SharedArrayBundle.create(prefix, arrays, objects={"labels": self._labels})

    @classmethod
    def from_shared(cls, bundle) -> "CSRGraph":
        """Rebuild a snapshot from an attached shared-memory bundle.

        ``bundle`` is a :class:`~repro.graph.shm.SharedArrayBundle` (either
        the owner's or an attached one) produced by :meth:`to_shared`.  The
        returned snapshot's arrays are views straight into the shared pages
        (zero-copy; read-only on the attaching side) and the snapshot holds
        a reference to the bundle so the mapping outlives the caller's.
        """
        labels = bundle.objects["labels"]
        csr = cls(
            indptr=bundle["indptr"],
            indices=bundle["indices"],
            slot_edge=bundle["slot_edge"],
            edge_u=bundle["edge_u"],
            edge_v=bundle["edge_v"],
            labels=labels,
            ids={label: position for position, label in enumerate(labels)},
        )
        csr._retained = bundle
        return csr

    def to_graph(self) -> UndirectedGraph:
        """Thaw the snapshot back into a mutable :class:`UndirectedGraph`."""
        graph = UndirectedGraph()
        for label in self._labels:
            graph.add_node(label)
        for e in range(self.number_of_edges()):
            graph.add_edge(self._labels[int(self.edge_u[e])], self._labels[int(self.edge_v[e])])
        return graph

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta) -> CSRPatch:
        """Return a new snapshot with ``delta`` applied, patching touched rows only.

        The result is bit-for-bit identical to ``CSRGraph.from_graph`` of
        the mutated graph (same label order, same arrays), but is built by
        editing only the adjacency rows the delta touches: untouched rows
        are bulk-copied, and the global edge-id reassignment runs as one
        vectorized ``lexsort`` pass instead of a per-slot Python loop.

        ``delta`` must be normalized against this snapshot (see
        :mod:`repro.graph.delta`); violations raise
        :class:`~repro.exceptions.GraphError` or the usual not-found errors.
        """
        num_old_nodes = self.number_of_nodes()
        num_old_edges = self.number_of_edges()
        if delta.is_empty():
            return CSRPatch(
                csr=self,
                edge_origin=np.arange(num_old_edges, dtype=np.int64),
                removed_edge_ids=np.zeros(0, dtype=np.int64),
                node_remap=None,
            )

        removed_nodes = delta.removed_nodes
        added_nodes = delta.added_nodes
        for label in removed_nodes:
            if label not in self._ids:
                raise NodeNotFoundError(label)
        for label in added_nodes:
            if label in self._ids:
                raise GraphError(f"delta adds node {label!r} which is already present")

        # --- label ordering and node remap -----------------------------
        if removed_nodes or added_nodes:
            universe = [label for label in self._labels if label not in removed_nodes]
            universe.extend(added_nodes)
            try:
                new_labels = sorted(universe)
            except TypeError:
                new_labels = sorted(universe, key=repr)
            new_ids = {label: position for position, label in enumerate(new_labels)}
            node_remap = np.full(num_old_nodes, -1, dtype=np.int64)
            for position, label in enumerate(self._labels):
                new_position = new_ids.get(label)
                if new_position is not None:
                    node_remap[position] = new_position
        else:
            new_labels = self._labels  # shared; snapshots never mutate it
            new_ids = self._ids
            node_remap = None
        num_new_nodes = len(new_labels)

        # --- resolve edge changes into id space ------------------------
        removed_eids: list[int] = []
        removed_per_node: dict[int, int] = {}
        # (new_id -> neighbours to drop / insert), for rows of *kept* nodes.
        drop_neighbors: dict[int, set[int]] = {}
        insert_neighbors: dict[int, list[int]] = {}
        degree_delta: dict[int, int] = {}

        for a, b in delta.removed_edges:
            old_u, old_v = self.node_id(a), self.node_id(b)
            removed_eids.append(self.edge_id(old_u, old_v))
            for endpoint in (old_u, old_v):
                removed_per_node[endpoint] = removed_per_node.get(endpoint, 0) + 1
            if node_remap is None:
                new_u, new_v = old_u, old_v
            else:
                new_u, new_v = int(node_remap[old_u]), int(node_remap[old_v])
            if new_u >= 0 and new_v >= 0:
                drop_neighbors.setdefault(new_u, set()).add(new_v)
                drop_neighbors.setdefault(new_v, set()).add(new_u)
            for endpoint in (new_u, new_v):
                if endpoint >= 0:
                    degree_delta[endpoint] = degree_delta.get(endpoint, 0) - 1

        # Every edge incident to a removed node must be listed explicitly.
        for label in removed_nodes:
            old_id = self._ids[label]
            if removed_per_node.get(old_id, 0) != self.degree(old_id):
                raise GraphError(
                    f"delta removes node {label!r} but lists only "
                    f"{removed_per_node.get(old_id, 0)} of its {self.degree(old_id)} "
                    "incident edges"
                )

        for a, b in delta.added_edges:
            if a in removed_nodes or b in removed_nodes:
                raise GraphError(f"delta adds edge ({a!r}, {b!r}) incident to a removed node")
            try:
                new_u, new_v = new_ids[a], new_ids[b]
            except KeyError as missing:
                raise NodeNotFoundError(missing.args[0]) from None
            if a in self._ids and b in self._ids and self.has_edge(self._ids[a], self._ids[b]):
                raise GraphError(f"delta adds edge ({a!r}, {b!r}) which is already present")
            insert_neighbors.setdefault(new_u, []).append(new_v)
            insert_neighbors.setdefault(new_v, []).append(new_u)
            for endpoint in (new_u, new_v):
                degree_delta[endpoint] = degree_delta.get(endpoint, 0) + 1

        # --- new degrees and indptr ------------------------------------
        old_degrees = np.diff(self.indptr)
        if node_remap is None:
            new_degrees = old_degrees.copy()
        else:
            new_degrees = np.zeros(num_new_nodes, dtype=np.int64)
            kept = node_remap >= 0
            new_degrees[node_remap[kept]] = old_degrees[kept]
        for node, change in degree_delta.items():
            new_degrees[node] += change
        new_indptr = np.zeros(num_new_nodes + 1, dtype=np.int64)
        np.cumsum(new_degrees, out=new_indptr[1:])
        total_slots = int(new_indptr[-1])
        new_indices = np.empty(total_slots, dtype=np.int64)

        # --- fill adjacency rows ---------------------------------------
        if node_remap is None:
            self._fill_rows_fast(new_indptr, new_indices, drop_neighbors, insert_neighbors)
        else:
            self._fill_rows_remapped(
                node_remap, new_indptr, new_indices, drop_neighbors, insert_neighbors,
                num_new_nodes,
            )

        # --- vectorized edge-id assignment (row-major (u, v), u < v) ---
        row_of_slot = np.repeat(np.arange(num_new_nodes, dtype=np.int64), new_degrees)
        low = np.minimum(row_of_slot, new_indices)
        high = np.maximum(row_of_slot, new_indices)
        # Composite-key argsort, equivalent to np.lexsort((high, low)) but
        # one sorting pass (both keys are node ids < num_new_nodes).
        order = np.argsort(low * (num_new_nodes + 1) + high, kind="stable")
        if total_slots % 2:
            raise GraphError("delta produced an asymmetric adjacency structure")
        new_slot_edge = np.empty(total_slots, dtype=np.int64)
        new_slot_edge[order] = np.arange(total_slots, dtype=np.int64) // 2
        new_edge_u = np.ascontiguousarray(low[order][::2])
        new_edge_v = np.ascontiguousarray(high[order][::2])
        if not (
            np.array_equal(new_edge_u, low[order][1::2])
            and np.array_equal(new_edge_v, high[order][1::2])
        ):
            raise GraphError("delta produced an asymmetric adjacency structure")
        num_new_edges = total_slots // 2

        # --- old edge -> new edge correspondence -----------------------
        removed_ids = np.asarray(sorted(removed_eids), dtype=np.int64)
        survivor_mask = np.ones(num_old_edges, dtype=bool)
        survivor_mask[removed_ids] = False
        surviving = np.nonzero(survivor_mask)[0]
        if node_remap is None:
            surviving_u = self.edge_u[surviving]
            surviving_v = self.edge_v[surviving]
        else:
            surviving_u = node_remap[self.edge_u[surviving]]
            surviving_v = node_remap[self.edge_v[surviving]]
        stride = num_new_nodes + 1
        old_keys = (
            np.minimum(surviving_u, surviving_v) * stride
            + np.maximum(surviving_u, surviving_v)
        )
        new_keys = new_edge_u * stride + new_edge_v
        positions = np.searchsorted(new_keys, old_keys)
        if positions.size and not np.array_equal(new_keys[positions], old_keys):
            raise GraphError("delta removed an edge implicitly (not listed in removed_edges)")
        edge_origin = np.full(num_new_edges, -1, dtype=np.int64)
        edge_origin[positions] = surviving

        patched = CSRGraph(
            indptr=new_indptr,
            indices=new_indices,
            slot_edge=new_slot_edge,
            edge_u=new_edge_u,
            edge_v=new_edge_v,
            labels=new_labels,
            ids=new_ids,
        )
        return CSRPatch(
            csr=patched,
            edge_origin=edge_origin,
            removed_edge_ids=removed_ids,
            node_remap=node_remap,
        )

    def _edited_row(
        self,
        row: np.ndarray,
        dropped: set[int] | None,
        inserted: list[int] | None,
    ) -> np.ndarray:
        """Return ``row`` (sorted ids) with ``dropped`` removed and ``inserted`` merged."""
        if dropped:
            row = row[~np.isin(row, np.fromiter(dropped, dtype=np.int64, count=len(dropped)))]
        if inserted:
            row = np.concatenate([row, np.asarray(inserted, dtype=np.int64)])
            row.sort(kind="stable")
        return row

    def _fill_rows_fast(
        self,
        new_indptr: np.ndarray,
        new_indices: np.ndarray,
        drop_neighbors: dict[int, set[int]],
        insert_neighbors: dict[int, list[int]],
    ) -> None:
        """Fill rows when the node set is unchanged: bulk-copy untouched gaps."""
        touched = sorted(set(drop_neighbors) | set(insert_neighbors))
        previous = 0
        for node in touched:
            # Rows [previous, node) are untouched: identical content, shifted offset.
            old_start, old_stop = int(self.indptr[previous]), int(self.indptr[node])
            new_start = int(new_indptr[previous])
            new_indices[new_start:new_start + (old_stop - old_start)] = (
                self.indices[old_start:old_stop]
            )
            row = self._edited_row(
                self.indices[self.indptr[node]:self.indptr[node + 1]],
                drop_neighbors.get(node),
                insert_neighbors.get(node),
            )
            new_indices[new_indptr[node]:new_indptr[node + 1]] = row
            previous = node + 1
        old_start = int(self.indptr[previous])
        new_start = int(new_indptr[previous])
        new_indices[new_start:] = self.indices[old_start:]

    def _fill_rows_remapped(
        self,
        node_remap: np.ndarray,
        new_indptr: np.ndarray,
        new_indices: np.ndarray,
        drop_neighbors: dict[int, set[int]],
        insert_neighbors: dict[int, list[int]],
        num_new_nodes: int,
    ) -> None:
        """Fill rows when the node set changed: every kept row is id-remapped."""
        remapped = node_remap[self.indices]
        # The remap is monotonic whenever the old and new label orders agree
        # on kept labels (always, except when adding a label flips the sort
        # into its repr fallback); rows then stay sorted after remapping.
        kept_ids = node_remap[node_remap >= 0]
        monotonic = bool(np.all(np.diff(kept_ids) > 0)) if kept_ids.size > 1 else True
        old_of_new = np.full(num_new_nodes, -1, dtype=np.int64)
        old_of_new[kept_ids] = np.nonzero(node_remap >= 0)[0]
        for node in range(num_new_nodes):
            old_node = int(old_of_new[node])
            if old_node >= 0:
                row = remapped[self.indptr[old_node]:self.indptr[old_node + 1]]
                row = row[row >= 0]  # neighbours that were removed nodes
                if not monotonic:
                    row = np.sort(row)
                row = self._edited_row(
                    row, drop_neighbors.get(node), insert_neighbors.get(node)
                )
            else:
                row = np.asarray(sorted(insert_neighbors.get(node, [])), dtype=np.int64)
            new_indices[new_indptr[node]:new_indptr[node + 1]] = row

    # ------------------------------------------------------------------
    # subgraph extraction
    # ------------------------------------------------------------------
    def edge_subgraph(
        self,
        edge_ids: np.ndarray | list[int],
        include_node_ids: np.ndarray | list[int] = (),
    ) -> CSRSubgraph:
        """Return the sub-snapshot induced by ``edge_ids`` (plus isolated nodes).

        The node set is every endpoint of the selected edges, union
        ``include_node_ids`` (which lets callers keep nodes that lost all
        their edges — e.g. a single-terminal Steiner tree).  Duplicate ids
        are tolerated.  The whole extraction is vectorized: because the
        node remap is monotonic and parent edge ids are row-major, sub edge
        ``e`` simply corresponds to the ``e``-th smallest selected parent
        edge id, and every adjacency row stays sorted after remapping.

        Raises
        ------
        GraphError
            If an edge or node id is out of range.
        """
        edges = np.unique(np.asarray(edge_ids, dtype=np.int64))
        if edges.size and (edges[0] < 0 or edges[-1] >= self.number_of_edges()):
            raise GraphError("edge id out of range in edge_subgraph")
        extra = np.unique(np.asarray(include_node_ids, dtype=np.int64))
        if extra.size and (extra[0] < 0 or extra[-1] >= self.number_of_nodes()):
            raise GraphError("node id out of range in edge_subgraph")

        old_u = self.edge_u[edges]
        old_v = self.edge_v[edges]
        node_origin = np.unique(np.concatenate([old_u, old_v, extra]))
        num_nodes = int(node_origin.size)
        remap = np.full(self.number_of_nodes(), -1, dtype=np.int64)
        remap[node_origin] = np.arange(num_nodes, dtype=np.int64)
        new_u = remap[old_u]
        new_v = remap[old_v]

        num_edges = int(edges.size)
        rows = np.concatenate([new_u, new_v])
        neighbors = np.concatenate([new_v, new_u])
        slot_ids = np.concatenate([np.arange(num_edges, dtype=np.int64)] * 2)
        # Composite-key argsort, equivalent to np.lexsort((neighbors, rows)).
        order = np.argsort(rows * (num_nodes + 1) + neighbors, kind="stable")
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=num_nodes), out=indptr[1:])

        labels = [self._labels[old_id] for old_id in node_origin.tolist()]
        ids = {label: position for position, label in enumerate(labels)}
        sub = CSRGraph(
            indptr=indptr,
            indices=neighbors[order],
            slot_edge=slot_ids[order],
            edge_u=new_u,
            edge_v=new_v,
            labels=labels,
            ids=ids,
        )
        return CSRSubgraph(csr=sub, node_origin=node_origin, edge_origin=edges)

    # ------------------------------------------------------------------
    # counts
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        """Return the number of nodes."""
        return len(self._labels)

    def number_of_edges(self) -> int:
        """Return the number of undirected edges."""
        return len(self.edge_u)

    def __len__(self) -> int:
        return len(self._labels)

    # ------------------------------------------------------------------
    # label <-> id mapping
    # ------------------------------------------------------------------
    def node_id(self, label: Hashable) -> int:
        """Return the dense integer id of ``label``.

        Raises
        ------
        NodeNotFoundError
            If ``label`` is not in the snapshot.
        """
        try:
            return self._ids[label]
        except KeyError:
            raise NodeNotFoundError(label) from None

    def node_label(self, node_id: int) -> Hashable:
        """Return the original label of integer id ``node_id``."""
        return self._labels[node_id]

    def labels(self) -> list[Hashable]:
        """Return the labels in id order (a fresh list)."""
        return list(self._labels)

    def has_node(self, label: Hashable) -> bool:
        """Return ``True`` if ``label`` is a node of the snapshot."""
        return label in self._ids

    def __contains__(self, label: Hashable) -> bool:
        return label in self._ids

    # ------------------------------------------------------------------
    # adjacency (all by integer id; O(1) degree, O(log d) membership)
    # ------------------------------------------------------------------
    def degree(self, node_id: int) -> int:
        """Return the degree of ``node_id`` in O(1)."""
        return int(self.indptr[node_id + 1] - self.indptr[node_id])

    def neighbor_ids(self, node_id: int) -> np.ndarray:
        """Return the sorted neighbour-id array of ``node_id`` (a view, not a copy)."""
        return self.indices[self.indptr[node_id]:self.indptr[node_id + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if ids ``u`` and ``v`` are adjacent (binary search)."""
        row = self.neighbor_ids(u)
        slot = int(np.searchsorted(row, v))
        return slot < len(row) and int(row[slot]) == v

    def edge_id(self, u: int, v: int) -> int:
        """Return the edge id of the undirected edge between ids ``u`` and ``v``.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        row = self.neighbor_ids(u)
        slot = int(np.searchsorted(row, v))
        if slot >= len(row) or int(row[slot]) != v:
            raise EdgeNotFoundError(self._labels[u], self._labels[v])
        return int(self.slot_edge[int(self.indptr[u]) + slot])

    def common_neighbor_ids(self, u: int, v: int) -> np.ndarray:
        """Return the sorted common-neighbour ids of ``u`` and ``v`` (merge-based)."""
        return np.intersect1d(self.neighbor_ids(u), self.neighbor_ids(v), assume_unique=True)

    def support(self, u: int, v: int) -> int:
        """Return the support (triangle count) of the edge between ids ``u`` and ``v``."""
        return int(self.common_neighbor_ids(u, v).size)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def edge_endpoint_ids(self, e: int) -> tuple[int, int]:
        """Return the endpoint ids ``(u, v)`` with ``u < v`` of edge ``e``."""
        return int(self.edge_u[e]), int(self.edge_v[e])

    def edge_key_of(self, e: int) -> EdgeKey:
        """Return the canonical label-space :func:`edge_key` of edge ``e``.

        This is the bridge between the array world (dense edge ids) and the
        dict world (tuple-keyed per-edge attributes): converting a per-edge
        array ``values`` into ``{csr.edge_key_of(e): values[e]}`` yields a
        dict interchangeable with the dict-path outputs.
        """
        return edge_key(self._labels[int(self.edge_u[e])], self._labels[int(self.edge_v[e])])

    def edge_keys(self) -> list[EdgeKey]:
        """Return the canonical edge key of every edge, indexed by edge id."""
        return [self.edge_key_of(e) for e in range(self.number_of_edges())]

    def edges(self) -> Iterator[EdgeKey]:
        """Iterate over canonical label-space edge keys in edge-id order."""
        for e in range(self.number_of_edges()):
            yield self.edge_key_of(e)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
