"""``CSRGraph``: a frozen, read-optimized snapshot of an :class:`UndirectedGraph`.

The mutable dict-of-sets :class:`~repro.graph.simple_graph.UndirectedGraph`
is the right store for updates (O(1) edge insertion/deletion), but it is a
poor substrate for the read-heavy analytical side of CTC search: every
neighbourhood walk chases pointers through hash sets, every per-edge
attribute lives behind a tuple-keyed dict, and nothing is cache-friendly.

``CSRGraph`` is the read replica.  It freezes a graph into compressed
sparse row (CSR) form:

* nodes are remapped to dense integer ids ``0..n-1`` (sorted by label when
  the labels are comparable, by ``repr`` otherwise, so the remapping is
  deterministic);
* the adjacency of node ``i`` is the sorted slice
  ``indices[indptr[i]:indptr[i + 1]]``, giving O(1) degree, O(log d)
  membership tests and merge-based common-neighbour intersection;
* every undirected edge gets a dense integer *edge id* in ``0..m-1``
  (assigned in row-major ``(u, v)`` order with ``u < v``), and the parallel
  ``slot_edge`` array maps each adjacency slot to its edge id, so per-edge
  attributes (support, trussness) can live in flat ``numpy`` arrays instead
  of tuple-keyed dicts.

A ``CSRGraph`` is immutable by contract: it represents one *version* of the
mutable store.  :class:`~repro.engine.CTCEngine` builds one per graph
version and serves every analytical query from it, which is the
HTAP-replica design the ROADMAP's scaling track builds on.

The array-based truss routines that consume this layout live in
:mod:`repro.trusses.csr_decomposition`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

import numpy as np

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph.simple_graph import UndirectedGraph, edge_key

__all__ = ["CSRGraph"]

EdgeKey = tuple[Hashable, Hashable]


class CSRGraph:
    """An immutable compressed-sparse-row snapshot of an undirected graph.

    Build one with :meth:`from_graph`; the constructor is internal.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; node ``i``'s adjacency occupies
        ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int64`` array of length ``2m`` holding neighbour ids, sorted
        within each row.
    slot_edge:
        ``int64`` array parallel to ``indices`` mapping each adjacency slot
        to the id of its undirected edge.
    edge_u, edge_v:
        ``int64`` arrays of length ``m``; edge ``e`` connects ids
        ``edge_u[e] < edge_v[e]``.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> csr = CSRGraph.from_graph(complete_graph(4))
    >>> csr.number_of_nodes(), csr.number_of_edges()
    (4, 6)
    >>> csr.degree(0)
    3
    """

    __slots__ = ("indptr", "indices", "slot_edge", "edge_u", "edge_v", "_labels", "_ids")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        slot_edge: np.ndarray,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        labels: list[Hashable],
        ids: dict[Hashable, int],
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.slot_edge = slot_edge
        self.edge_u = edge_u
        self.edge_v = edge_v
        self._labels = labels
        self._ids = ids

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: UndirectedGraph) -> "CSRGraph":
        """Freeze ``graph`` into CSR form.

        The node-id remapping sorts labels directly when they are mutually
        comparable and by ``repr`` otherwise, so two structurally identical
        graphs always freeze to the same arrays.
        """
        try:
            labels = sorted(graph.nodes())
        except TypeError:
            labels = sorted(graph.nodes(), key=repr)
        ids = {label: position for position, label in enumerate(labels)}
        num_nodes = len(labels)

        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        for position, label in enumerate(labels):
            indptr[position + 1] = graph.degree(label)
        np.cumsum(indptr, out=indptr)

        total_slots = int(indptr[-1])
        indices = np.empty(total_slots, dtype=np.int64)
        for position, label in enumerate(labels):
            row = sorted(ids[other] for other in graph.neighbors(label))
            indices[indptr[position]:indptr[position + 1]] = row

        # Edge ids in row-major (u, v) order with u < v.  A reverse slot
        # (u, v) with v < u always refers to an edge already assigned in row
        # v, so a single pass with a lookup table suffices.
        slot_edge = np.empty(total_slots, dtype=np.int64)
        edge_u: list[int] = []
        edge_v: list[int] = []
        assigned: dict[tuple[int, int], int] = {}
        next_edge = 0
        for u in range(num_nodes):
            for slot in range(int(indptr[u]), int(indptr[u + 1])):
                v = int(indices[slot])
                if u < v:
                    slot_edge[slot] = next_edge
                    assigned[(u, v)] = next_edge
                    edge_u.append(u)
                    edge_v.append(v)
                    next_edge += 1
                else:
                    slot_edge[slot] = assigned[(v, u)]

        return cls(
            indptr=indptr,
            indices=indices,
            slot_edge=slot_edge,
            edge_u=np.asarray(edge_u, dtype=np.int64),
            edge_v=np.asarray(edge_v, dtype=np.int64),
            labels=labels,
            ids=ids,
        )

    def to_graph(self) -> UndirectedGraph:
        """Thaw the snapshot back into a mutable :class:`UndirectedGraph`."""
        graph = UndirectedGraph()
        for label in self._labels:
            graph.add_node(label)
        for e in range(self.number_of_edges()):
            graph.add_edge(self._labels[int(self.edge_u[e])], self._labels[int(self.edge_v[e])])
        return graph

    # ------------------------------------------------------------------
    # counts
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        """Return the number of nodes."""
        return len(self._labels)

    def number_of_edges(self) -> int:
        """Return the number of undirected edges."""
        return len(self.edge_u)

    def __len__(self) -> int:
        return len(self._labels)

    # ------------------------------------------------------------------
    # label <-> id mapping
    # ------------------------------------------------------------------
    def node_id(self, label: Hashable) -> int:
        """Return the dense integer id of ``label``.

        Raises
        ------
        NodeNotFoundError
            If ``label`` is not in the snapshot.
        """
        try:
            return self._ids[label]
        except KeyError:
            raise NodeNotFoundError(label) from None

    def node_label(self, node_id: int) -> Hashable:
        """Return the original label of integer id ``node_id``."""
        return self._labels[node_id]

    def labels(self) -> list[Hashable]:
        """Return the labels in id order (a fresh list)."""
        return list(self._labels)

    def has_node(self, label: Hashable) -> bool:
        """Return ``True`` if ``label`` is a node of the snapshot."""
        return label in self._ids

    def __contains__(self, label: Hashable) -> bool:
        return label in self._ids

    # ------------------------------------------------------------------
    # adjacency (all by integer id; O(1) degree, O(log d) membership)
    # ------------------------------------------------------------------
    def degree(self, node_id: int) -> int:
        """Return the degree of ``node_id`` in O(1)."""
        return int(self.indptr[node_id + 1] - self.indptr[node_id])

    def neighbor_ids(self, node_id: int) -> np.ndarray:
        """Return the sorted neighbour-id array of ``node_id`` (a view, not a copy)."""
        return self.indices[self.indptr[node_id]:self.indptr[node_id + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if ids ``u`` and ``v`` are adjacent (binary search)."""
        row = self.neighbor_ids(u)
        slot = int(np.searchsorted(row, v))
        return slot < len(row) and int(row[slot]) == v

    def edge_id(self, u: int, v: int) -> int:
        """Return the edge id of the undirected edge between ids ``u`` and ``v``.

        Raises
        ------
        EdgeNotFoundError
            If the edge does not exist.
        """
        row = self.neighbor_ids(u)
        slot = int(np.searchsorted(row, v))
        if slot >= len(row) or int(row[slot]) != v:
            raise EdgeNotFoundError(self._labels[u], self._labels[v])
        return int(self.slot_edge[int(self.indptr[u]) + slot])

    def common_neighbor_ids(self, u: int, v: int) -> np.ndarray:
        """Return the sorted common-neighbour ids of ``u`` and ``v`` (merge-based)."""
        return np.intersect1d(self.neighbor_ids(u), self.neighbor_ids(v), assume_unique=True)

    def support(self, u: int, v: int) -> int:
        """Return the support (triangle count) of the edge between ids ``u`` and ``v``."""
        return int(self.common_neighbor_ids(u, v).size)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def edge_endpoint_ids(self, e: int) -> tuple[int, int]:
        """Return the endpoint ids ``(u, v)`` with ``u < v`` of edge ``e``."""
        return int(self.edge_u[e]), int(self.edge_v[e])

    def edge_key_of(self, e: int) -> EdgeKey:
        """Return the canonical label-space :func:`edge_key` of edge ``e``.

        This is the bridge between the array world (dense edge ids) and the
        dict world (tuple-keyed per-edge attributes): converting a per-edge
        array ``values`` into ``{csr.edge_key_of(e): values[e]}`` yields a
        dict interchangeable with the dict-path outputs.
        """
        return edge_key(self._labels[int(self.edge_u[e])], self._labels[int(self.edge_v[e])])

    def edge_keys(self) -> list[EdgeKey]:
        """Return the canonical edge key of every edge, indexed by edge id."""
        return [self.edge_key_of(e) for e in range(self.number_of_edges())]

    def edges(self) -> Iterator[EdgeKey]:
        """Iterate over canonical label-space edge keys in edge-id order."""
        for e in range(self.number_of_edges()):
            yield self.edge_key_of(e)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
