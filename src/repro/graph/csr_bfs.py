"""Masked frontier BFS on CSR rows: the traversal kernel of the array engines.

Every query-time traversal the CTC algorithms run — per-iteration query
distances inside the peel loop (Algorithms 1 and 4), the ``connect_G(Q)``
check, FindG0's component extraction, the Steiner kernel's
threshold-restricted witness-path searches, and the diameters the
experiments report — is an unweighted BFS over some *restriction* of one
frozen :class:`~repro.graph.csr.CSRGraph`.  This module runs those BFS's
level-synchronously on the CSR arrays (GraphBLAS-style push traversal): per
round the whole frontier's adjacency rows are gathered with one
``np.repeat`` slice expansion (the same segment-gather idiom as
:mod:`repro.graph.csr_triangles`), masked, deduplicated with visited flags,
and scattered into the distance array — no per-node Python loop.

Restrictions compose freely:

* ``edge_alive`` — a boolean mask over *edge ids* (via the parallel
  ``slot_edge`` array); dead edges are never traversed.  This is how the
  peel engine (:mod:`repro.ctc.kernels.peeling`) walks its working subgraph
  without materializing it.
* ``node_alive`` — a boolean mask over node ids; dead nodes are never
  entered.
* ``row_stop`` — a per-node exclusive upper slot bound replacing
  ``indptr[i + 1]``; with rows pre-sorted by decreasing edge trussness this
  expresses "edges with trussness >= k" as a prefix, the restriction the
  Steiner kernel sweeps (see ``QueryKernel.sorted_row_stops``).

Two dedup strategies are offered because two callers need different
contracts: the default flag-scatter dedup returns each round's frontier in
*sorted* order (cheapest; distances are order-independent), while
``ordered=True`` keeps the frontier in **first-discovery order** — the
order a scalar queue BFS would pop — which makes the ``parents`` array
reproduce a sequential BFS tie-break for tie-break.  That is what lets the
Steiner kernel's witness paths stay bit-identical to the dict path's.

Distances are ``int64`` with ``-1`` marking unreachable nodes;
:func:`fold_query_distance` folds per-source distance arrays into the
paper's ``dist(v, Q) = max_q dist(v, q)`` with ``inf`` for unreachable.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "BFSResult",
    "masked_bfs",
    "fold_query_distance",
    "masked_query_distances",
    "masked_eccentricity",
    "csr_diameter",
    "path_from_parents",
]

_INF = float("inf")


class BFSResult:
    """Distances (and optionally parents) of one masked BFS.

    Attributes
    ----------
    distances:
        ``int64`` array, one entry per node: hop distance from the nearest
        source, ``-1`` if unreachable (or pruned by ``max_depth``).
    parents:
        ``int64`` array or ``None`` (only when ``track_parents=True``):
        the predecessor of every reached node on a shortest path back to a
        source; sources (and unreached nodes) hold ``-1``.
    """

    __slots__ = ("distances", "parents")

    def __init__(self, distances: np.ndarray, parents: np.ndarray | None) -> None:
        self.distances = distances
        self.parents = parents


def masked_bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray | Sequence[int],
    *,
    slot_edge: np.ndarray | None = None,
    edge_alive: np.ndarray | None = None,
    node_alive: np.ndarray | None = None,
    row_stop: np.ndarray | Callable[[np.ndarray], np.ndarray] | None = None,
    track_parents: bool = False,
    ordered: bool = False,
    max_depth: int | None = None,
    until_reached: np.ndarray | Sequence[int] | None = None,
) -> BFSResult:
    """Multi-source frontier BFS over masked CSR rows.

    Parameters
    ----------
    indptr, indices:
        The CSR rows (any row ordering; see ``row_stop`` for prefix-sorted
        rows).  ``indptr`` has ``n + 1`` entries.
    sources:
        Node ids seeding layer 0.  Duplicates are harmless; an empty source
        set returns an all-unreachable result.
    slot_edge, edge_alive:
        When ``edge_alive`` is given, slot ``s`` is traversable only if
        ``edge_alive[slot_edge[s]]``; ``slot_edge`` is then required.
    node_alive:
        When given, neighbours with a ``False`` entry are never entered
        (sources are *not* re-checked — callers pass live sources).
    row_stop:
        Optional per-node exclusive slot bound replacing ``indptr[i + 1]``
        (a qualifying-prefix restriction on pre-sorted rows): either a full
        per-node array, or a callable mapping a frontier id array to its
        stop array — the callable form resolves bounds only for the rows
        the BFS actually visits, which is what keeps threshold-restricted
        sweeps cheap on freshly derived kernels.
    track_parents:
        Also record a predecessor per reached node (see :class:`BFSResult`).
    ordered:
        Keep each frontier in first-discovery order instead of sorted
        order, reproducing a scalar queue BFS's parent tie-breaks exactly.
    max_depth:
        Stop after assigning distance ``max_depth`` (``0`` = sources only).
    until_reached:
        Optional node ids; the BFS stops at the end of the round in which
        all of them have been reached (their recorded distances and parents
        are final — later rounds cannot change them).
    """
    num_nodes = int(indptr.size) - 1
    dist = np.full(num_nodes, -1, dtype=np.int64)
    parents = np.full(num_nodes, -1, dtype=np.int64) if track_parents else None
    frontier = np.asarray(sources, dtype=np.int64)
    if frontier.size == 0:
        return BFSResult(dist, parents)
    dist[frontier] = 0

    targets: np.ndarray | None = None
    if until_reached is not None:
        targets = np.asarray(until_reached, dtype=np.int64)

    if row_stop is None:
        stops_of = None
    elif callable(row_stop):
        stops_of = row_stop
    else:
        stops_of = None
        stops_all = row_stop
    # Scratch arrays for the two dedup strategies; allocated once per call,
    # reset only at the touched entries each round.
    seen_flag: np.ndarray | None = None
    first_pos: np.ndarray | None = None
    if ordered:
        first_pos = np.full(num_nodes, -1, dtype=np.int64)
    else:
        seen_flag = np.zeros(num_nodes, dtype=bool)

    depth = 0
    while frontier.size:
        if targets is not None and bool((dist[targets] >= 0).all()):
            break
        if max_depth is not None and depth >= max_depth:
            break
        starts = indptr[frontier]
        if row_stop is None:
            counts = indptr[frontier + 1] - starts
        elif stops_of is not None:
            counts = stops_of(frontier) - starts
        else:
            counts = stops_all[frontier] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Segment gather of the frontier's row slices: one repeat + arange.
        offsets = np.cumsum(counts) - counts
        gather = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
        neighbors = indices[gather]
        keep: np.ndarray | None = None
        if edge_alive is not None:
            if slot_edge is None:
                raise ValueError("edge_alive requires the slot_edge array")
            keep = edge_alive[slot_edge[gather]]
        if node_alive is not None:
            keep = node_alive[neighbors] if keep is None else keep & node_alive[neighbors]
        parent_of = np.repeat(frontier, counts) if track_parents else None
        if keep is not None:
            neighbors = neighbors[keep]
            if parent_of is not None:
                parent_of = parent_of[keep]
        unvisited = dist[neighbors] < 0
        neighbors = neighbors[unvisited]
        if parent_of is not None:
            parent_of = parent_of[unvisited]
        if neighbors.size == 0:
            break
        depth += 1
        if ordered:
            # First-occurrence dedup preserving candidate order: a reversed
            # scatter leaves each node's *earliest* position in first_pos,
            # so keeping exactly those positions yields the frontier in the
            # order a scalar queue BFS would discover it.
            positions = np.arange(neighbors.size, dtype=np.int64)
            first_pos[neighbors[::-1]] = positions[::-1]
            firsts = first_pos[neighbors] == positions
            frontier = neighbors[firsts]
            first_pos[frontier] = -1
            if parent_of is not None:
                parent_of = parent_of[firsts]
        else:
            # Flag scatter/scan dedup (sorted frontier), as in the truss peel.
            if parent_of is not None:
                # Last write wins in a reversed scatter = first occurrence.
                parents[neighbors[::-1]] = parent_of[::-1]
            seen_flag[neighbors] = True
            frontier = np.nonzero(seen_flag)[0]
            seen_flag[frontier] = False
        dist[frontier] = depth
        if ordered and parent_of is not None:
            parents[frontier] = parent_of
    return BFSResult(dist, parents)


def fold_query_distance(maxima: np.ndarray, distances: np.ndarray) -> None:
    """Fold one source's BFS ``distances`` into the running ``dist(v, Q)`` maxima.

    ``maxima`` is a float array updated in place: unreachable entries
    (``-1``) count as ``inf``, reachable entries raise the maximum —
    Definition 3's ``max_q dist(v, q)`` one source at a time.
    """
    reached = distances >= 0
    np.maximum(maxima, distances, out=maxima, where=reached)
    maxima[~reached] = _INF


def masked_query_distances(
    csr: CSRGraph,
    query_ids: Sequence[int],
    *,
    edge_alive: np.ndarray | None = None,
    node_alive: np.ndarray | None = None,
) -> np.ndarray:
    """Return ``dist(v, Q)`` for every node as a float array (``inf`` unreachable).

    One masked BFS per query node folded with :func:`fold_query_distance` —
    the array twin of :func:`repro.graph.traversal.query_distances`
    restricted to the alive subgraph.  Entries of dead nodes are
    meaningless; callers mask them out.
    """
    maxima = np.zeros(csr.number_of_nodes(), dtype=np.float64)
    for source in query_ids:
        result = masked_bfs(
            csr.indptr,
            csr.indices,
            [source],
            slot_edge=csr.slot_edge,
            edge_alive=edge_alive,
            node_alive=node_alive,
        )
        fold_query_distance(maxima, result.distances)
    return maxima


def masked_eccentricity(
    csr: CSRGraph,
    source: int,
    *,
    edge_alive: np.ndarray | None = None,
    node_alive: np.ndarray | None = None,
) -> float:
    """Return the eccentricity of ``source`` within its reachable set.

    Matches :func:`repro.graph.traversal.eccentricity`: the maximum is over
    reached nodes only (a disconnected remainder does not make it ``inf``).
    """
    result = masked_bfs(
        csr.indptr,
        csr.indices,
        [source],
        slot_edge=csr.slot_edge,
        edge_alive=edge_alive,
        node_alive=node_alive,
    )
    return float(result.distances.max())


def csr_diameter(
    csr: CSRGraph,
    sources: Sequence[int] | None = None,
    *,
    edge_alive: np.ndarray | None = None,
    node_alive: np.ndarray | None = None,
) -> float:
    """Exact diameter of (a restriction of) a snapshot via per-source frontier BFS.

    The array twin of :func:`repro.graph.traversal.diameter`: with
    ``sources=None`` every (alive) node seeds one BFS and a disconnected
    graph returns ``inf``; with an explicit source subset the maximum is
    over those sources' eccentricities only and disconnection is not
    detected.  Graphs with fewer than two (alive) nodes have diameter 0.
    """
    if node_alive is not None:
        all_nodes = np.nonzero(node_alive)[0]
    else:
        all_nodes = np.arange(csr.number_of_nodes(), dtype=np.int64)
    if all_nodes.size < 2:
        return 0.0
    chosen = all_nodes if sources is None else np.asarray(sources, dtype=np.int64)
    best = 0.0
    for source in chosen:
        result = masked_bfs(
            csr.indptr,
            csr.indices,
            [source],
            slot_edge=csr.slot_edge,
            edge_alive=edge_alive,
            node_alive=node_alive,
        )
        reached = result.distances >= 0
        if sources is None and int(reached[all_nodes].sum()) < all_nodes.size:
            return _INF
        local = float(result.distances.max())
        if local > best:
            best = local
    return best


def path_from_parents(parents: np.ndarray, target: int) -> list[int]:
    """Recover the source-to-``target`` path from a BFS ``parents`` array.

    The target must have been reached (its parent chain ends at a source,
    whose entry is ``-1``).  Returns plain Python ints, endpoints included.
    """
    path = [int(target)]
    current = int(parents[target])
    while current != -1:
        path.append(current)
        current = int(parents[current])
    path.reverse()
    return path
