"""Graph and community persistence: edge lists and SNAP-style community files.

The SNAP datasets the paper uses ship as whitespace-separated edge lists plus
"one community per line" ground-truth files.  The same formats are supported
here so that (a) the synthetic stand-ins can be written out and inspected,
and (b) anyone with the real SNAP files can load them into this library
unchanged.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from pathlib import Path

from repro.exceptions import GraphError
from repro.graph.simple_graph import UndirectedGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_communities",
    "read_communities",
    "graph_to_edge_list_text",
    "graph_from_edge_list_text",
]


def graph_to_edge_list_text(graph: UndirectedGraph, delimiter: str = "\t") -> str:
    """Serialise a graph as one ``u<delimiter>v`` line per edge.

    Isolated nodes are appended as single-token lines so they survive the
    round trip.
    """
    lines = [f"{u}{delimiter}{v}" for u, v in graph.edges()]
    for node in graph.nodes():
        if graph.degree(node) == 0:
            lines.append(f"{node}")
    return "\n".join(lines) + ("\n" if lines else "")


def graph_from_edge_list_text(
    text: str,
    delimiter: str | None = None,
    node_type: type = str,
) -> UndirectedGraph:
    """Parse an edge-list string into a graph.

    Parameters
    ----------
    text:
        Edge-list content.  Lines starting with ``#`` and blank lines are
        ignored (SNAP files carry ``#`` headers).
    delimiter:
        Field separator; ``None`` splits on any whitespace.
    node_type:
        Callable applied to each token (e.g. ``int`` for SNAP ids).
    """
    graph = UndirectedGraph()
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split(delimiter)
        if len(tokens) == 1:
            graph.add_node(node_type(tokens[0]))
        elif len(tokens) >= 2:
            u, v = node_type(tokens[0]), node_type(tokens[1])
            if u != v:
                graph.add_edge(u, v)
        else:
            raise GraphError(f"cannot parse edge-list line: {raw_line!r}")
    return graph


def write_edge_list(graph: UndirectedGraph, path: str | Path, delimiter: str = "\t") -> None:
    """Write ``graph`` to ``path`` in edge-list format."""
    Path(path).write_text(graph_to_edge_list_text(graph, delimiter=delimiter), encoding="utf-8")


def read_edge_list(
    path: str | Path, delimiter: str | None = None, node_type: type = str
) -> UndirectedGraph:
    """Read an edge-list file into a graph."""
    text = Path(path).read_text(encoding="utf-8")
    return graph_from_edge_list_text(text, delimiter=delimiter, node_type=node_type)


def write_communities(
    communities: Iterable[Iterable[Hashable]], path: str | Path, delimiter: str = "\t"
) -> None:
    """Write ground-truth communities, one whitespace-separated line per community."""
    lines = []
    for community in communities:
        members = [str(member) for member in community]
        lines.append(delimiter.join(members))
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")


def read_communities(
    path: str | Path, delimiter: str | None = None, node_type: type = str
) -> list[set[Hashable]]:
    """Read a SNAP-style community file into a list of node sets."""
    communities: list[set[Hashable]] = []
    for raw_line in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        members = {node_type(token) for token in line.split(delimiter)}
        if members:
            communities.append(members)
    return communities


def adjacency_dict(graph: UndirectedGraph) -> dict[Hashable, list[Hashable]]:
    """Return a plain ``dict`` adjacency representation (sorted neighbour lists)."""
    return {node: sorted(graph.neighbors(node), key=repr) for node in graph.nodes()}


def edges_sorted(graph: UndirectedGraph) -> Sequence[tuple[Hashable, Hashable]]:
    """Return all edges sorted by their repr, for deterministic output."""
    return sorted(graph.edges(), key=repr)
