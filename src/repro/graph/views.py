"""Read-only subgraph views.

The greedy CTC algorithms conceptually work on a *sequence* of shrinking
graphs ``G0 ⊃ G1 ⊃ ... ⊃ Gl``.  Materialising each ``Gi`` would be wasteful;
Section 4.4 of the paper notes that an implementation should only record the
removals.  :class:`DeletionView` provides exactly that: a view over a frozen
base graph plus a set of deleted nodes and edges, supporting the same
read-side API as :class:`UndirectedGraph` (neighbours, degree, membership,
edges) without copying.

:func:`induced_subgraph` and :func:`filter_edges_by` are convenience wrappers
used by the LCTC expansion and the experiment harness.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Iterator

from repro.exceptions import NodeNotFoundError
from repro.graph.keys import edge_key
from repro.graph.simple_graph import UndirectedGraph

__all__ = ["DeletionView", "induced_subgraph", "filter_edges_by"]


class DeletionView:
    """A live view of ``base`` minus a growing set of deleted nodes/edges.

    The view is cheap to create and cheap to roll forward (record another
    deletion); it never mutates the base graph.  ``materialize()`` produces a
    standalone :class:`UndirectedGraph` snapshot when one is needed (e.g. to
    return the final community to the caller).
    """

    __slots__ = ("_base", "_deleted_nodes", "_deleted_edges", "_num_edges")

    def __init__(self, base: UndirectedGraph) -> None:
        self._base = base
        self._deleted_nodes: set[Hashable] = set()
        self._deleted_edges: set[tuple[Hashable, Hashable]] = set()
        self._num_edges = base.number_of_edges()

    # -- mutation of the *view* ---------------------------------------
    def delete_node(self, node: Hashable) -> None:
        """Mark ``node`` (and implicitly its incident edges) as deleted."""
        if not self.has_node(node):
            raise NodeNotFoundError(node)
        self._num_edges -= sum(1 for _ in self.neighbors(node))
        self._deleted_nodes.add(node)

    def delete_edge(self, u: Hashable, v: Hashable) -> None:
        """Mark edge ``(u, v)`` as deleted (endpoints stay)."""
        if self.has_edge(u, v):
            self._deleted_edges.add(edge_key(u, v))
            self._num_edges -= 1

    # -- read API -------------------------------------------------------
    def has_node(self, node: Hashable) -> bool:
        return node not in self._deleted_nodes and self._base.has_node(node)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        if u in self._deleted_nodes or v in self._deleted_nodes:
            return False
        if edge_key(u, v) in self._deleted_edges:
            return False
        return self._base.has_edge(u, v)

    def neighbors(self, node: Hashable) -> Iterator[Hashable]:
        if not self.has_node(node):
            raise NodeNotFoundError(node)
        for other in self._base.neighbors(node):
            if other not in self._deleted_nodes and edge_key(node, other) not in self._deleted_edges:
                yield other

    def degree(self, node: Hashable) -> int:
        return sum(1 for _ in self.neighbors(node))

    def nodes(self) -> Iterator[Hashable]:
        for node in self._base.nodes():
            if node not in self._deleted_nodes:
                yield node

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        for u, v in self._base.edges():
            if self.has_edge(u, v):
                yield edge_key(u, v)

    def number_of_nodes(self) -> int:
        return self._base.number_of_nodes() - len(self._deleted_nodes)

    def number_of_edges(self) -> int:
        return self._num_edges

    def __contains__(self, node: Hashable) -> bool:
        return self.has_node(node)

    def __iter__(self) -> Iterator[Hashable]:
        return self.nodes()

    def __len__(self) -> int:
        return self.number_of_nodes()

    # -- snapshots --------------------------------------------------------
    def materialize(self) -> UndirectedGraph:
        """Return a standalone copy of the current (post-deletion) graph."""
        snapshot = UndirectedGraph()
        for node in self.nodes():
            snapshot.add_node(node)
        for u, v in self.edges():
            snapshot.add_edge(u, v)
        return snapshot

    def deleted_nodes(self) -> set[Hashable]:
        """Return a copy of the deleted-node set."""
        return set(self._deleted_nodes)

    def __repr__(self) -> str:
        return (
            f"DeletionView(nodes={self.number_of_nodes()}, edges={self.number_of_edges()}, "
            f"deleted_nodes={len(self._deleted_nodes)})"
        )


def induced_subgraph(graph: UndirectedGraph, nodes: Iterable[Hashable]) -> UndirectedGraph:
    """Return the induced subgraph on ``nodes`` (alias of ``graph.subgraph``)."""
    return graph.subgraph(nodes)


def filter_edges_by(
    graph: UndirectedGraph,
    predicate: Callable[[Hashable, Hashable], bool],
) -> UndirectedGraph:
    """Return the subgraph containing exactly the edges satisfying ``predicate``.

    All endpoints of surviving edges are kept; isolated nodes are dropped.
    LCTC uses this with ``predicate = trussness(e) >= k_t`` to restrict the
    expansion to high-trussness edges.
    """
    filtered = UndirectedGraph()
    for u, v in graph.edges():
        if predicate(u, v):
            filtered.add_edge(u, v)
    return filtered
