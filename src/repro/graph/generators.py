"""Synthetic graph generators used as dataset substrates.

The paper evaluates on six SNAP networks (Facebook, Amazon, DBLP, Youtube,
LiveJournal, Orkut) with ground-truth communities.  Those raw datasets are
not available offline, so the reproduction generates laptop-scale synthetic
networks with the *structural features the algorithms are sensitive to*:

* dense overlapping communities (so non-trivial k-trusses exist),
* heavy-tailed degree distributions (so degree-rank query generation and the
  "free rider" phenomenon behave like the paper describes),
* a connected backbone (the paper assumes connected graphs), and
* planted ground-truth community memberships (for the F1 evaluation of
  Figure 12).

Every generator is deterministic given a seed and returns plain
:class:`~repro.graph.simple_graph.UndirectedGraph` objects.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.graph.simple_graph import UndirectedGraph

__all__ = [
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "relaxed_caveman_graph",
    "planted_partition_graph",
    "overlapping_community_graph",
    "random_regular_ish_graph",
    "connect_components",
]


def complete_graph(num_nodes: int, offset: int = 0) -> UndirectedGraph:
    """Return the complete graph on ``num_nodes`` nodes labelled ``offset..``."""
    graph = UndirectedGraph()
    nodes = list(range(offset, offset + num_nodes))
    graph.add_nodes_from(nodes)
    for index, u in enumerate(nodes):
        for v in nodes[index + 1:]:
            graph.add_edge(u, v)
    return graph


def cycle_graph(num_nodes: int, offset: int = 0) -> UndirectedGraph:
    """Return a cycle on ``num_nodes >= 3`` nodes."""
    if num_nodes < 3:
        raise ConfigurationError("cycle_graph needs at least 3 nodes")
    graph = UndirectedGraph()
    for index in range(num_nodes):
        graph.add_edge(offset + index, offset + (index + 1) % num_nodes)
    return graph


def path_graph(num_nodes: int, offset: int = 0) -> UndirectedGraph:
    """Return a simple path on ``num_nodes`` nodes."""
    graph = UndirectedGraph()
    if num_nodes == 1:
        graph.add_node(offset)
        return graph
    for index in range(num_nodes - 1):
        graph.add_edge(offset + index, offset + index + 1)
    return graph


def star_graph(num_leaves: int, offset: int = 0) -> UndirectedGraph:
    """Return a star with one hub (node ``offset``) and ``num_leaves`` leaves."""
    graph = UndirectedGraph()
    graph.add_node(offset)
    for index in range(1, num_leaves + 1):
        graph.add_edge(offset, offset + index)
    return graph


def erdos_renyi_graph(num_nodes: int, probability: float, seed: int = 0) -> UndirectedGraph:
    """Return a G(n, p) random graph."""
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {probability}")
    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(num_nodes))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def barabasi_albert_graph(num_nodes: int, edges_per_node: int, seed: int = 0) -> UndirectedGraph:
    """Return a preferential-attachment graph with ``edges_per_node`` new edges per node.

    Produces the heavy-tailed degree distributions the paper's degree-rank
    experiments (Figures 7-8) rely on.
    """
    if edges_per_node < 1 or edges_per_node >= num_nodes:
        raise ConfigurationError(
            f"edges_per_node must satisfy 1 <= m < n, got m={edges_per_node}, n={num_nodes}"
        )
    rng = random.Random(seed)
    graph = complete_graph(edges_per_node + 1)
    # Repeated-node list implements preferential attachment in O(1) sampling.
    attachment_pool: list[int] = []
    for node in graph.nodes():
        attachment_pool.extend([node] * graph.degree(node))
    for new_node in range(edges_per_node + 1, num_nodes):
        targets: set[int] = set()
        while len(targets) < edges_per_node:
            targets.add(rng.choice(attachment_pool))
        for target in targets:
            graph.add_edge(new_node, target)
            attachment_pool.append(target)
            attachment_pool.append(new_node)
    return graph


def relaxed_caveman_graph(
    num_cliques: int,
    clique_size: int,
    rewire_probability: float,
    seed: int = 0,
) -> UndirectedGraph:
    """Return a relaxed caveman graph: cliques whose edges get randomly rewired.

    Classic small benchmark with crisp community structure; each clique is a
    ``clique_size``-truss before rewiring, which makes it a good smoke-test
    substrate for the truss machinery.
    """
    rng = random.Random(seed)
    graph = UndirectedGraph()
    nodes_per_group: list[list[int]] = []
    for group in range(num_cliques):
        members = list(range(group * clique_size, (group + 1) * clique_size))
        nodes_per_group.append(members)
        for index, u in enumerate(members):
            for v in members[index + 1:]:
                graph.add_edge(u, v)
    all_nodes = list(graph.nodes())
    for u, v in list(graph.edges()):
        if rng.random() < rewire_probability:
            new_target = rng.choice(all_nodes)
            if new_target != u and not graph.has_edge(u, new_target):
                graph.remove_edge(u, v)
                graph.add_edge(u, new_target)
    return graph


def planted_partition_graph(
    num_groups: int,
    group_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> tuple[UndirectedGraph, list[set[int]]]:
    """Return a planted-partition graph and its ground-truth groups.

    Nodes are split into ``num_groups`` blocks of ``group_size``; two nodes in
    the same block are connected with probability ``p_in``, nodes in different
    blocks with probability ``p_out``.
    """
    if not (0 <= p_out <= p_in <= 1):
        raise ConfigurationError("need 0 <= p_out <= p_in <= 1 for a planted partition")
    rng = random.Random(seed)
    graph = UndirectedGraph()
    total = num_groups * group_size
    graph.add_nodes_from(range(total))
    membership = [node // group_size for node in range(total)]
    for u in range(total):
        for v in range(u + 1, total):
            probability = p_in if membership[u] == membership[v] else p_out
            if rng.random() < probability:
                graph.add_edge(u, v)
    groups = [
        {node for node in range(total) if membership[node] == group}
        for group in range(num_groups)
    ]
    return graph, groups


def overlapping_community_graph(
    num_nodes: int,
    num_communities: int,
    community_size_range: tuple[int, int],
    memberships_per_node: int = 1,
    p_in: float = 0.6,
    p_background: float = 0.001,
    seed: int = 0,
) -> tuple[UndirectedGraph, list[set[int]]]:
    """Return an AGM-style graph with overlapping planted communities.

    This is the workhorse generator for the SNAP stand-ins.  It follows the
    affiliation-graph intuition behind the SNAP ground-truth communities
    (Yang & Leskovec): each node joins ``memberships_per_node`` communities on
    average, members of the same community connect with probability ``p_in``,
    and a sparse background G(n, p_background) keeps the network connected
    and adds "free rider" periphery around the dense cores.

    Returns the graph and the list of ground-truth community node sets.
    """
    low, high = community_size_range
    if low < 3 or high < low:
        raise ConfigurationError("community sizes must satisfy 3 <= low <= high")
    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(num_nodes))

    communities: list[set[int]] = []
    node_pool = list(range(num_nodes))
    for _ in range(num_communities):
        size = rng.randint(low, min(high, num_nodes))
        members = set(rng.sample(node_pool, size))
        communities.append(members)

    # Give every node roughly `memberships_per_node` memberships by topping up
    # nodes that ended with none.
    member_of: dict[int, int] = {node: 0 for node in range(num_nodes)}
    for community in communities:
        for node in community:
            member_of[node] += 1
    for node, count in member_of.items():
        while count < memberships_per_node:
            community = rng.choice(communities)
            if node not in community:
                community.add(node)
                count += 1
        member_of[node] = count

    for community in communities:
        members = sorted(community)
        for index, u in enumerate(members):
            for v in members[index + 1:]:
                if rng.random() < p_in:
                    graph.add_edge(u, v)

    # Sparse background noise.
    expected_background = p_background * num_nodes * (num_nodes - 1) / 2.0
    for _ in range(int(expected_background)):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            graph.add_edge(u, v)

    connect_components(graph, rng)
    return graph, communities


def random_regular_ish_graph(num_nodes: int, degree: int, seed: int = 0) -> UndirectedGraph:
    """Return a graph where every node has degree close to ``degree``.

    Built by a configuration-model style pairing with rejection of self-loops
    and multi-edges; exact regularity is not guaranteed but the degree spread
    is tight, which is what the ablation benchmarks need.
    """
    if degree >= num_nodes:
        raise ConfigurationError("degree must be smaller than the number of nodes")
    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(num_nodes))
    stubs = [node for node in range(num_nodes) for _ in range(degree)]
    rng.shuffle(stubs)
    for index in range(0, len(stubs) - 1, 2):
        u, v = stubs[index], stubs[index + 1]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def connect_components(graph: UndirectedGraph, rng: random.Random | None = None) -> int:
    """Add the minimum number of random edges needed to make ``graph`` connected.

    Returns the number of edges added.  The paper assumes connected input
    graphs, so dataset builders call this as a final stitching pass.
    """
    from repro.graph.components import connected_components

    rng = rng or random.Random(0)
    components = connected_components(graph)
    if len(components) <= 1:
        return 0
    added = 0
    anchor_component = max(components, key=len)
    anchor_nodes = sorted(anchor_component, key=repr)
    for component in components:
        if component is anchor_component:
            continue
        source = rng.choice(sorted(component, key=repr))
        target = rng.choice(anchor_nodes)
        graph.add_edge(source, target)
        added += 1
    return added


def union_of_graphs(graphs: Sequence[UndirectedGraph]) -> UndirectedGraph:
    """Return the union (node- and edge-wise) of the given graphs."""
    merged = UndirectedGraph()
    for graph in graphs:
        merged.add_nodes_from(graph.nodes())
        merged.add_edges_from(graph.edges())
    return merged


def relabel_graph(
    graph: UndirectedGraph, mapping: dict[Hashable, Hashable]
) -> UndirectedGraph:
    """Return a copy of ``graph`` with nodes renamed through ``mapping``.

    Nodes absent from ``mapping`` keep their labels.
    """
    renamed = UndirectedGraph()
    for node in graph.nodes():
        renamed.add_node(mapping.get(node, node))
    for u, v in graph.edges():
        renamed.add_edge(mapping.get(u, u), mapping.get(v, v))
    return renamed


def induced_community_subgraphs(
    graph: UndirectedGraph, communities: Iterable[set[Hashable]]
) -> list[UndirectedGraph]:
    """Return the induced subgraph of each ground-truth community."""
    return [graph.subgraph(community) for community in communities]
