"""Canonical per-edge dictionary keys: :func:`edge_key`.

Every per-edge attribute in the library — supports
(:mod:`repro.graph.triangles`), trussness
(:mod:`repro.trusses.decomposition`), the support table of
:class:`~repro.trusses.maintenance.KTrussMaintainer`, the edge hash of
:class:`~repro.trusses.index.TrussIndex`, the edge sets of
:class:`~repro.graph.delta.GraphDelta` — lives in a dict (or set) keyed by
this one function.  This module is the single home of the key contract; the
modules above reference it instead of restating it.

.. warning:: **Mixed-type ordering caveat.**
   The canonical form orders the endpoints by ``<`` when the comparison
   succeeds and by ``repr`` string when it raises (mixed, non-comparable
   node types).  Consumers of edge-keyed dicts must respect three
   consequences:

   1. Keys must be produced by calling :func:`edge_key` — never by
      hand-ordering a tuple.  For mixed node types the canonical order is
      *not* ``sorted()`` order: ``edge_key(2, "10")`` is ``("10", 2)``
      because ``2 <= "10"`` raises and the ``repr`` fallback kicks in,
      while a different pair of the same types may order the other way
      round.
   2. The per-pair order is deterministic, but there is no consistent
      *global* total order across a mixed-type graph; do not assume the
      first elements of all keys are mutually comparable (e.g. when
      sorting a dict's keys, pass ``key=repr``).
   3. Node labels that compare equal across types — ``1``, ``1.0`` and
      ``True`` — hash equal too, so they collide both as graph nodes and
      inside edge keys.  Use one label type per logical node.
"""

from __future__ import annotations

from collections.abc import Hashable

__all__ = ["EdgeKey", "edge_key"]

#: A canonical undirected-edge key as returned by :func:`edge_key`.
EdgeKey = tuple[Hashable, Hashable]


def edge_key(u: Hashable, v: Hashable) -> EdgeKey:
    """Return the canonical (order-independent) key for edge ``(u, v)``.

    Both endpoints of an undirected edge always map to the same tuple; see
    the module docstring for the mixed-type ordering caveat.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)
