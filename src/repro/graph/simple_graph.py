"""An undirected simple graph backed by adjacency sets.

This is the graph substrate that every other subsystem of the library builds
on.  The paper's algorithms (truss decomposition, the truss index, FindG0,
k-truss maintenance, the CTC search algorithms) all need the same small set
of primitives:

* O(1) amortised edge insertion / deletion,
* O(1) adjacency tests and degree queries,
* iteration over nodes, edges and neighbourhoods,
* cheap copies and induced subgraphs, and
* canonical edge keys so that per-edge attributes such as *support* and
  *trussness* can be stored in plain dictionaries.

Nodes may be any hashable object (ints for the synthetic benchmarks, strings
for the DBLP-style case study).  Edges are unordered pairs of distinct nodes;
self-loops and parallel edges are rejected because the k-truss model of the
paper is defined on simple graphs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import TypeVar

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.keys import edge_key

Node = TypeVar("Node", bound=Hashable)

__all__ = ["UndirectedGraph", "edge_key"]


class UndirectedGraph:
    """A mutable, undirected, simple graph.

    The adjacency structure is a ``dict`` mapping every node to the ``set``
    of its neighbours.  The edge count is tracked incrementally so that
    ``number_of_edges`` is O(1).

    Examples
    --------
    >>> g = UndirectedGraph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.number_of_edges()
    2
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[tuple[Hashable, Hashable]] | None = None) -> None:
        self._adj: dict[Hashable, set[Hashable]] = {}
        self._num_edges: int = 0
        if edges is not None:
            self.add_edges_from(edges)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Hashable, Hashable]]) -> "UndirectedGraph":
        """Build a graph from an iterable of ``(u, v)`` pairs."""
        return cls(edges)

    @classmethod
    def from_adjacency(cls, adjacency: Mapping[Hashable, Iterable[Hashable]]) -> "UndirectedGraph":
        """Build a graph from a node -> neighbours mapping.

        Every node in the mapping is added even if it has no neighbours, so
        isolated nodes survive the round trip.
        """
        graph = cls()
        for node, neighbors in adjacency.items():
            graph.add_node(node)
            for other in neighbors:
                graph.add_edge(node, other)
        return graph

    def copy(self) -> "UndirectedGraph":
        """Return a deep copy of the adjacency structure (nodes are shared)."""
        clone = UndirectedGraph()
        clone._adj = {node: set(neighbors) for node, neighbors in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    @classmethod
    def _from_trusted_parts(
        cls, adjacency: dict[Hashable, set[Hashable]], num_edges: int
    ) -> "UndirectedGraph":
        """Adopt a pre-built adjacency structure *without* per-edge validation.

        Internal bulk-construction seam for array-side producers (the CSR
        kernels materializing communities): ``adjacency`` must already be a
        symmetric simple-graph ``node -> neighbour set`` mapping with
        ``num_edges`` distinct undirected edges, and ownership transfers to
        the new graph.  Going through :meth:`add_edge` instead costs two
        dict probes, two set adds and a counter bump per edge — the
        dominant cost of materializing large communities.
        """
        graph = cls()
        graph._adj = adjacency
        graph._num_edges = num_edges
        return graph

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> None:
        """Add ``node`` if not already present (no-op otherwise)."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_nodes_from(self, nodes: Iterable[Hashable]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and all its incident edges.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        try:
            neighbors = self._adj.pop(node)
        except KeyError:
            raise NodeNotFoundError(node) from None
        for other in neighbors:
            self._adj[other].discard(node)
        self._num_edges -= len(neighbors)

    def remove_nodes_from(self, nodes: Iterable[Hashable]) -> None:
        """Remove every node in ``nodes``; missing nodes are ignored."""
        for node in nodes:
            if node in self._adj:
                self.remove_node(node)

    def has_node(self, node: Hashable) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._adj

    def nodes(self) -> Iterator[Hashable]:
        """Iterate over the nodes of the graph."""
        return iter(self._adj)

    def node_set(self) -> set[Hashable]:
        """Return a fresh set of all nodes."""
        return set(self._adj)

    def number_of_nodes(self) -> int:
        """Return the number of nodes."""
        return len(self._adj)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add the undirected edge ``(u, v)``, creating endpoints as needed.

        Adding an existing edge is a no-op.  Self-loops are rejected because
        truss support is undefined on them.
        """
        if u == v:
            raise GraphError(f"self-loop ({u!r}, {v!r}) not allowed in a simple graph")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    def add_edges_from(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove the edge ``(u, v)``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def remove_edges_from(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Remove every edge in ``edges``; missing edges are ignored."""
        for u, v in edges:
            if self.has_edge(u, v):
                self.remove_edge(u, v)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Return ``True`` if the edge ``(u, v)`` is present."""
        neighbors = self._adj.get(u)
        return neighbors is not None and v in neighbors

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Iterate over each edge exactly once, in canonical key order per edge."""
        seen: set[Hashable] = set()
        for node, neighbors in self._adj.items():
            for other in neighbors:
                if other not in seen:
                    yield edge_key(node, other)
            seen.add(node)

    def edge_set(self) -> set[tuple[Hashable, Hashable]]:
        """Return a fresh set of canonical edge keys."""
        return set(self.edges())

    def number_of_edges(self) -> int:
        """Return the number of edges."""
        return self._num_edges

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def neighbors(self, node: Hashable) -> set[Hashable]:
        """Return the *live* neighbour set of ``node``.

        The returned set is the internal adjacency set; callers must not
        mutate it.  Use ``set(graph.neighbors(v))`` for a private copy.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Hashable) -> int:
        """Return the degree of ``node``."""
        return len(self.neighbors(node))

    def degrees(self) -> dict[Hashable, int]:
        """Return a dict mapping every node to its degree."""
        return {node: len(neighbors) for node, neighbors in self._adj.items()}

    def max_degree(self) -> int:
        """Return the maximum degree, or 0 for an empty graph."""
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj.values())

    def common_neighbors(self, u: Hashable, v: Hashable) -> set[Hashable]:
        """Return the set of nodes adjacent to both ``u`` and ``v``."""
        first = self.neighbors(u)
        second = self.neighbors(v)
        if len(first) > len(second):
            first, second = second, first
        return {w for w in first if w in second}

    # ------------------------------------------------------------------
    # subgraphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Hashable]) -> "UndirectedGraph":
        """Return the subgraph induced on ``nodes`` as a new graph.

        Nodes that are not in the graph are silently ignored so callers can
        pass candidate sets without pre-filtering.
        """
        keep = {node for node in nodes if node in self._adj}
        sub = UndirectedGraph()
        for node in keep:
            sub.add_node(node)
            for other in self._adj[node]:
                if other in keep:
                    sub.add_edge(node, other)
        return sub

    def edge_subgraph(self, edges: Iterable[tuple[Hashable, Hashable]]) -> "UndirectedGraph":
        """Return the subgraph consisting exactly of ``edges`` (and their endpoints)."""
        sub = UndirectedGraph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            sub.add_edge(u, v)
        return sub

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: Hashable) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UndirectedGraph):
            return NotImplemented
        return self.node_set() == other.node_set() and self.edge_set() == other.edge_set()

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("UndirectedGraph is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
