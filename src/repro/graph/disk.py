"""On-disk primitives for the durability layer: framed logs, atomic dirs.

:mod:`repro.engine.persistence` composes three low-level guarantees from
this module, each chosen so that a crash at *any* byte boundary leaves the
store recoverable:

* **Checksummed record framing** — an append-only log is a fixed 8-byte
  magic header followed by records of ``u32 payload length | u32
  crc32(payload) | payload`` (little-endian).  Each record is written with
  a single ``write`` call, so a crashed append can only shorten the file —
  never interleave two records.  :func:`scan_records` exploits exactly
  that asymmetry: damage at the very end of the file (a short record, or a
  checksum mismatch on the *last* record) is a **torn tail** and is
  reported for silent truncation, while damage followed by more log bytes
  cannot be a crashed append and raises
  :class:`~repro.exceptions.WalCorruptionError`.
* **Checksummed manifests** — a small JSON document prefixed by the CRC32
  of its canonical encoding (:func:`write_manifest` /
  :func:`read_manifest`), so a half-written or bit-flipped manifest is
  detected before any array it describes is trusted.
* **Atomic directory publication** — :func:`publish_dir` fsyncs every file
  in a staged temp directory, ``os.rename``\\ s it to its final name (atomic
  on POSIX), and fsyncs the parent directory so the rename itself survives
  a power cut.  A crash before the rename leaves only a ``tmp-*`` orphan
  that recovery sweeps away; a crash after it leaves a complete, verified
  checkpoint.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.exceptions import WalCorruptionError

__all__ = [
    "HEADER_SIZE",
    "RECORD_HEADER_SIZE",
    "append_record",
    "file_crc32",
    "fsync_dir",
    "pack_record",
    "publish_dir",
    "read_manifest",
    "scan_records",
    "write_manifest",
]

#: Size of a log file's magic header, in bytes.
HEADER_SIZE = 8

#: Size of each record's ``(length, crc32)`` prefix, in bytes.
RECORD_HEADER_SIZE = 8

_RECORD_HEADER = struct.Struct("<II")


# ----------------------------------------------------------------------
# record framing
# ----------------------------------------------------------------------
def pack_record(payload: bytes) -> bytes:
    """Frame ``payload`` as one log record (length + CRC32 prefix)."""
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def append_record(handle, payload: bytes) -> int:
    """Append one framed record to ``handle`` with a single ``write`` call.

    The single-write discipline is load-bearing: it guarantees a crashed
    append can only leave a *prefix* of the record on disk (the torn-tail
    shape :func:`scan_records` repairs), never a record-sized hole in the
    middle of the log.  Returns the number of bytes written.
    """
    record = pack_record(payload)
    handle.write(record)
    return len(record)


def scan_records(
    data: bytes, *, magic: bytes, path: str | None = None
) -> tuple[list[bytes], int]:
    """Parse a framed log; return ``(payloads, valid_length)``.

    ``valid_length`` is the byte length of the longest well-formed prefix —
    ``len(data)`` when the log is clean, less when a torn tail must be
    truncated back to the last whole record.

    Raises
    ------
    WalCorruptionError
        If the magic header is wrong, or a record fails its checksum with
        further log bytes *after* it (mid-log damage — see the module
        docstring for why only the last record may fail silently).
    """
    if not data:
        return [], 0
    if len(data) < len(magic):
        # A crash while writing the header itself: nothing was ever logged.
        return [], 0
    if data[: len(magic)] != magic:
        raise WalCorruptionError(
            f"bad log header {data[:len(magic)]!r} (expected {magic!r})",
            path=path,
            offset=0,
        )
    payloads: list[bytes] = []
    offset = len(magic)
    while offset < len(data):
        header = data[offset : offset + RECORD_HEADER_SIZE]
        if len(header) < RECORD_HEADER_SIZE:
            break  # torn tail: record prefix cut short
        length, checksum = _RECORD_HEADER.unpack(header)
        end = offset + RECORD_HEADER_SIZE + length
        if end > len(data):
            break  # torn tail: payload cut short
        payload = data[offset + RECORD_HEADER_SIZE : end]
        if zlib.crc32(payload) != checksum:
            if end == len(data):
                break  # torn tail: last record's payload damaged mid-write
            raise WalCorruptionError(
                f"checksum mismatch at offset {offset} with "
                f"{len(data) - end} log bytes after the damaged record",
                path=path,
                offset=offset,
            )
        payloads.append(payload)
        offset = end
    return payloads, offset


# ----------------------------------------------------------------------
# durability plumbing
# ----------------------------------------------------------------------
def fsync_dir(path: str | os.PathLike) -> None:
    """fsync a directory so entry creations/renames inside it are durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_file(path: str | os.PathLike) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def publish_dir(tmp_dir: str | os.PathLike, final_dir: str | os.PathLike) -> None:
    """Atomically publish a staged directory under its final name.

    Every regular file in ``tmp_dir`` is fsynced, then the directory is
    renamed into place and the parent directory fsynced — the standard
    write-temp/rename/fsync-parent recipe.  Readers either see the old
    world or the complete new one, never a half-written directory.
    """
    for name in os.listdir(tmp_dir):
        entry = os.path.join(tmp_dir, name)
        if os.path.isfile(entry):
            _fsync_file(entry)
    fsync_dir(tmp_dir)
    os.rename(tmp_dir, final_dir)
    fsync_dir(os.path.dirname(os.path.abspath(final_dir)))


def file_crc32(path: str | os.PathLike, chunk_size: int = 1 << 20) -> int:
    """Return the CRC32 of a file's contents (streamed, constant memory)."""
    checksum = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                return checksum
            checksum = zlib.crc32(chunk, checksum)


# ----------------------------------------------------------------------
# checksummed manifests
# ----------------------------------------------------------------------
def write_manifest(path: str | os.PathLike, manifest: dict) -> None:
    """Write ``manifest`` as canonical JSON prefixed by its own CRC32 line.

    The first line is the hex CRC32 of everything after it; a manifest that
    was cut short or bit-flipped therefore fails verification instead of
    being half-trusted.
    """
    body = json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8") + b"\n"
    with open(path, "wb") as handle:
        handle.write(f"{zlib.crc32(body):08x}\n".encode("ascii"))
        handle.write(body)


def read_manifest(path: str | os.PathLike) -> dict:
    """Read and verify a :func:`write_manifest` file.

    Raises
    ------
    ValueError
        If the file is missing its checksum line, fails it, or does not
        decode — callers treat any of these as "this checkpoint is not
        trustworthy" and fall back to an older one.
    """
    with open(path, "rb") as handle:
        header = handle.readline()
        body = handle.read()
    try:
        expected = int(header.strip(), 16)
    except ValueError:
        raise ValueError(f"manifest {path} has no checksum line") from None
    if zlib.crc32(body) != expected:
        raise ValueError(f"manifest {path} failed its checksum")
    try:
        return json.loads(body.decode("utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"manifest {path} is not valid JSON: {exc}") from exc
