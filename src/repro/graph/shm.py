""":class:`SharedArrayBundle`: named numpy arrays in POSIX shared memory.

The process-mode serving layer (:mod:`repro.engine.serving`) ships frozen
snapshot buffers — CSR adjacency, per-edge trussness/supports, triangle
incidence — to worker processes.  Pickling those arrays over a pipe would
copy megabytes per shard per snapshot; instead the parent publishes each
array once into a :class:`multiprocessing.shared_memory.SharedMemory`
block and sends only a small picklable *meta* descriptor.  Workers attach
read-only, zero-copy views onto the same physical pages.

Ownership contract (create → attach → unlink)
---------------------------------------------
* The **creator** (the parent process) calls :meth:`SharedArrayBundle.create`,
  keeps the returned bundle alive for as long as any worker may attach, and
  eventually calls :meth:`unlink` exactly once to release the segments.
* **Attachers** (workers) call :meth:`SharedArrayBundle.attach` on the
  pickled :attr:`meta` and get read-only array views; they call
  :meth:`close` when done (dropping their mapping, not the segments).
* Closing with live array views outstanding is **not** safe: on this
  interpreter ``mmap.close()`` force-unmaps without honouring numpy's
  buffer exports, leaving the views dangling (:meth:`close` still swallows
  the ``BufferError`` some builds raise instead).  Owners that must shed
  the segment *names* while keeping their views valid — the emergency
  signal-cleanup path — use :meth:`release_names`.

CPython's ``resource_tracker`` assumes every process that opens a segment
owns it and "cleans up" (unlinks!) segments still alive at process exit,
which would yank buffers out from under sibling workers.  Attachers
running under a *private* tracker (spawn-started workers) therefore pass
``untrack=True`` to unregister themselves right after opening (the
documented workaround for https://github.com/python/cpython/issues/82300;
Python 3.13's ``track=False`` parameter is not available on this floor).
Attachers sharing the creator's tracker — same process, or fork-started
workers — must *not* untrack: registration is one set entry per name, so
deregistering would also cancel the creator's entry and make its eventual
``unlink()`` trip the tracker.
"""

from __future__ import annotations

import pickle
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayBundle", "SharedBundleMeta"]


def _untrack(name: str) -> None:
    """Tell the resource tracker this process does not own segment ``name``."""
    try:  # pragma: no cover - defensive: private API, absent on some builds
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class SharedBundleMeta:
    """Picklable descriptor of a bundle: everything an attacher needs.

    ``arrays`` maps each array name to ``(segment_name, shape, dtype_str)``;
    ``objects_segment`` names the segment holding the pickled non-array
    payload (``None`` when there is none) and ``objects_size`` its pickle
    length in bytes.
    """

    arrays: dict[str, tuple[str, tuple[int, ...], str]]
    objects_segment: str | None
    objects_size: int


class SharedArrayBundle:
    """A set of named numpy arrays (plus one pickled-object payload) in shm.

    Build with :meth:`create` (owner side) or :meth:`attach` (worker side);
    the constructor is internal.  ``bundle[name]`` returns the array view;
    :attr:`objects` is the attached non-array payload dict.
    """

    def __init__(
        self,
        segments: list[shared_memory.SharedMemory],
        arrays: dict[str, np.ndarray],
        objects: dict,
        meta: SharedBundleMeta,
        owner: bool,
    ) -> None:
        self._segments = segments
        self._arrays = arrays
        self.objects = objects
        self.meta = meta
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        prefix: str,
        arrays: dict[str, np.ndarray],
        objects: dict | None = None,
    ) -> "SharedArrayBundle":
        """Publish ``arrays`` (and a pickled ``objects`` dict) into shm.

        ``prefix`` seeds the segment names; a random suffix keeps two
        engines in one process from colliding.  The creator's own views
        stay writable (it owns the pages); attached views are read-only.
        """
        token = secrets.token_hex(4)
        segments: list[shared_memory.SharedMemory] = []
        views: dict[str, np.ndarray] = {}
        array_meta: dict[str, tuple[str, tuple[int, ...], str]] = {}
        try:
            for index, (name, array) in enumerate(arrays.items()):
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    name=f"{prefix}_{token}_{index}",
                    create=True,
                    size=max(1, array.nbytes),  # zero-size arrays still need a page
                )
                segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                views[name] = view
                array_meta[name] = (segment.name, array.shape, array.dtype.str)

            objects = dict(objects or {})
            objects_segment = None
            objects_size = 0
            if objects:
                payload = pickle.dumps(objects, protocol=pickle.HIGHEST_PROTOCOL)
                segment = shared_memory.SharedMemory(
                    name=f"{prefix}_{token}_obj", create=True, size=max(1, len(payload))
                )
                segments.append(segment)
                segment.buf[: len(payload)] = payload
                objects_segment = segment.name
                objects_size = len(payload)
        except Exception:
            for segment in segments:
                try:
                    segment.close()
                    segment.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            raise
        meta = SharedBundleMeta(
            arrays=array_meta,
            objects_segment=objects_segment,
            objects_size=objects_size,
        )
        return cls(segments, views, objects, meta, owner=True)

    @classmethod
    def attach(
        cls, meta: SharedBundleMeta, *, untrack: bool = False
    ) -> "SharedArrayBundle":
        """Map an existing bundle read-only from its pickled ``meta``.

        Pass ``untrack=True`` only from a process with its own resource
        tracker (a spawn-started worker) — see the module docstring.

        Raises
        ------
        FileNotFoundError
            If the owner already unlinked the segments.
        """
        segments: list[shared_memory.SharedMemory] = []
        views: dict[str, np.ndarray] = {}
        try:
            for name, (segment_name, shape, dtype) in meta.arrays.items():
                segment = shared_memory.SharedMemory(name=segment_name)
                if untrack:
                    _untrack(segment_name)
                segments.append(segment)
                view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
                view.flags.writeable = False
                views[name] = view
            objects: dict = {}
            if meta.objects_segment is not None:
                segment = shared_memory.SharedMemory(name=meta.objects_segment)
                if untrack:
                    _untrack(meta.objects_segment)
                segments.append(segment)
                objects = pickle.loads(bytes(segment.buf[: meta.objects_size]))
        except Exception:
            for segment in segments:
                try:
                    segment.close()
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
            raise
        return cls(segments, views, objects, meta, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (idempotent; segments stay alive).

        A mapping with live array views cannot be unmapped eagerly —
        CPython raises ``BufferError`` — so that case is deferred to view
        garbage collection rather than surfaced to the caller.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:
                pass

    def unlink(self) -> None:
        """Release the segments for good (owner only; implies :meth:`close`)."""
        if not self._owner:
            raise ValueError("only the creating process may unlink a bundle")
        self.close()
        for segment in self._segments:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    def release_names(self) -> None:
        """Remove the segment *names* without dropping this process's mapping.

        The emergency signal-cleanup path: the names must not outlive the
        process (a ``/dev/shm`` leak), but the owner's own array views must
        stay valid in case a chained signal handler elects to survive —
        unlike :meth:`close`, which force-unmaps and leaves any outstanding
        view dangling (``mmap.close()`` does not honour numpy's buffer
        exports on this interpreter).  The pages live on until the last
        mapping (ours, or an attached worker's) drops.  Owner only;
        idempotent — and a later :meth:`unlink` still works.
        """
        if not self._owner:
            raise ValueError("only the creating process may release a bundle")
        for segment in self._segments:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def array_names(self) -> list[str]:
        """Return the array names in insertion order."""
        return list(self._arrays)

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"{type(self).__name__}({role}, arrays={len(self._arrays)}, "
            f"segments={len(self._segments)})"
        )
