"""Interoperability with :mod:`networkx`.

The library itself never depends on networkx (all algorithms are implemented
from scratch on :class:`~repro.graph.simple_graph.UndirectedGraph`), but the
tests use networkx as an *independent oracle* for shortest paths, k-truss
extraction and connectivity, and downstream users may want to move graphs in
and out of the networkx ecosystem.
"""

from __future__ import annotations

from typing import Any

from repro.graph.simple_graph import UndirectedGraph

__all__ = ["to_networkx", "from_networkx", "networkx_available"]


def networkx_available() -> bool:
    """Return ``True`` if networkx can be imported in this environment."""
    try:
        import networkx  # noqa: F401
    except ImportError:
        return False
    return True


def to_networkx(graph: UndirectedGraph) -> Any:
    """Convert an :class:`UndirectedGraph` to a :class:`networkx.Graph`.

    Raises
    ------
    ImportError
        If networkx is not installed.
    """
    import networkx as nx

    converted = nx.Graph()
    converted.add_nodes_from(graph.nodes())
    converted.add_edges_from(graph.edges())
    return converted


def from_networkx(graph: Any) -> UndirectedGraph:
    """Convert a :class:`networkx.Graph` (or anything with nodes()/edges()) back.

    Directed or multi-graphs are flattened: edge directions and parallel
    edges are dropped, self-loops are skipped, matching the simple-graph
    model of the paper.
    """
    converted = UndirectedGraph()
    converted.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        if u != v:
            converted.add_edge(u, v)
    return converted
