"""Vectorized forward triangle enumeration on sorted CSR rows.

The sequential truss routines count and re-count triangles edge by edge
through Python dict probes; this module enumerates every triangle of a
:class:`~repro.graph.csr.CSRGraph` **once**, in bulk, with numpy primitives,
and materializes the two artifacts the level-synchronous decomposition
(:mod:`repro.trusses.csr_decomposition`) peels on:

* a flat **triangle array** ``edges`` of shape ``(T, 3)`` holding the three
  edge ids of each triangle, and
* a **triangle-incidence CSR** (``inc_indptr`` / ``inc_triangles``) mapping
  every edge id to the ids of the triangles containing it, so "kill the
  triangles through this frontier of edges" is one segmented gather (plus a
  scatter/scan dedup on the consumer side) instead of per-edge
  adjacency-map intersections.

Enumeration uses the standard forward orientation on the *node-id* order:
each triangle ``u < v < w`` is produced exactly once from its lowest edge
``(u, v)`` by scanning the forward slice of ``v``'s sorted row (neighbours
``w > v``) and testing ``w in N(u)`` with one batched ``np.searchsorted``
against the globally sorted composite key ``row * n + neighbour`` — the CSR
layout concatenates sorted rows in row order, so that key array is strictly
increasing and a single binary search resolves membership *and* yields the
slot (hence the edge id) of ``(u, w)``.  Candidate batches are bounded by
``candidate_budget`` slots so peak memory stays flat on skewed graphs.

Per-edge supports fall out as one ``np.bincount`` over the triangle array —
the same values as :func:`repro.trusses.csr_decomposition.csr_edge_supports`,
without any per-edge Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph, CSRPatch

__all__ = [
    "TriangleIncidence",
    "csr_triangle_incidence",
    "csr_triangle_supports",
    "patch_incidence",
    "subset_incidence",
    "triangle_nodes",
]

#: Upper bound on the number of candidate (edge, third-node) pairs expanded
#: per enumeration batch; bounds peak memory on skewed degree distributions.
DEFAULT_CANDIDATE_BUDGET = 1 << 20


@dataclass(frozen=True)
class TriangleIncidence:
    """Flat triangle enumeration plus per-edge triangle-incidence CSR.

    Attributes
    ----------
    edges:
        ``int64`` array of shape ``(T, 3)``; row ``t`` holds the edge ids
        ``(e_uv, e_uw, e_vw)`` of triangle ``u < v < w``.  Each triangle of
        the graph appears exactly once.
    supports:
        ``int64`` array of length ``m``: the triangle count of every edge
        (its k-truss *support*), equal to the number of rows of ``edges``
        mentioning it.
    inc_indptr, inc_triangles:
        CSR mapping edge ids to triangle ids: edge ``e`` lies in triangles
        ``inc_triangles[inc_indptr[e]:inc_indptr[e + 1]]`` (so
        ``inc_triangles`` has length ``3 * T`` and
        ``inc_indptr[e + 1] - inc_indptr[e] == supports[e]``).
    """

    edges: np.ndarray
    supports: np.ndarray
    inc_indptr: np.ndarray
    inc_triangles: np.ndarray

    @property
    def num_triangles(self) -> int:
        """The number of triangles ``T``."""
        return int(self.edges.shape[0])

    def triangles_of_edges(self, edge_ids: np.ndarray) -> np.ndarray:
        """Return the (non-unique) triangle ids incident to ``edge_ids``.

        One vectorized gather of the incidence rows of every listed edge; a
        triangle appears once per listed edge it contains, so callers that
        need distinct triangles apply ``np.unique`` on the result.
        """
        starts = self.inc_indptr[edge_ids]
        counts = self.inc_indptr[edge_ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        # Segment gather: repeat each segment's (start - preceding total) and
        # add a global arange — one repeat instead of two.
        offsets = np.cumsum(counts) - counts
        gather = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
        return self.inc_triangles[gather]


def _incidence_from_triangles(edges: np.ndarray, num_edges: int) -> TriangleIncidence:
    """Assemble the incidence CSR and supports from a ``(T, 3)`` triangle array."""
    flat = edges.ravel(order="F")  # all e_uv, then all e_uw, then all e_vw
    num_triangles = edges.shape[0]
    counts = np.bincount(flat, minlength=num_edges) if flat.size else np.zeros(
        num_edges, dtype=np.int64
    )
    inc_indptr = np.zeros(num_edges + 1, dtype=np.int64)
    np.cumsum(counts, out=inc_indptr[1:])
    # Triangle order within an edge's incidence list is irrelevant (the peel
    # treats it as a set), so pick the cheapest grouping sort: 2-pass radix
    # on a narrowed key when edge ids fit 16 bits, unstable introsort above.
    if num_edges <= np.iinfo(np.uint16).max:
        order = np.argsort(flat.astype(np.uint16), kind="stable")
    else:
        order = np.argsort(flat)
    inc_triangles = (order % num_triangles) if num_triangles else order
    return TriangleIncidence(
        edges=edges,
        supports=counts.astype(np.int64, copy=False),
        inc_indptr=inc_indptr,
        inc_triangles=inc_triangles.astype(np.int64, copy=False),
    )


def _enumerate_triangles(csr: CSRGraph, candidate_budget: int) -> np.ndarray:
    """Enumerate every triangle of ``csr`` as a ``(T, 3)`` edge-id array."""
    num_nodes = csr.number_of_nodes()
    num_edges = csr.number_of_edges()
    if num_edges == 0:
        return np.zeros((0, 3), dtype=np.int64)

    indptr, indices, slot_edge = csr.indptr, csr.indices, csr.slot_edge
    degrees = np.diff(indptr)
    row_of_slot = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    # Forward slice of each sorted row: the suffix of neighbours > the node.
    forward = indices > row_of_slot
    forward_count = np.bincount(row_of_slot[forward], minlength=num_nodes)
    forward_start = indptr[1:] - forward_count
    # Rows are concatenated in row order and sorted within, so this composite
    # key array is strictly increasing: one searchsorted resolves membership
    # of any (node, neighbour) pair and yields its slot.
    all_keys = row_of_slot * num_nodes + indices

    edge_u, edge_v = csr.edge_u, csr.edge_v
    cand_counts = forward_count[edge_v]
    cum = np.zeros(num_edges + 1, dtype=np.int64)
    np.cumsum(cand_counts, out=cum[1:])

    parts: list[np.ndarray] = []
    lo = 0
    while lo < num_edges:
        hi = int(np.searchsorted(cum, cum[lo] + candidate_budget, side="right")) - 1
        hi = min(max(hi, lo + 1), num_edges)
        counts = cand_counts[lo:hi]
        total = int(cum[hi] - cum[lo])
        if total == 0:
            lo = hi
            continue
        starts = forward_start[edge_v[lo:hi]]
        offsets = np.cumsum(counts) - counts
        gather = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
        # Candidate triangles of edge (u, v): third node w > v from v's
        # forward slice; (v, w) is the slot itself, (u, w) is the probe.
        w = indices[gather]
        e_uv = np.repeat(np.arange(lo, hi, dtype=np.int64), counts)
        probe = np.repeat(edge_u[lo:hi], counts) * num_nodes + w
        pos = np.searchsorted(all_keys, probe)
        pos = np.minimum(pos, all_keys.size - 1)
        hit = np.nonzero(all_keys[pos] == probe)[0]
        if hit.size:
            batch = np.empty((hit.size, 3), dtype=np.int64)
            batch[:, 0] = e_uv[hit]
            batch[:, 1] = slot_edge[pos[hit]]
            batch[:, 2] = slot_edge[gather[hit]]
            parts.append(batch)
        lo = hi

    if len(parts) == 1:
        return parts[0]
    if parts:
        return np.concatenate(parts, axis=0)
    return np.zeros((0, 3), dtype=np.int64)


def csr_triangle_incidence(
    csr: CSRGraph, *, candidate_budget: int = DEFAULT_CANDIDATE_BUDGET
) -> TriangleIncidence:
    """Enumerate every triangle of ``csr`` and build its incidence structure.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> inc = csr_triangle_incidence(CSRGraph.from_graph(complete_graph(4)))
    >>> inc.num_triangles, sorted(set(inc.supports.tolist()))
    (4, [2])
    """
    return _incidence_from_triangles(
        _enumerate_triangles(csr, candidate_budget), csr.number_of_edges()
    )


def csr_triangle_supports(
    csr: CSRGraph, *, candidate_budget: int = DEFAULT_CANDIDATE_BUDGET
) -> np.ndarray:
    """Return per-edge triangle counts (supports) without incidence assembly.

    For callers that only need the support array (e.g. bulk support
    counting), this skips the incidence-CSR grouping sort that
    :func:`csr_triangle_incidence` pays — one enumeration pass plus one
    ``np.bincount``.
    """
    triangles = _enumerate_triangles(csr, candidate_budget)
    if triangles.size == 0:
        return np.zeros(csr.number_of_edges(), dtype=np.int64)
    return np.bincount(
        triangles.ravel(), minlength=csr.number_of_edges()
    ).astype(np.int64, copy=False)


def subset_incidence(
    incidence: TriangleIncidence, parent_edge_ids: np.ndarray
) -> TriangleIncidence:
    """Restrict ``incidence`` to the subgraph induced by ``parent_edge_ids``.

    ``parent_edge_ids`` must be sorted and unique; local edge ``e`` of the
    result corresponds to ``parent_edge_ids[e]``, which is exactly the
    edge-id contract of :meth:`CSRGraph.edge_subgraph`.  The kept triangles
    are those with **all three** edges selected — i.e. the triangles of the
    edge subgraph — gathered locally through the incidence CSR, which is how
    the LCTC kernel re-decomposes its expansion without re-enumerating
    triangles from scratch.  The per-element work is proportional to the
    selected edges' triangle degrees; the sort-free dedup and edge
    translation do pay two O(parent)-sized scratch initializations (a
    ``bool`` per parent triangle, an ``int64`` per parent edge), a trade
    that beats sorting the candidate list at every scale measured here.
    """
    selected = np.asarray(parent_edge_ids, dtype=np.int64)
    num_local = int(selected.size)
    candidates = incidence.triangles_of_edges(selected)
    if candidates.size == 0:
        return _incidence_from_triangles(np.zeros((0, 3), dtype=np.int64), num_local)
    # Scatter/scan dedup (a triangle is gathered once per selected edge it
    # contains) — linear, and the scan yields the ids already sorted.
    flag = np.zeros(incidence.num_triangles, dtype=bool)
    flag[candidates] = True
    candidates = np.nonzero(flag)[0]
    # Parent-to-local edge translation through one lookup table; a corner
    # outside the selection maps to -1 and disqualifies its triangle.
    local_of = np.full(incidence.supports.size, -1, dtype=np.int64)
    local_of[selected] = np.arange(num_local, dtype=np.int64)
    local = local_of[incidence.edges[candidates]]
    present = (local >= 0).all(axis=1)
    return _incidence_from_triangles(np.ascontiguousarray(local[present]), num_local)


def _triangles_of_edges_local(csr: CSRGraph, edge_ids: np.ndarray) -> np.ndarray:
    """Enumerate every triangle of ``csr`` containing a listed edge, canonically.

    The local counterpart of :func:`_enumerate_triangles`: instead of scanning
    every forward row slice, each listed edge ``(u, v)`` intersects its
    endpoints' sorted rows with one ``searchsorted`` (shorter row probed into
    the longer), so the work is proportional to the touched rows' degrees.
    Rows are canonicalized to ``(e_uv, e_uw, e_vw)`` — which is simply
    ascending edge-id order, because edge ids are row-major over ``u < v <
    w`` — deduplicated (a triangle containing several listed edges is found
    once per listed edge), and returned sorted by ``(first, second)`` edge
    id, the exact order the full enumeration produces.
    """
    indptr, indices, slot_edge = csr.indptr, csr.indices, csr.slot_edge
    parts: list[np.ndarray] = []
    for edge, u, v in zip(
        edge_ids.tolist(), csr.edge_u[edge_ids].tolist(), csr.edge_v[edge_ids].tolist()
    ):
        if indptr[u + 1] - indptr[u] > indptr[v + 1] - indptr[v]:
            u, v = v, u
        a0, a1 = int(indptr[u]), int(indptr[u + 1])
        b0, b1 = int(indptr[v]), int(indptr[v + 1])
        row_a, row_b = indices[a0:a1], indices[b0:b1]
        if row_a.size == 0 or row_b.size == 0:
            continue
        pos = np.minimum(np.searchsorted(row_b, row_a), row_b.size - 1)
        hit = row_b[pos] == row_a  # common neighbours of u and v
        if not hit.any():
            continue
        batch = np.empty((int(np.count_nonzero(hit)), 3), dtype=np.int64)
        batch[:, 0] = edge
        batch[:, 1] = slot_edge[a0:a1][hit]
        batch[:, 2] = slot_edge[b0:b1][pos[hit]]
        parts.append(batch)
    if not parts:
        return np.zeros((0, 3), dtype=np.int64)
    rows = np.concatenate(parts, axis=0)
    rows.sort(axis=1)
    _, first = np.unique(rows[:, 0] * csr.number_of_edges() + rows[:, 1], return_index=True)
    return rows[first]


def patch_incidence(
    incidence: TriangleIncidence,
    patch: CSRPatch,
    new_csr: CSRGraph | None = None,
) -> TriangleIncidence:
    """Carry ``incidence`` across a :class:`~repro.graph.csr.CSRPatch`.

    ``incidence`` must describe the snapshot ``patch`` was applied to; the
    result is **bit-identical** to ``csr_triangle_incidence(patch.csr)`` —
    same triangle array (content *and* order), supports, and incidence CSR —
    but is assembled locally instead of re-enumerating the graph:

    1. triangles incident to a removed edge are dropped with one gather over
       the removed edges' incidence rows (the same gather the incremental
       truss update uses for deletion seeding);
    2. surviving triangles' corner edge ids are remapped through the patch's
       old↔new edge correspondence (a pure gather when the patch preserves
       edge order, a per-row re-canonicalization otherwise);
    3. the triangles the delta *created* — each contains at least one
       inserted edge — are enumerated via local ``searchsorted``
       intersections on the inserted edges' rows only;
    4. the two sorted runs are merged positionally and the supports /
       incidence CSR are re-derived from the merged triangle array by the
       same deterministic assembly a fresh enumeration uses.

    The per-patch cost is proportional to the surviving triangle count plus
    the touched rows' degrees — never to the size of the graph's candidate
    pair set, which is what full enumeration scans.

    ``new_csr`` defaults to ``patch.csr``; passing it explicitly merely
    documents which snapshot the result belongs to.
    """
    if new_csr is None:
        new_csr = patch.csr
    if (
        patch.node_remap is None
        and not patch.removed_edge_ids.size
        and not (patch.edge_origin < 0).any()
    ):
        return incidence  # empty delta: the structure is exactly current
    num_new_edges = new_csr.number_of_edges()

    # (1) drop every triangle that lost a corner to the deletion batch
    if patch.removed_edge_ids.size and incidence.num_triangles:
        lost = incidence.triangles_of_edges(patch.removed_edge_ids)
        keep = np.ones(incidence.num_triangles, dtype=bool)
        keep[lost] = False
        surviving = incidence.edges[keep]
    else:
        surviving = incidence.edges

    # (2) remap the survivors' corner edge ids into the new id space
    surviving = patch.new_ids_of_old(int(incidence.supports.size))[surviving]
    if surviving.size and not patch.preserves_edge_order():
        # A non-monotonic node remap reorders edge ids, so both the corner
        # order within each row and the row order must be re-canonicalized.
        surviving.sort(axis=1)
        order = np.argsort(
            surviving[:, 0] * num_new_edges + surviving[:, 1], kind="stable"
        )
        surviving = surviving[order]

    # (3) enumerate only the triangles the inserted edges created
    inserted = patch.inserted_edge_ids()
    fresh = (
        _triangles_of_edges_local(new_csr, inserted)
        if inserted.size
        else np.zeros((0, 3), dtype=np.int64)
    )

    # (4) positional merge of two disjoint sorted runs (survivors contain no
    # inserted edge as their lowest corner pair; fresh ones always do)
    if not fresh.size:
        merged = surviving
    elif not surviving.size:
        merged = fresh
    else:
        surv_keys = surviving[:, 0] * num_new_edges + surviving[:, 1]
        fresh_keys = fresh[:, 0] * num_new_edges + fresh[:, 1]
        slots = np.searchsorted(surv_keys, fresh_keys) + np.arange(
            fresh_keys.size, dtype=np.int64
        )
        merged = np.empty((surviving.shape[0] + fresh.shape[0], 3), dtype=np.int64)
        gaps = np.ones(merged.shape[0], dtype=bool)
        gaps[slots] = False
        merged[slots] = fresh
        merged[gaps] = surviving
    return _incidence_from_triangles(np.ascontiguousarray(merged), num_new_edges)


def triangle_nodes(csr: CSRGraph, incidence: TriangleIncidence | None = None) -> np.ndarray:
    """Return the node-id triples ``(u < v < w)`` of every triangle of ``csr``.

    The array twin of :func:`repro.graph.triangles.iter_triangles` (which
    yields label triples in peel order): row ``t`` of the result holds the
    sorted dense ids of triangle ``t`` of ``incidence`` (enumerated on the
    fly when not supplied).
    """
    if incidence is None:
        incidence = csr_triangle_incidence(csr)
    edges = incidence.edges
    # Triangle rows are (e_uv, e_uw, e_vw) with u < v < w, so u and v are
    # the endpoints of the first edge and w is the upper end of the last.
    return np.stack(
        [csr.edge_u[edges[:, 0]], csr.edge_v[edges[:, 0]], csr.edge_v[edges[:, 2]]],
        axis=1,
    )
