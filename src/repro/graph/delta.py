""":class:`GraphDelta`: a structured, composable batch of graph mutations.

The delta-propagation pipeline (mutable store → CSR read replica → truss
index) needs a precise record of *what changed* between two graph versions:
an opaque "version bumped" signal forces a full snapshot rebuild, while a
structured delta lets :meth:`repro.graph.csr.CSRGraph.apply_delta` patch
only the touched adjacency rows and
:func:`repro.trusses.incremental.incremental_truss_update` re-evaluate only
the affected edges.

A delta is **normalized against the graph it departs from**:

* ``added_nodes`` / ``removed_nodes`` contain only nodes that are actually
  absent / present in the base graph;
* ``added_edges`` / ``removed_edges`` contain only edges actually absent /
  present, as canonical :func:`~repro.graph.keys.edge_key` tuples;
* ``removed_edges`` includes **every** edge incident to a removed node
  (removing a node never leaves implicit edge removals);
* every endpoint of an added edge is either a surviving base node or listed
  in ``added_nodes``.

Producers (the :class:`~repro.engine.CTCEngine` mutation methods and the
:class:`~repro.trusses.maintenance.KTrussMaintainer` mutation hooks) emit
normalized deltas; :meth:`GraphDelta.then` composes consecutive normalized
deltas into one normalized delta, cancelling add/remove pairs, so a bounded
log of per-mutation deltas can be collapsed before a single ``apply_delta``
call.
"""

from __future__ import annotations

import pickle
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from repro.graph.keys import EdgeKey, edge_key

__all__ = ["GraphDelta"]

#: Pickle protocol pinned for :meth:`GraphDelta.to_bytes`.  Fixing it (rather
#: than ``HIGHEST_PROTOCOL``) keeps the byte stream — and therefore every WAL
#: record checksum — identical across the Python versions CI runs.
_WIRE_PROTOCOL = 4


def _canonical(edges: Iterable[tuple[Hashable, Hashable]]) -> frozenset[EdgeKey]:
    return frozenset(edge_key(u, v) for u, v in edges)


def _ordered(items: Iterable[Hashable]) -> tuple:
    """Return ``items`` in the canonical serialization order.

    Sorting by ``repr`` (never by the values themselves) gives one total
    order over arbitrary mixed-type labels — the same tie-break
    :func:`~repro.graph.keys.edge_key` and :meth:`CSRGraph.from_graph` use —
    so a delta built from *unordered* sets always serializes to the same
    bytes.  Without this, two equal deltas could hash to different WAL
    checksums purely from set iteration order (e.g. across hash-randomized
    interpreter runs).
    """
    return tuple(sorted(items, key=repr))


@dataclass(frozen=True)
class GraphDelta:
    """An immutable batch of node/edge additions and removals.

    Examples
    --------
    >>> d1 = GraphDelta(added_edges=[(1, 2)])
    >>> d2 = GraphDelta(removed_edges=[(2, 1)])
    >>> d1.then(d2).is_empty()
    True
    """

    added_nodes: frozenset[Hashable] = field(default_factory=frozenset)
    removed_nodes: frozenset[Hashable] = field(default_factory=frozenset)
    added_edges: frozenset[EdgeKey] = field(default_factory=frozenset)
    removed_edges: frozenset[EdgeKey] = field(default_factory=frozenset)

    def __init__(
        self,
        added_nodes: Iterable[Hashable] = (),
        removed_nodes: Iterable[Hashable] = (),
        added_edges: Iterable[tuple[Hashable, Hashable]] = (),
        removed_edges: Iterable[tuple[Hashable, Hashable]] = (),
    ) -> None:
        object.__setattr__(self, "added_nodes", frozenset(added_nodes))
        object.__setattr__(self, "removed_nodes", frozenset(removed_nodes))
        object.__setattr__(self, "added_edges", _canonical(added_edges))
        object.__setattr__(self, "removed_edges", _canonical(removed_edges))

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Return ``True`` if the delta changes nothing."""
        return not (
            self.added_nodes or self.removed_nodes or self.added_edges or self.removed_edges
        )

    def size(self) -> int:
        """Return the number of individual changes (the rebuild-policy metric)."""
        return (
            len(self.added_nodes)
            + len(self.removed_nodes)
            + len(self.added_edges)
            + len(self.removed_edges)
        )

    def touched_labels(self) -> set[Hashable]:
        """Return every node label mentioned by the delta (endpoints included)."""
        touched = set(self.added_nodes) | set(self.removed_nodes)
        for u, v in self.added_edges:
            touched.add(u)
            touched.add(v)
        for u, v in self.removed_edges:
            touched.add(u)
            touched.add(v)
        return touched

    # ------------------------------------------------------------------
    def then(self, later: "GraphDelta") -> "GraphDelta":
        """Compose this delta with ``later`` (applied afterwards) into one delta.

        Add/remove pairs cancel in both directions: an item added here and
        removed in ``later`` (or vice versa) nets out entirely, because
        normalization guarantees the first delta's removals were present in
        the base graph and its additions were not.  The composition of
        normalized deltas is therefore normalized against the same base.
        """
        return GraphDelta(
            added_nodes=(self.added_nodes - later.removed_nodes)
            | (later.added_nodes - self.removed_nodes),
            removed_nodes=(self.removed_nodes - later.added_nodes)
            | (later.removed_nodes - self.added_nodes),
            added_edges=(self.added_edges - later.removed_edges)
            | (later.added_edges - self.removed_edges),
            removed_edges=(self.removed_edges - later.added_edges)
            | (later.removed_edges - self.added_edges),
        )

    def inverted(self) -> "GraphDelta":
        """Return the delta that undoes this one (swap additions and removals).

        If this delta is normalized against graph ``G`` and produces ``G'``,
        the inverse is normalized against ``G'`` and produces ``G`` — its
        additions were just removed from ``G'`` (so they are absent) and its
        removals were just added (so they are present).  This is what makes
        the engine's delta log bidirectional: composing the inverses of the
        log entries for versions ``v+1..b`` *newest first* replays a
        version-``b`` snapshot **backwards** to version ``v``.

        ``d.then(d.inverted())`` and ``d.inverted().then(d)`` are both the
        empty delta.
        """
        return GraphDelta(
            added_nodes=self.removed_nodes,
            removed_nodes=self.added_nodes,
            added_edges=self.removed_edges,
            removed_edges=self.added_edges,
        )

    # ------------------------------------------------------------------
    # canonical serialization (the WAL wire format)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to canonical bytes: equal deltas give equal bytes.

        The four change sets are emitted as ``repr``-sorted tuples (see
        :func:`_ordered`) pickled at a pinned protocol, so
        serialize → deserialize → serialize is byte-stable — the property
        the write-ahead log's CRC32 checksums depend on.  Labels may be any
        picklable hashable.
        """
        return pickle.dumps(
            (
                _ordered(self.added_nodes),
                _ordered(self.removed_nodes),
                _ordered(self.added_edges),
                _ordered(self.removed_edges),
            ),
            protocol=_WIRE_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "GraphDelta":
        """Rebuild a delta from :meth:`to_bytes` output.

        Raises
        ------
        ValueError
            If ``payload`` does not decode to a delta (truncated pickle,
            wrong shape) — the WAL reader maps this onto its corruption
            handling.
        """
        try:
            added_nodes, removed_nodes, added_edges, removed_edges = pickle.loads(
                payload
            )
        except Exception as exc:
            raise ValueError(f"not a serialized GraphDelta: {exc}") from exc
        return cls(
            added_nodes=added_nodes,
            removed_nodes=removed_nodes,
            added_edges=added_edges,
            removed_edges=removed_edges,
        )

    @staticmethod
    def chain(deltas: Iterable["GraphDelta"]) -> "GraphDelta":
        """Compose a sequence of deltas (oldest first) into one."""
        combined = GraphDelta()
        for delta in deltas:
            combined = combined.then(delta)
        return combined

    def __repr__(self) -> str:
        return (
            f"GraphDelta(+{len(self.added_nodes)}n/-{len(self.removed_nodes)}n, "
            f"+{len(self.added_edges)}e/-{len(self.removed_edges)}e)"
        )
