"""Global structural properties: density, degeneracy, arboricity bounds.

These back two parts of the reproduction:

* Table 2 reports ``|V|``, ``|E|``, ``d_max`` and the maximum trussness of
  each network; the degree statistics live here (trussness comes from
  :mod:`repro.trusses.decomposition`).
* The complexity analysis of the paper is stated in terms of the arboricity
  ``rho <= min(d_max, sqrt(m))`` (Remark 1 / Theorem 4); we expose both the
  Chiba–Nishizeki upper bound and the degeneracy-based bound
  ``rho <= degeneracy`` so benchmarks can report them.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graph.simple_graph import UndirectedGraph

__all__ = [
    "edge_density",
    "average_degree",
    "degree_histogram",
    "degeneracy_ordering",
    "degeneracy",
    "arboricity_upper_bound",
    "graph_summary",
]


def edge_density(graph: UndirectedGraph) -> float:
    """Return ``2|E| / (|V| (|V|-1))``, the metric reported in Figures 5-10.

    Graphs with fewer than two nodes have density 0.0 by convention.
    """
    node_count = graph.number_of_nodes()
    if node_count < 2:
        return 0.0
    return 2.0 * graph.number_of_edges() / (node_count * (node_count - 1))


def average_degree(graph: UndirectedGraph) -> float:
    """Return the mean degree ``2|E| / |V|`` (0.0 for the empty graph)."""
    node_count = graph.number_of_nodes()
    if node_count == 0:
        return 0.0
    return 2.0 * graph.number_of_edges() / node_count


def degree_histogram(graph: UndirectedGraph) -> dict[int, int]:
    """Return a mapping ``degree -> number of nodes with that degree``."""
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        degree = graph.degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def degeneracy_ordering(graph: UndirectedGraph) -> tuple[list[Hashable], int]:
    """Return a degeneracy ordering and the degeneracy of the graph.

    The ordering repeatedly removes a minimum-degree node (bucket queue, so
    the whole procedure is O(n + m)).  The degeneracy is the largest degree
    encountered at removal time; it equals the maximum core number and upper
    bounds the arboricity.
    """
    degrees = graph.degrees()
    if not degrees:
        return [], 0
    max_degree = max(degrees.values())
    buckets: list[set[Hashable]] = [set() for _ in range(max_degree + 1)]
    for node, degree in degrees.items():
        buckets[degree].add(node)
    ordering: list[Hashable] = []
    removed: set[Hashable] = set()
    degeneracy_value = 0
    current = dict(degrees)
    pointer = 0
    total = graph.number_of_nodes()
    while len(ordering) < total:
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        node = buckets[pointer].pop()
        degeneracy_value = max(degeneracy_value, current[node])
        ordering.append(node)
        removed.add(node)
        for neighbor in graph.neighbors(node):
            if neighbor in removed:
                continue
            old = current[neighbor]
            buckets[old].discard(neighbor)
            current[neighbor] = old - 1
            buckets[old - 1].add(neighbor)
            if old - 1 < pointer:
                pointer = old - 1
    return ordering, degeneracy_value


def degeneracy(graph: UndirectedGraph) -> int:
    """Return the degeneracy (maximum core number) of the graph."""
    return degeneracy_ordering(graph)[1]


def arboricity_upper_bound(graph: UndirectedGraph) -> int:
    """Return ``min(d_max, ceil(sqrt(m)), degeneracy)``, an upper bound on arboricity.

    The paper's Remark 1 uses ``rho <= min(d_max, sqrt(m))`` (Chiba-Nishizeki);
    the degeneracy bound is usually tighter on social networks so we take the
    minimum of all three.
    """
    edge_count = graph.number_of_edges()
    if edge_count == 0:
        return 0
    sqrt_bound = int(edge_count ** 0.5)
    if sqrt_bound * sqrt_bound < edge_count:
        sqrt_bound += 1
    return min(graph.max_degree(), sqrt_bound, max(1, degeneracy(graph)))


def graph_summary(graph: UndirectedGraph) -> dict[str, float]:
    """Return the headline statistics used by Table 2 style reporting."""
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "max_degree": graph.max_degree(),
        "average_degree": average_degree(graph),
        "density": edge_density(graph),
    }
