"""Triangle listing, edge support and clustering coefficients.

Triangles are the building block of the k-truss model: the *support* of an
edge ``(u, v)`` is the number of triangles that contain it, i.e. the number
of common neighbours of ``u`` and ``v`` (Section 2 of the paper).  Truss
decomposition, FindG0's final support computation (Algorithm 2, line 15) and
k-truss maintenance (Algorithm 3) all consume these primitives.

The enumeration follows the standard degree-ordering technique: orient each
edge from the lower-ranked endpoint to the higher-ranked one and only scan
forward neighbourhoods, so each triangle is reported exactly once and the
total work is O(m^1.5) in the worst case (O(rho * m) with arboricity rho).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from repro.graph.keys import edge_key
from repro.graph.simple_graph import UndirectedGraph

__all__ = [
    "edge_support",
    "all_edge_supports",
    "triangle_count",
    "triangles_of_edge",
    "iter_triangles",
    "node_triangle_counts",
    "local_clustering_coefficient",
    "average_clustering_coefficient",
    "global_clustering_coefficient",
]


def edge_support(graph: UndirectedGraph, u: Hashable, v: Hashable) -> int:
    """Return the support of edge ``(u, v)``: the number of triangles through it."""
    return len(graph.common_neighbors(u, v))


def _degree_rank(graph: UndirectedGraph) -> dict[Hashable, tuple[int, str]]:
    """Return a total order on nodes by (degree, repr) used to orient edges."""
    return {node: (graph.degree(node), repr(node)) for node in graph.nodes()}


def all_edge_supports(graph: UndirectedGraph) -> dict[tuple[Hashable, Hashable], int]:
    """Return the support of every edge, keyed by canonical edge key.

    Runs in O(sum over oriented edges of forward-degree) time, which is the
    classic compact-forward triangle counting bound.

    Also accepts a frozen :class:`~repro.graph.csr.CSRGraph` snapshot, in
    which case the array-based counter of
    :func:`~repro.trusses.csr_decomposition.csr_edge_supports` runs and its
    result is converted to the same canonical-edge-key dict.  (The imports
    are deferred so the graph layer stays import-time independent of the
    truss layer.)
    """
    if not isinstance(graph, UndirectedGraph):
        from repro.graph.csr import CSRGraph

        if isinstance(graph, CSRGraph):
            from repro.trusses.csr_decomposition import csr_edge_supports

            values = csr_edge_supports(graph)
            return {graph.edge_key_of(e): int(values[e]) for e in range(graph.number_of_edges())}
    supports: dict[tuple[Hashable, Hashable], int] = {
        edge_key(u, v): 0 for u, v in graph.edges()
    }
    rank = _degree_rank(graph)
    # Forward adjacency: neighbours with strictly higher rank.
    forward: dict[Hashable, list[Hashable]] = {
        node: [other for other in graph.neighbors(node) if rank[other] > rank[node]]
        for node in graph.nodes()
    }
    forward_sets = {node: set(neighbors) for node, neighbors in forward.items()}
    for u in graph.nodes():
        for v in forward[u]:
            common = forward_sets[u] & forward_sets[v]
            for w in common:
                supports[edge_key(u, v)] += 1
                supports[edge_key(u, w)] += 1
                supports[edge_key(v, w)] += 1
    return supports


def iter_triangles(graph: UndirectedGraph) -> Iterator[tuple[Hashable, Hashable, Hashable]]:
    """Yield each triangle of the graph exactly once as a 3-tuple of nodes."""
    rank = _degree_rank(graph)
    forward: dict[Hashable, set[Hashable]] = {
        node: {other for other in graph.neighbors(node) if rank[other] > rank[node]}
        for node in graph.nodes()
    }
    for u in graph.nodes():
        for v in forward[u]:
            for w in forward[u] & forward[v]:
                yield (u, v, w)


def triangle_count(graph: UndirectedGraph) -> int:
    """Return the total number of triangles in the graph."""
    return sum(1 for _ in iter_triangles(graph))


def triangles_of_edge(
    graph: UndirectedGraph, u: Hashable, v: Hashable
) -> list[tuple[Hashable, Hashable, Hashable]]:
    """Return the triangles containing edge ``(u, v)`` as ``(u, v, w)`` tuples."""
    return [(u, v, w) for w in graph.common_neighbors(u, v)]


def node_triangle_counts(graph: UndirectedGraph) -> dict[Hashable, int]:
    """Return, for every node, the number of triangles it participates in."""
    counts: dict[Hashable, int] = {node: 0 for node in graph.nodes()}
    for u, v, w in iter_triangles(graph):
        counts[u] += 1
        counts[v] += 1
        counts[w] += 1
    return counts


def local_clustering_coefficient(graph: UndirectedGraph, node: Hashable) -> float:
    """Return the local clustering coefficient of ``node``.

    Defined as the number of edges among the node's neighbours divided by the
    number of neighbour pairs; 0.0 for nodes of degree < 2.
    """
    neighbors = list(graph.neighbors(node))
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = 0
    neighbor_set = set(neighbors)
    for index, first in enumerate(neighbors):
        adjacency = graph.neighbors(first)
        for second in neighbors[index + 1:]:
            if second in adjacency and second in neighbor_set:
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def average_clustering_coefficient(graph: UndirectedGraph) -> float:
    """Return the mean local clustering coefficient over all nodes (0.0 if empty)."""
    total_nodes = graph.number_of_nodes()
    if total_nodes == 0:
        return 0.0
    return sum(local_clustering_coefficient(graph, node) for node in graph.nodes()) / total_nodes


def global_clustering_coefficient(graph: UndirectedGraph) -> float:
    """Return the transitivity: 3 * triangles / number of connected triples."""
    triples = 0
    for node in graph.nodes():
        degree = graph.degree(node)
        triples += degree * (degree - 1) // 2
    if triples == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / triples
