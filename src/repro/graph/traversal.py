"""Breadth-first traversal, shortest distances, eccentricity and diameter.

All CTC algorithms in the paper rely on unweighted shortest-path distances:

* the *vertex query distance* ``dist(v, Q) = max_{q in Q} dist(v, q)`` drives
  which nodes get peeled (Algorithms 1 and 4),
* the *graph query distance* ``dist(H, Q) = max_{v in H} dist(v, Q)`` is the
  quantity the greedy framework minimises, and
* the *diameter* is the quality measure the model optimises and that the
  experiments report (Figures 13 and 14).

Everything here is plain BFS; graphs are unweighted so BFS gives exact
shortest paths in O(n + m) per source.  The quadratic consumer —
:func:`diameter` — additionally has a CSR fast path: a
:class:`~repro.graph.csr.CSRGraph` input (or a dict graph big enough to
amortize freezing one) runs its per-source sweeps on the masked frontier
BFS of :mod:`repro.graph.csr_bfs` instead of Python dict hops.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Sequence

from repro.exceptions import NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.csr_bfs import csr_diameter
from repro.graph.simple_graph import UndirectedGraph

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "bfs_layers",
    "shortest_path",
    "shortest_path_length",
    "eccentricity",
    "diameter",
    "diameter_lower_bound_two_sweep",
    "query_distances",
    "graph_query_distance",
]

_INF = float("inf")

#: :func:`diameter` freezes a dict graph into CSR form at or above this many
#: nodes: the freeze is one O(n + m) pass while the all-pairs sweep it
#: accelerates is quadratic, so it amortizes quickly — but below this size
#: the plain Python BFS finishes before the freeze would.
DIAMETER_CSR_THRESHOLD = 64


def bfs_distances(
    graph: UndirectedGraph,
    source: Hashable,
    cutoff: float | None = None,
) -> dict[Hashable, int]:
    """Return hop distances from ``source`` to every reachable node.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Start node; must exist in the graph.
    cutoff:
        If given, stop expanding once the frontier distance exceeds ``cutoff``;
        only nodes within ``cutoff`` hops are returned.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    distances: dict[Hashable, int] = {source: 0}
    queue: deque[Hashable] = deque([source])
    while queue:
        node = queue.popleft()
        next_distance = distances[node] + 1
        if cutoff is not None and next_distance > cutoff:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = next_distance
                queue.append(neighbor)
    return distances


def bfs_tree(graph: UndirectedGraph, source: Hashable) -> dict[Hashable, Hashable | None]:
    """Return a BFS predecessor map rooted at ``source``.

    The root maps to ``None``; every other reachable node maps to its parent
    on some shortest path from the root.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    parents: dict[Hashable, Hashable | None] = {source: None}
    queue: deque[Hashable] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in parents:
                parents[neighbor] = node
                queue.append(neighbor)
    return parents


def bfs_layers(graph: UndirectedGraph, sources: Iterable[Hashable]) -> list[set[Hashable]]:
    """Return BFS layers (frontiers) expanding simultaneously from ``sources``.

    Layer 0 is the source set itself; layer ``i`` contains nodes at distance
    exactly ``i`` from the nearest source.  Used by the LCTC expansion step,
    which grows the Steiner tree outward one ring at a time.
    """
    frontier = {node for node in sources}
    for node in frontier:
        if node not in graph:
            raise NodeNotFoundError(node)
    layers: list[set[Hashable]] = []
    visited = set(frontier)
    while frontier:
        layers.append(frontier)
        next_frontier: set[Hashable] = set()
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
    return layers


def shortest_path(
    graph: UndirectedGraph, source: Hashable, target: Hashable
) -> list[Hashable] | None:
    """Return one shortest path from ``source`` to ``target`` or ``None``.

    The path includes both endpoints.  A node's path to itself is ``[node]``.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parents: dict[Hashable, Hashable | None] = {source: None}
    queue: deque[Hashable] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in parents:
                continue
            parents[neighbor] = node
            if neighbor == target:
                path = [target]
                current: Hashable | None = node
                while current is not None:
                    path.append(current)
                    current = parents[current]
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def shortest_path_length(graph: UndirectedGraph, source: Hashable, target: Hashable) -> float:
    """Return the hop distance between two nodes, or ``inf`` if disconnected."""
    if target not in graph:
        raise NodeNotFoundError(target)
    distances = bfs_distances(graph, source)
    return distances.get(target, _INF)


def eccentricity(graph: UndirectedGraph, node: Hashable) -> float:
    """Return the eccentricity of ``node`` within its connected component.

    If the graph has nodes unreachable from ``node`` the eccentricity is
    still reported relative to the reachable set (matching how the paper
    always measures diameters of connected communities); callers that need
    to detect disconnection should compare reachable counts explicitly.
    """
    distances = bfs_distances(graph, node)
    return max(distances.values()) if distances else 0


def diameter(
    graph: UndirectedGraph | CSRGraph, nodes: Iterable[Hashable] | None = None
) -> float:
    """Return the exact diameter via all-pairs BFS.

    Parameters
    ----------
    graph:
        Graph whose diameter is requested.  A :class:`CSRGraph` snapshot is
        accepted directly and swept with the masked frontier BFS; a dict
        graph with at least :data:`DIAMETER_CSR_THRESHOLD` nodes is frozen
        to one first — the engine-result communities the experiment
        harness measures stop paying n Python BFS passes either way.
    nodes:
        Optional subset of source *labels*; when given, the maximum is
        taken over eccentricities of these sources only (useful for
        sampled estimates).

    Returns
    -------
    float
        The largest shortest-path distance between any pair of (reachable)
        nodes; ``inf`` if the graph is disconnected and ``nodes`` is None;
        0 for graphs with fewer than two nodes.
    """
    csr = graph if isinstance(graph, CSRGraph) else None
    if csr is None and graph.number_of_nodes() >= DIAMETER_CSR_THRESHOLD:
        csr = CSRGraph.from_graph(graph)
    if csr is not None:
        sources = None if nodes is None else [csr.node_id(label) for label in nodes]
        return csr_diameter(csr, sources)
    all_nodes = list(graph.nodes())
    if len(all_nodes) < 2:
        return 0
    sources: Sequence[Hashable] = list(nodes) if nodes is not None else all_nodes
    total = len(all_nodes)
    best = 0.0
    for source in sources:
        distances = bfs_distances(graph, source)
        if nodes is None and len(distances) < total:
            return _INF
        local = max(distances.values())
        if local > best:
            best = local
    return best


def diameter_lower_bound_two_sweep(graph: UndirectedGraph, start: Hashable | None = None) -> float:
    """Return a lower bound on the diameter using the classic double sweep.

    BFS from an arbitrary node, then BFS again from the farthest node found;
    the second eccentricity is a lower bound on the true diameter and is
    exact on trees.  Used by the experiment harness to avoid quadratic
    diameter computation on the larger synthetic networks.
    """
    if graph.number_of_nodes() < 2:
        return 0
    if start is None:
        start = next(iter(graph.nodes()))
    first = bfs_distances(graph, start)
    far_node = max(first, key=first.__getitem__)
    second = bfs_distances(graph, far_node)
    return max(second.values())


def query_distances(graph: UndirectedGraph, query: Iterable[Hashable]) -> dict[Hashable, float]:
    """Return ``dist(v, Q) = max_{q in Q} dist(v, q)`` for every node ``v``.

    Nodes unreachable from some query node get distance ``inf``.  This is
    Definition 3 of the paper and is computed with one BFS per query node,
    exactly as Section 4.3 prescribes ("|Q| BFS traversals").
    """
    query_list = list(query)
    if not query_list:
        return {node: 0.0 for node in graph.nodes()}
    maxima: dict[Hashable, float] = {node: 0.0 for node in graph.nodes()}
    for query_node in query_list:
        distances = bfs_distances(graph, query_node)
        for node in maxima:
            distance = distances.get(node, _INF)
            if distance > maxima[node]:
                maxima[node] = distance
    return maxima


def graph_query_distance(graph: UndirectedGraph, query: Iterable[Hashable]) -> float:
    """Return ``dist(G, Q) = max_{v in G} dist(v, Q)`` (Definition 3)."""
    distances = query_distances(graph, query)
    return max(distances.values()) if distances else 0.0
