"""Graph substrate: data structure, traversal, triangles, generators, I/O.

This subpackage is self-contained (no dependency on the truss or CTC layers)
and provides everything the paper's algorithms need from a graph library.
"""

from repro.graph.components import (
    UnionFind,
    connected_component_containing,
    connected_components,
    is_connected,
    largest_component,
    nodes_are_connected,
)
from repro.graph.properties import (
    arboricity_upper_bound,
    average_degree,
    degeneracy,
    degree_histogram,
    edge_density,
    graph_summary,
)
from repro.graph.csr import CSRGraph
from repro.graph.csr_bfs import (
    BFSResult,
    csr_diameter,
    fold_query_distance,
    masked_bfs,
    masked_eccentricity,
    masked_query_distances,
    path_from_parents,
)
from repro.graph.csr_triangles import (
    TriangleIncidence,
    csr_triangle_incidence,
    csr_triangle_supports,
    subset_incidence,
    triangle_nodes,
)
from repro.graph.delta import GraphDelta
from repro.graph.keys import EdgeKey, edge_key
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_layers,
    diameter,
    eccentricity,
    graph_query_distance,
    query_distances,
    shortest_path,
    shortest_path_length,
)
from repro.graph.triangles import (
    all_edge_supports,
    average_clustering_coefficient,
    edge_support,
    iter_triangles,
    triangle_count,
)
from repro.graph.views import DeletionView, filter_edges_by, induced_subgraph

__all__ = [
    "UndirectedGraph",
    "CSRGraph",
    "BFSResult",
    "masked_bfs",
    "masked_query_distances",
    "masked_eccentricity",
    "csr_diameter",
    "fold_query_distance",
    "path_from_parents",
    "TriangleIncidence",
    "csr_triangle_incidence",
    "csr_triangle_supports",
    "subset_incidence",
    "triangle_nodes",
    "GraphDelta",
    "EdgeKey",
    "edge_key",
    "UnionFind",
    "connected_components",
    "connected_component_containing",
    "is_connected",
    "largest_component",
    "nodes_are_connected",
    "bfs_distances",
    "bfs_layers",
    "shortest_path",
    "shortest_path_length",
    "eccentricity",
    "diameter",
    "query_distances",
    "graph_query_distance",
    "edge_support",
    "all_edge_supports",
    "iter_triangles",
    "triangle_count",
    "average_clustering_coefficient",
    "edge_density",
    "average_degree",
    "degree_histogram",
    "degeneracy",
    "arboricity_upper_bound",
    "graph_summary",
    "DeletionView",
    "induced_subgraph",
    "filter_edges_by",
]
