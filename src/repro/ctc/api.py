"""The one-call public facade: :func:`search`.

Most users want "give me the closest truss community for these query nodes"
without wiring the index, algorithm class and parameters themselves.  The
facade accepts a plain graph, a prebuilt :class:`TrussIndex`, or a
:class:`~repro.engine.CTCEngine` (whose cached snapshot index is used), a
query, and a method name, and dispatches to the right implementation:

======================  ===========================================================
``method``              algorithm
======================  ===========================================================
``"basic"``             Algorithm 1 — single-vertex peeling, 2-approximation
``"bulk-delete"``       Algorithm 4 — bulk peeling, (2 + eps)-approximation
``"lctc"``              Algorithm 5 — local exploration heuristic (default)
``"truss"``             the maximal connected k-truss ``G0`` only (no shrinking)
``"mdc"``               minimum-degree community search baseline
``"qdc"``               query-biased densest subgraph baseline
======================  ===========================================================
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import TYPE_CHECKING

from repro.ctc.basic import BasicCTC
from repro.ctc.bulk_delete import BulkDeleteCTC
from repro.ctc.local import DEFAULT_ETA, DEFAULT_GAMMA, LocalCTC
from repro.ctc.result import CommunityResult
from repro.exceptions import ConfigurationError
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.index import TrussIndex

if TYPE_CHECKING:
    from repro.engine import CTCEngine, EngineSnapshot  # noqa: F401 (docstring types)

__all__ = ["search", "available_methods", "build_index", "build_engine"]

_CTC_METHODS = ("basic", "bulk-delete", "lctc", "truss")
_BASELINE_METHODS = ("mdc", "qdc")


def available_methods() -> tuple[str, ...]:
    """Return the method names accepted by :func:`search`."""
    return _CTC_METHODS + _BASELINE_METHODS


def build_index(graph: UndirectedGraph) -> TrussIndex:
    """Build (and return) a truss index for ``graph``.

    Exposed so applications issuing many queries against the same graph can
    pay the decomposition cost once, exactly as the paper assumes.
    """
    return TrussIndex(graph)


def build_engine(
    graph: UndirectedGraph | None = None,
    *,
    cache_size: int | None = None,
    delta_threshold: float | None = None,
    decomp: str | None = None,
    window: int | None = None,
    copy: bool = True,
) -> "CTCEngine":
    """Build (and return) a :class:`~repro.engine.CTCEngine` over ``graph``.

    The engine is the right entry point for *mixed* workloads: reads are
    served from cached CSR/TrussIndex snapshots, and mutations issued
    through the engine propagate to those snapshots as structured
    :class:`~repro.graph.delta.GraphDelta` batches (patched in place while
    small, rebuilt from scratch past ``delta_threshold``).  ``window``
    selects the sliding-window mode instead: the returned
    :class:`~repro.engine.SlidingWindowEngine` retains only the most
    recently inserted ``window`` edges and expires the rest incrementally.
    ``None`` keeps an engine default; see :class:`~repro.engine.CTCEngine`
    for the knobs.
    """
    from repro.engine import CTCEngine, SlidingWindowEngine

    kwargs: dict = {"copy": copy}
    if cache_size is not None:
        kwargs["cache_size"] = cache_size
    if delta_threshold is not None:
        kwargs["delta_threshold"] = delta_threshold
    if decomp is not None:
        kwargs["decomp"] = decomp
    if window is not None:
        return SlidingWindowEngine(graph, window=window, **kwargs)
    return CTCEngine(graph, **kwargs)


def search(
    graph: UndirectedGraph | TrussIndex | "CTCEngine | EngineSnapshot",
    query: Sequence[Hashable],
    method: str = "lctc",
    *,
    eta: int = DEFAULT_ETA,
    gamma: float = DEFAULT_GAMMA,
    max_trussness_k: int | None = None,
    time_budget_seconds: float | None = None,
    kernel: str = "csr",
    at_version: int | None = None,
) -> CommunityResult:
    """Find a community containing ``query`` in ``graph``.

    Parameters
    ----------
    graph:
        An :class:`UndirectedGraph` (an index is built on the fly — pay this
        cost once per graph by preferring the alternatives for repeated
        queries), a prebuilt :class:`TrussIndex`, a
        :class:`~repro.engine.CTCEngine` (served from its cached snapshot),
        or a pinned :class:`~repro.engine.EngineSnapshot`.
    query:
        Non-empty sequence of query nodes; duplicates are ignored.
    method:
        One of :func:`available_methods`.
    eta, gamma:
        LCTC parameters (ignored by other methods).
    max_trussness_k:
        Optional cap on the trussness (the Figure 14 experiment); supported
        by ``lctc``.
    time_budget_seconds:
        Optional wall-clock cap for the global methods (``basic``,
        ``bulk-delete``), mirroring the paper's one-hour limit.
    kernel:
        Execution path for engine/snapshot inputs: ``"csr"`` (default) runs
        the CTC methods on the snapshot's array kernels
        (:mod:`repro.ctc.kernels`), ``"dict"`` forces the classic dict path
        through the snapshot's lazily built :class:`TrussIndex`.  Both
        return identical communities; plain graphs and prebuilt indexes
        always use the dict path.
    at_version:
        Pin the read to a historical store version (a time-travel read via
        :meth:`~repro.engine.CTCEngine.snapshot_at`).  Only valid when
        ``graph`` is a :class:`~repro.engine.CTCEngine`; raises
        :class:`~repro.exceptions.VersionEvictedError` when the version has
        aged out of the engine's delta log.

    Returns
    -------
    CommunityResult
        The community plus per-run statistics.

    Raises
    ------
    ConfigurationError
        If ``method`` or ``kernel`` is unknown.
    QueryError, NoCommunityFoundError
        Propagated from the underlying algorithm when the query is invalid
        or no community exists.
    """
    if kernel not in ("csr", "dict"):
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; expected 'csr' or 'dict'"
        )
    # Imported lazily: repro.engine depends on this module for search().
    from repro.engine import CTCEngine, EngineSnapshot

    if at_version is not None and not isinstance(graph, CTCEngine):
        raise ConfigurationError(
            "at_version requires a CTCEngine input (only the engine's delta "
            "log can materialize historical versions)"
        )
    snapshot = None
    if isinstance(graph, TrussIndex):
        index = graph
    elif isinstance(graph, CTCEngine):
        snapshot = graph.snapshot_at(at_version)
    elif isinstance(graph, EngineSnapshot):
        snapshot = graph
    else:
        index = TrussIndex(graph)
    if method in _BASELINE_METHODS:
        # The baselines only ever need the frozen graph, never an index, so
        # dispatch them before the kernel knob can force a lazy index build.
        baseline_graph = snapshot.graph if snapshot is not None else index.graph
        if method == "mdc":
            from repro.baselines.mdc import MinimumDegreeCommunity

            return MinimumDegreeCommunity(baseline_graph).search(query)
        from repro.baselines.qdc import QueryBiasedDensestCommunity

        return QueryBiasedDensestCommunity(baseline_graph).search(query)

    if snapshot is not None and kernel == "dict":
        index = snapshot.index
        snapshot = None
    # The CTC algorithm classes dispatch on what they are handed: an
    # EngineSnapshot selects the CSR-native kernels, a TrussIndex the dict
    # path (see repro.ctc.kernels.kernel_of).
    target = snapshot if snapshot is not None else index

    if method == "basic":
        return BasicCTC(target, time_budget_seconds=time_budget_seconds).search(query)
    if method == "bulk-delete":
        return BulkDeleteCTC(target, time_budget_seconds=time_budget_seconds).search(query)
    if method == "lctc":
        searcher = LocalCTC(target, eta=eta, gamma=gamma, max_trussness_k=max_trussness_k)
        return searcher.search(query)
    if method == "truss":
        from repro.baselines.truss_only import TrussOnly

        return TrussOnly(target).search(query)
    raise ConfigurationError(
        f"unknown method {method!r}; expected one of {available_methods()}"
    )
