"""Algorithm 4 (``BulkDelete`` / BD): bulk peeling for fast termination.

Instead of removing the single farthest vertex per iteration, BulkDelete
removes *every* vertex whose query distance is at least ``d - 1``, where
``d`` is the smallest graph query distance seen so far.  Lemma 6 shows each
iteration then removes at least ``k`` vertices, so the number of iterations
drops from O(min(n', m'/k)) to O(n'/k), at the cost of a slightly weaker
``(2 + eps)``-approximation (Theorem 6, ``eps = 2 / diam(H*)``).

A stricter variant (``threshold_offset=0``) deletes only vertices with
distance >= ``d``; it keeps the 2-approximation and is the shrinking step
LCTC applies to its locally-explored truss (Section 5.2, "Reduce the
diameter of G0").

Paper cross-references
----------------------
* Algorithm 4 — the bulk-deletion loop (:meth:`BulkDeleteCTC._select_victims`
  plugged into the shared peel engine of :class:`~repro.ctc.basic.BasicCTC`).
* Lemma 6 / Theorem 6 (Section 4.4) — iteration bound O(n'/k) and the
  ``(2 + eps)``-approximation guarantee.
* Section 5.2 — the conservative ``threshold_offset=0`` variant used inside
  LCTC.
* Figures 5-10 — the experiments where BD's speed/quality trade-off against
  Basic is measured (reproduced in ``benchmarks/bench_fig5_*`` ..
  ``bench_fig10_*``).

Vertex deletions are applied through
:class:`~repro.trusses.maintenance.KTrussMaintainer` (Algorithm 3), whose
per-edge support table is keyed by :func:`repro.graph.keys.edge_key` (see
that module for the key contract).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.ctc.basic import BasicCTC
from repro.ctc.kernels import bulk_delete_search as _kernel_bulk_delete_search
from repro.ctc.query_distance import QueryDistanceSnapshot
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.index import TrussIndex

__all__ = ["BulkDeleteCTC", "bulk_delete_ctc_search"]


class BulkDeleteCTC(BasicCTC):
    """Bulk-deletion CTC search (the paper's ``BD``).

    Parameters
    ----------
    index:
        Truss index over the graph.
    threshold_offset:
        ``1`` (default) reproduces Algorithm 4: peel vertices with
        ``dist(v, Q) >= d - 1``.  ``0`` gives the conservative variant used
        inside LCTC: peel only vertices with ``dist(v, Q) >= d``.
    batch_limit:
        Optional cap on how many vertices are removed per iteration.  The
        paper's LCTC implementation "carefully removes only a subset of nodes
        in L' which have the largest total of distances from all query
        nodes"; a finite ``batch_limit`` reproduces that behaviour (vertices
        are ranked by total query distance before truncation).
    """

    method_name = "bulk-delete"

    def __init__(
        self,
        index: TrussIndex,
        threshold_offset: int = 1,
        batch_limit: int | None = None,
        max_iterations: int | None = None,
        time_budget_seconds: float | None = None,
    ) -> None:
        super().__init__(
            index, max_iterations=max_iterations, time_budget_seconds=time_budget_seconds
        )
        if threshold_offset not in (0, 1):
            raise ValueError("threshold_offset must be 0 or 1")
        self._threshold_offset = threshold_offset
        self._batch_limit = batch_limit
        self._best_distance_seen = float("inf")

    # ------------------------------------------------------------------
    def _kernel_search(self, query: Sequence[Hashable]):
        """BulkDelete's CSR-native kernel (selected by the base-class seam)."""
        return _kernel_bulk_delete_search(
            self._kernel,
            query,
            threshold_offset=self._threshold_offset,
            batch_limit=self._batch_limit,
            max_iterations=self._max_iterations,
            time_budget_seconds=self._time_budget,
        )

    def search(self, query: Sequence[Hashable]):
        # The running minimum distance d is per-query state; reset it so the
        # searcher object can be reused across queries.
        self._best_distance_seen = float("inf")
        return super().search(query)

    # ------------------------------------------------------------------
    def _select_victims(self, snapshot: QueryDistanceSnapshot) -> set[Hashable]:
        current = snapshot.graph_query_distance
        if current <= 0:
            return set()
        # Algorithm 4 lines 6-8: d is the smallest graph query distance seen
        # so far; the deletion threshold is d - 1 (or d for the strict variant).
        if current < self._best_distance_seen:
            self._best_distance_seen = current
        threshold = self._best_distance_seen - self._threshold_offset
        if threshold <= 0:
            return set()
        victims = snapshot.vertices_at_least(threshold)
        if not victims:
            return set()
        if self._batch_limit is not None and len(victims) > self._batch_limit:
            # Keep the vertices farthest in *total* distance from the query
            # (the tie-break the paper's LCTC implementation describes).
            ranked = sorted(
                victims,
                key=lambda node: (snapshot.distances[node], repr(node)),
                reverse=True,
            )
            victims = set(ranked[: self._batch_limit])
        return victims


def bulk_delete_ctc_search(
    graph: UndirectedGraph,
    query: Sequence[Hashable],
    index: TrussIndex | None = None,
    **kwargs,
) -> "CommunityResult":
    """One-call convenience wrapper: build the index if needed and run ``BD``."""
    from repro.ctc.result import CommunityResult  # noqa: F401 (typing convenience)

    if index is None:
        index = TrussIndex(graph)
    return BulkDeleteCTC(index, **kwargs).search(query)
