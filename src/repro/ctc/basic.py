"""Algorithm 1 (``Basic``): the greedy 2-approximation for CTC search.

Outline (Section 4.1 of the paper):

1. ``G0`` <- maximal connected k-truss containing ``Q`` with the largest k
   (Algorithm 2, via the truss index).
2. Repeat while ``Q`` is still connected in the working graph: compute the
   query distance of every vertex, peel the single farthest vertex ``u*``,
   and restore the k-truss property (Algorithm 3).
3. Return the intermediate graph with the smallest *graph query distance*.

Theorem 3 shows the result R satisfies ``diam(R) <= 2 diam(H*)`` for any
optimal CTC ``H*`` while having the same (maximum) trussness.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence

from repro.ctc.kernels import basic_search as _kernel_basic_search
from repro.ctc.kernels import split_dispatch
from repro.ctc.query_distance import compute_snapshot
from repro.ctc.result import CommunityResult
from repro.graph.components import nodes_are_connected
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.extraction import find_maximal_connected_truss
from repro.trusses.index import TrussIndex
from repro.trusses.maintenance import KTrussMaintainer

__all__ = ["BasicCTC", "basic_ctc_search"]


class BasicCTC:
    """Greedy single-vertex peeling CTC search (the paper's ``Basic``).

    Parameters
    ----------
    index:
        A :class:`TrussIndex` over the graph to be searched (building the
        index once and reusing it across queries mirrors the paper's setup;
        Table 3 measures index construction separately from query time) —
        **or** an :class:`~repro.engine.EngineSnapshot`, in which case the
        search runs on the snapshot's CSR-native kernels
        (:mod:`repro.ctc.kernels`) instead of the dict path; both paths
        return identical communities.
    max_iterations:
        Safety cap on peeling iterations; ``None`` means no cap.  The paper's
        experiments impose a one-hour wall-clock cap instead — callers that
        want that behaviour can use ``time_budget_seconds``.
    time_budget_seconds:
        Optional wall-clock budget; when exceeded the best community found so
        far is returned and ``extras["timed_out"]`` is set.
    """

    method_name = "basic"

    def __init__(
        self,
        index: TrussIndex,
        max_iterations: int | None = None,
        time_budget_seconds: float | None = None,
    ) -> None:
        self._kernel, self._index = split_dispatch(index)
        self._max_iterations = max_iterations
        self._time_budget = time_budget_seconds

    # ------------------------------------------------------------------
    def _kernel_search(self, query: Sequence[Hashable]) -> CommunityResult:
        """Run this algorithm's CSR-native kernel (the snapshot path)."""
        return _kernel_basic_search(
            self._kernel,
            query,
            max_iterations=self._max_iterations,
            time_budget_seconds=self._time_budget,
        )

    def search(self, query: Sequence[Hashable]) -> CommunityResult:
        """Run the search for ``query`` and return the community found."""
        if self._kernel is not None:
            return self._kernel_search(query)
        start_time = time.perf_counter()
        initial_truss, k = find_maximal_connected_truss(self._index, query)
        query_nodes = tuple(dict.fromkeys(query))

        best_graph, best_distance, iterations, timed_out = self._peel(
            initial_truss, k, query_nodes, start_time
        )
        elapsed = time.perf_counter() - start_time
        result = CommunityResult(
            graph=best_graph,
            query=query_nodes,
            trussness=k,
            method=self.method_name,
            query_distance=best_distance,
            elapsed_seconds=elapsed,
            iterations=iterations,
            extras={
                "g0_nodes": initial_truss.number_of_nodes(),
                "g0_edges": initial_truss.number_of_edges(),
                "timed_out": timed_out,
            },
        )
        return result

    # ------------------------------------------------------------------
    def peel(
        self,
        initial_truss: UndirectedGraph,
        k: int,
        query_nodes: tuple[Hashable, ...],
        start_time: float | None = None,
    ) -> tuple[UndirectedGraph, float, int, bool]:
        """Run the greedy peeling loop on an explicit starting truss.

        This is the shared engine behind ``Basic``/``BulkDelete`` and is also
        used by LCTC to shrink its locally-explored truss.  Returns a tuple
        ``(best_graph, best_query_distance, iterations, timed_out)``.
        """
        if start_time is None:
            start_time = time.perf_counter()
        return self._peel(initial_truss, k, query_nodes, start_time)

    def _peel(
        self,
        initial_truss: UndirectedGraph,
        k: int,
        query_nodes: tuple[Hashable, ...],
        start_time: float,
    ) -> tuple[UndirectedGraph, float, int, bool]:
        maintainer = KTrussMaintainer(initial_truss, k)
        best_graph = initial_truss.copy()
        best_distance = float("inf")
        iterations = 0
        timed_out = False

        while nodes_are_connected(maintainer.graph, query_nodes):
            snapshot = compute_snapshot(maintainer.graph, query_nodes)
            current_distance = snapshot.graph_query_distance
            # Record the best feasible intermediate graph (Algorithm 1, line 10).
            if current_distance < best_distance:
                best_distance = current_distance
                best_graph = maintainer.snapshot()
            if self._time_budget is not None and (
                time.perf_counter() - start_time > self._time_budget
            ):
                timed_out = True
                break
            if self._max_iterations is not None and iterations >= self._max_iterations:
                break
            victims = self._select_victims(snapshot)
            if not victims:
                break
            maintainer.delete_vertices(victims)
            iterations += 1
        return best_graph, best_distance, iterations, timed_out

    # ------------------------------------------------------------------
    def _select_victims(self, snapshot) -> set[Hashable]:
        """Return the vertices to peel this iteration (Basic: the single farthest)."""
        farthest = snapshot.farthest_vertex()
        if farthest is None:
            return set()
        # Peeling a vertex at distance 0 means everything left is a query
        # node or at distance 0 from all of them; stop instead of thrashing.
        if snapshot.distances[farthest] <= 0:
            return set()
        return {farthest}


def basic_ctc_search(
    graph: UndirectedGraph,
    query: Sequence[Hashable],
    index: TrussIndex | None = None,
    **kwargs,
) -> CommunityResult:
    """One-call convenience wrapper: build the index if needed and run ``Basic``."""
    if index is None:
        index = TrussIndex(graph)
    return BasicCTC(index, **kwargs).search(query)
