"""Result objects returned by the community-search algorithms.

Every algorithm in :mod:`repro.ctc` and :mod:`repro.baselines` returns a
:class:`CommunityResult` so that the experiment harness, the metrics layer
and downstream users handle all methods uniformly.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Hashable
from typing import Any

from repro.graph.simple_graph import UndirectedGraph
from repro.graph.properties import edge_density
from repro.graph.traversal import diameter, graph_query_distance

__all__ = ["CommunityResult"]


@dataclasses.dataclass
class CommunityResult:
    """A community found for a query, plus the statistics the paper reports.

    Attributes
    ----------
    graph:
        The community subgraph itself.
    query:
        The query nodes the search was issued with (all contained in ``graph``
        unless the algorithm reports a failure).
    trussness:
        The trussness k of the community (2 when not applicable, e.g. MDC).
    method:
        Short algorithm label (``"basic"``, ``"bulk-delete"``, ``"lctc"``,
        ``"truss"``, ``"mdc"``, ``"qdc"``).
    query_distance:
        ``dist(H, Q)`` of the returned community.
    elapsed_seconds:
        Wall-clock time of the search, filled by the callers that time runs.
    iterations:
        Number of peeling iterations performed (0 when not applicable).
    extras:
        Free-form per-method diagnostics (e.g. the size of the explored
        region for LCTC, the number of cascade deletions, ...).
    """

    graph: UndirectedGraph
    query: tuple[Hashable, ...]
    trussness: int
    method: str
    query_distance: float = 0.0
    elapsed_seconds: float = 0.0
    iterations: int = 0
    extras: dict[str, Any] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> set[Hashable]:
        """The node set of the community."""
        return self.graph.node_set()

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the community."""
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """Number of edges in the community."""
        return self.graph.number_of_edges()

    def density(self) -> float:
        """Edge density ``2|E| / (|V|(|V|-1))`` of the community."""
        return edge_density(self.graph)

    def diameter(self) -> float:
        """Exact diameter of the community (all-pairs BFS)."""
        return diameter(self.graph)

    def contains_query(self) -> bool:
        """Return ``True`` if every query node is inside the community."""
        return all(self.graph.has_node(node) for node in self.query)

    def recompute_query_distance(self) -> float:
        """Recompute and store ``dist(H, Q)`` from the current graph."""
        self.query_distance = graph_query_distance(self.graph, self.query)
        return self.query_distance

    def summary(self) -> dict[str, Any]:
        """Return a flat dict suitable for tabular experiment reporting."""
        return {
            "method": self.method,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "trussness": self.trussness,
            "query_distance": self.query_distance,
            "density": self.density(),
            "elapsed_seconds": self.elapsed_seconds,
            "iterations": self.iterations,
        }

    def __repr__(self) -> str:
        return (
            f"CommunityResult(method={self.method!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, trussness={self.trussness})"
        )
