"""Free-rider-effect (FRE) analysis utilities.

Section 3.2 of the paper defines the free rider effect: a community
definition suffers from it when merging the found community ``H`` with some
query-independent optimum ``H*`` does not hurt the goodness metric, i.e. the
irrelevant nodes of ``H*`` ride along for free.

For the experimental evaluation the paper measures FRE avoidance indirectly:
the *percentage of nodes kept*, ``|V(R)| / |V(G0)|``, where ``R`` is the
community a method returns and ``G0`` is the full maximal connected k-truss
(the ``Truss`` baseline) — the smaller the percentage, the more free riders
the method removed (Figures 5-10, "The percentage").  This module provides
that measurement plus a direct FRE check following Definition 6.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.graph.simple_graph import UndirectedGraph
from repro.graph.components import is_connected
from repro.graph.traversal import diameter

__all__ = [
    "retained_node_percentage",
    "retained_edge_percentage",
    "free_riders",
    "suffers_free_rider_effect",
]


def retained_node_percentage(community: UndirectedGraph, reference: UndirectedGraph) -> float:
    """Return ``100 * |V(community)| / |V(reference)|`` (the paper's "percentage").

    ``reference`` is typically ``G0`` (the Truss baseline output).  An empty
    reference yields 100.0 by convention.
    """
    reference_size = reference.number_of_nodes()
    if reference_size == 0:
        return 100.0
    return 100.0 * community.number_of_nodes() / reference_size


def retained_edge_percentage(community: UndirectedGraph, reference: UndirectedGraph) -> float:
    """Return ``100 * |E(community)| / |E(reference)|``."""
    reference_size = reference.number_of_edges()
    if reference_size == 0:
        return 100.0
    return 100.0 * community.number_of_edges() / reference_size


def free_riders(community: UndirectedGraph, reference: UndirectedGraph) -> set[Hashable]:
    """Return the nodes of ``reference`` that the community excluded.

    In the paper's terminology, when ``reference`` is the query-independent
    (or merely larger) solution, these are the candidate "free riders" the
    tighter community avoided.
    """
    return reference.node_set() - community.node_set()


def suffers_free_rider_effect(
    graph: UndirectedGraph,
    community: UndirectedGraph,
    query_independent_optimum: UndirectedGraph,
    query: Sequence[Hashable],
) -> bool:
    """Check Definition 6 for the diameter goodness metric.

    Returns ``True`` if merging the community with the query-independent
    optimum yields a connected subgraph whose diameter is no larger than the
    community's own diameter — i.e. the free riders could be absorbed "for
    free" and the definition would not reject them.

    The CTC model is expected to return ``False`` here for maximal solutions
    (Proposition 1): either the union is disconnected or its diameter is
    strictly larger.
    """
    community_nodes = community.node_set()
    optimum_nodes = query_independent_optimum.node_set()
    if optimum_nodes <= community_nodes:
        # H* adds nothing; by convention the definition is not violated.
        return False
    union_nodes = community_nodes | optimum_nodes
    union_graph = graph.subgraph(union_nodes)
    if not is_connected(union_graph):
        return False
    if not all(union_graph.has_node(node) for node in query):
        return False
    return diameter(union_graph) <= diameter(community)
