"""LCTC's budgeted local expansion on the sorted-adjacency arrays.

Array twin of :meth:`repro.ctc.local.LocalCTC._expand` (Algorithm 5,
step 2): grow the Steiner tree outward in BFS order through edges whose
trussness is at least ``k_t``, stopping node growth once the budget ``eta``
is reached while still closing edges among already-included nodes.

The expansion is order-sensitive — the budget cuts the frontier — so the
BFS queue seeding (tree nodes by ``repr`` order) and the neighbour
iteration order (decreasing trussness, ``repr`` ties) both mirror the dict
path, which is what makes the kernel's communities identical to it.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque

from repro.ctc.kernels.context import QueryKernel

__all__ = ["expand"]


def expand(
    kernel: QueryKernel,
    tree_nodes: set[int],
    tree_edges: set[int],
    k_t: int,
    eta: int,
) -> tuple[set[int], set[int]]:
    """Grow the Steiner tree through trussness >= ``k_t`` edges up to ``eta`` nodes.

    Returns the expanded ``(node ids, edge ids)``.
    """
    repr_rank = kernel.repr_rank
    bounds, neighbors, slot_edges, neg_tau = kernel.sorted_adjacency
    nodes = set(tree_nodes)
    edges = set(tree_edges)
    queue: deque[int] = deque(sorted(tree_nodes, key=repr_rank.__getitem__))
    enqueued = set(queue)
    while queue:
        node = queue.popleft()
        start = bounds[node]
        stop = bisect_right(neg_tau, -k_t, start, bounds[node + 1])
        for slot in range(start, stop):
            neighbor = neighbors[slot]
            if len(nodes) >= eta and neighbor not in nodes:
                # Budget reached: keep closing edges among already-included
                # nodes (they are free density-wise) but add no new nodes.
                continue
            edges.add(slot_edges[slot])
            nodes.add(neighbor)
            if neighbor not in enqueued:
                enqueued.add(neighbor)
                queue.append(neighbor)
    return nodes, edges
