"""Top-level CSR-native searches: the kernel twins of the algorithm classes.

Each function takes a :class:`~repro.ctc.kernels.context.QueryKernel` and a
query, executes entirely on the snapshot arrays, and returns the same
:class:`~repro.ctc.result.CommunityResult` (community, trussness, query
distance, iteration count, extras) the corresponding dict-path class
produces — the equivalence suite (``tests/ctc/test_kernel_equivalence.py``)
holds them identical.  The algorithm classes
(:class:`~repro.ctc.basic.BasicCTC` & friends) dispatch here when
constructed from an :class:`~repro.engine.EngineSnapshot`.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence

import numpy as np

from repro.ctc.kernels.context import QueryKernel, validate_query_ids
from repro.ctc.kernels.find_g0 import connected_truss_at_k, find_g0
from repro.ctc.kernels.local import expand
from repro.ctc.kernels.peeling import (
    basic_selector,
    bulk_delete_selector,
    peel,
)
from repro.ctc.kernels.steiner import build_truss_steiner_tree, minimum_trussness_of_tree
from repro.ctc.result import CommunityResult
from repro.exceptions import NoCommunityFoundError
from repro.graph.csr_bfs import masked_query_distances
from repro.graph.csr_triangles import subset_incidence
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.csr_decomposition import (
    DEFAULT_VECTOR_THRESHOLD,
    csr_decompose,
    peel_incidence,
)

__all__ = ["basic_search", "bulk_delete_search", "lctc_search", "truss_search"]


def _graph_from_ids(kernel: QueryKernel, node_ids, edge_ids) -> UndirectedGraph:
    """Materialize a community (id sets) back into a label-space graph.

    Vectorized: endpoints gather through the label array, adjacency rows
    group with one stable argsort, and each neighbour set is built at C
    speed from its contiguous slice — no per-edge ``add_edge`` calls
    (:meth:`UndirectedGraph._from_trusted_parts` adopts the result).
    """
    csr = kernel.csr
    label_of = kernel.label_array
    nodes = np.sort(np.fromiter(node_ids, dtype=np.int64, count=len(node_ids)))
    adjacency: dict = {label_of[node]: set() for node in nodes.tolist()}
    edges = np.fromiter(edge_ids, dtype=np.int64, count=len(edge_ids))
    if edges.size:
        endpoint_u = csr.edge_u[edges]
        endpoint_v = csr.edge_v[edges]
        rows = np.concatenate([endpoint_u, endpoint_v])
        columns = np.concatenate([endpoint_v, endpoint_u])
        order = np.argsort(rows, kind="stable")
        rows = rows[order]
        column_labels = label_of[columns[order]].tolist()
        boundaries = np.nonzero(np.diff(rows))[0] + 1
        starts = [0, *boundaries.tolist(), rows.size]
        row_heads = rows[np.asarray(starts[:-1], dtype=np.int64)].tolist()
        for head, lo, hi in zip(row_heads, starts, starts[1:]):
            adjacency[label_of[head]] = set(column_labels[lo:hi])
    return UndirectedGraph._from_trusted_parts(adjacency, int(edges.size))


def _global_search(
    kernel: QueryKernel,
    query: Sequence[Hashable],
    method_name: str,
    selector_factory,
    max_iterations: int | None,
    time_budget_seconds: float | None,
    peel_engine: str,
) -> CommunityResult:
    """The shared Basic/BulkDelete pipeline: FindG0, then greedy peeling."""
    start_time = time.perf_counter()
    labels, query_ids = validate_query_ids(kernel.csr, query)
    g0_nodes, g0_edges, k = find_g0(kernel, query_ids)
    outcome = peel(
        kernel,
        g0_nodes,
        g0_edges,
        k,
        query_ids,
        selector_factory(kernel, query_ids),
        start_time=start_time,
        time_budget=time_budget_seconds,
        max_iterations=max_iterations,
        engine=peel_engine,
    )
    elapsed = time.perf_counter() - start_time
    return CommunityResult(
        graph=_graph_from_ids(kernel, outcome.node_ids, outcome.edge_ids),
        query=tuple(labels),
        trussness=k,
        method=method_name,
        query_distance=outcome.query_distance,
        elapsed_seconds=elapsed,
        iterations=outcome.iterations,
        extras={
            "g0_nodes": len(g0_nodes),
            "g0_edges": len(g0_edges),
            "timed_out": outcome.timed_out,
        },
    )


def basic_search(
    kernel: QueryKernel,
    query: Sequence[Hashable],
    *,
    max_iterations: int | None = None,
    time_budget_seconds: float | None = None,
    peel_engine: str = "auto",
) -> CommunityResult:
    """Algorithm 1 (``Basic``) on arrays: peel the single farthest vertex."""
    return _global_search(
        kernel, query, "basic", basic_selector, max_iterations,
        time_budget_seconds, peel_engine,
    )


def bulk_delete_search(
    kernel: QueryKernel,
    query: Sequence[Hashable],
    *,
    threshold_offset: int = 1,
    batch_limit: int | None = None,
    max_iterations: int | None = None,
    time_budget_seconds: float | None = None,
    peel_engine: str = "auto",
) -> CommunityResult:
    """Algorithm 4 (``BulkDelete``) on arrays: peel every vertex past the threshold."""

    def factory(kernel_: QueryKernel, query_ids: list[int]):
        return bulk_delete_selector(
            kernel_, query_ids, threshold_offset=threshold_offset, batch_limit=batch_limit
        )

    return _global_search(
        kernel, query, "bulk-delete", factory, max_iterations,
        time_budget_seconds, peel_engine,
    )


def truss_search(kernel: QueryKernel, query: Sequence[Hashable]) -> CommunityResult:
    """The ``Truss`` baseline on arrays: FindG0 with no shrinking."""
    start_time = time.perf_counter()
    labels, query_ids = validate_query_ids(kernel.csr, query)
    g0_nodes, g0_edges, k = find_g0(kernel, query_ids)
    # The graph query distance of G0, straight off the masked frontier BFS
    # (edge mask = the component's edges; identical maxima to the old
    # adjacency-map BFS, without materializing the subgraph).
    g0_mask = np.zeros(kernel.csr.number_of_edges(), dtype=bool)
    g0_mask[np.asarray(g0_edges, dtype=np.int64)] = True
    maxima = masked_query_distances(kernel.csr, query_ids, edge_alive=g0_mask)
    query_distance = float(maxima[np.asarray(g0_nodes, dtype=np.int64)].max())
    elapsed = time.perf_counter() - start_time
    return CommunityResult(
        graph=_graph_from_ids(kernel, g0_nodes, g0_edges),
        query=tuple(labels),
        trussness=k,
        method="truss",
        query_distance=query_distance,
        elapsed_seconds=elapsed,
        iterations=0,
    )


def lctc_search(
    kernel: QueryKernel,
    query: Sequence[Hashable],
    *,
    eta: int,
    gamma: float,
    max_trussness_k: int | None = None,
    peel_engine: str = "auto",
) -> CommunityResult:
    """Algorithm 5 (``LCTC``) on arrays: Steiner seed, budgeted expansion,
    local decomposition, conservative bulk shrink."""
    start_time = time.perf_counter()
    labels, query_ids = validate_query_ids(kernel.csr, query)

    # Step 1: truss-aware Steiner tree over the query nodes.
    tree_nodes, tree_edges = build_truss_steiner_tree(kernel, query_ids, gamma)
    k_t = minimum_trussness_of_tree(kernel, tree_nodes, tree_edges)
    if max_trussness_k is not None:
        k_t = min(k_t, max_trussness_k)

    # Step 2: expand the tree through edges of trussness >= k_t.
    expanded_nodes, expanded_edges = expand(kernel, tree_nodes, tree_edges, k_t, eta)

    # Step 3: decompose the (small) expansion on its own sub-snapshot and
    # extract the best connected truss containing Q, mapping ids back.
    sub = kernel.csr.edge_subgraph(
        sorted(expanded_edges), include_node_ids=sorted(expanded_nodes)
    )
    if (
        kernel.incidence is not None
        and sub.csr.number_of_edges() >= DEFAULT_VECTOR_THRESHOLD
    ):
        # Reuse the snapshot's triangle enumeration: restrict its incidence
        # arrays to the expansion (a local gather) and level-synchronously
        # peel — bit-identical to decomposing the sub-snapshot from scratch.
        # Tiny expansions skip the reuse for the same reason "auto" picks
        # the bucket queue there: the sequential peel undercuts the fixed
        # numpy costs below the threshold.
        local_incidence = subset_incidence(kernel.incidence, sub.edge_origin)
        local_trussness = peel_incidence(local_incidence)
    else:
        local_result = csr_decompose(sub.csr)
        local_trussness = local_result.trussness
        local_incidence = local_result.incidence  # None from the bucket path
    local_kernel = QueryKernel(sub.csr, local_trussness, incidence=local_incidence)
    node_origin = sub.node_origin.tolist()
    edge_origin = sub.edge_origin.tolist()
    local_id_of = {old: new for new, old in enumerate(node_origin)}
    local_query = [local_id_of[node] for node in query_ids]
    try:
        local_nodes, local_edges, k = find_g0(local_kernel, local_query)
        candidate_nodes = [node_origin[node] for node in local_nodes]
        candidate_edges = [edge_origin[edge] for edge in local_edges]
    except NoCommunityFoundError:
        # The expansion could not connect Q inside any truss; fall back to
        # the expansion itself (trussness 2), as the dict path does.
        candidate_nodes, candidate_edges = sorted(expanded_nodes), sorted(expanded_edges)
        local_edges = list(range(sub.csr.number_of_edges()))
        k = 2
    if max_trussness_k is not None and k > max_trussness_k:
        k = max_trussness_k
        try:
            local_nodes, local_edges = connected_truss_at_k(local_kernel, local_query, k)
            candidate_nodes = [node_origin[node] for node in local_nodes]
            candidate_edges = [edge_origin[edge] for edge in local_edges]
        except NoCommunityFoundError:
            pass  # keep the unrestricted candidate, as the dict path does

    # Step 4: shrink with the conservative BulkDelete variant.  The local
    # expansion already holds a triangle incidence of the candidate region;
    # restrict *that* (a subset of a subset, all in expansion-local ids)
    # and thread it through, so the peel never re-counts its starting
    # supports from scratch.
    candidate_incidence = None
    if local_incidence is not None:
        candidate_incidence = subset_incidence(
            local_incidence, np.asarray(sorted(local_edges), dtype=np.int64)
        )
    outcome = peel(
        kernel,
        candidate_nodes,
        candidate_edges,
        k,
        query_ids,
        bulk_delete_selector(kernel, query_ids, threshold_offset=0),
        start_time=start_time,
        engine=peel_engine,
        incidence=candidate_incidence,
    )
    elapsed = time.perf_counter() - start_time
    return CommunityResult(
        graph=_graph_from_ids(kernel, outcome.node_ids, outcome.edge_ids),
        query=tuple(labels),
        trussness=k,
        method="lctc",
        query_distance=outcome.query_distance,
        elapsed_seconds=elapsed,
        iterations=outcome.iterations,
        extras={
            "steiner_nodes": len(tree_nodes),
            "k_t": k_t,
            "expanded_nodes": len(expanded_nodes),
            "expanded_edges": len(expanded_edges),
            "eta": eta,
            "gamma": gamma,
        },
    )
