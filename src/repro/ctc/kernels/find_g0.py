"""FindG0 on arrays: maximal connected k-truss containing Q, largest k.

The dict path (:func:`repro.trusses.extraction.find_maximal_connected_truss`)
walks the truss index level by level, BFS-style.  Its *result* is canonical
— ``k`` is the largest trussness threshold at which the query nodes fall in
one connected component of the ``{tau(e) >= k}`` subgraph, and ``G0`` is
exactly that component — so the kernel is free to compute the same object a
cheaper way, and it picks between **two** result-identical strategies by
snapshot size:

* at or above :data:`LEVEL_SEARCH_THRESHOLD` edges, connectivity of ``Q``
  in ``{tau(e) >= k}`` being *monotone* in ``k`` (lowering the threshold
  only adds edges) makes the answer a **binary search over the distinct
  trussness levels**, each probe one masked frontier BFS
  (:mod:`repro.graph.csr_bfs`) restricted to the qualifying edges with
  early exit as soon as every query node is reached — O(log levels)
  vectorized traversals instead of a per-edge Python sweep;
* below it (notably the per-query *local* kernels the LCTC pipeline
  decomposes, a few hundred edges each), the numpy round overhead does not
  amortize, and the classic sweep wins: edges union into a disjoint-set
  forest in decreasing trussness order, checking query connectivity at
  each level boundary.

The component is then extracted with a masked frontier BFS over the
``{tau >= k}`` restriction on either strategy.
"""

from __future__ import annotations

import numpy as np

from repro.ctc.kernels.context import QueryKernel
from repro.exceptions import NoCommunityFoundError, QueryError
from repro.graph.csr_bfs import masked_bfs

__all__ = ["LEVEL_SEARCH_THRESHOLD", "find_g0", "connected_truss_at_k"]

#: Snapshots with at least this many edges answer FindG0 by binary-searching
#: the trussness levels with masked-BFS probes; smaller ones keep the scalar
#: union-find sweep (same regime split as the peel and decomposition autos).
LEVEL_SEARCH_THRESHOLD = 2048


def _union_find_parent(parent: list[int], node: int) -> int:
    """Find with path halving on a plain parent list."""
    while parent[node] != node:
        parent[node] = parent[parent[node]]
        node = parent[node]
    return node


def _find_level_scalar(
    kernel: QueryKernel, query_ids: list[int], upper_bound: int
) -> int | None:
    """The small-kernel strategy: one descending union-find sweep.

    Returns the highest level <= ``upper_bound`` connecting ``Q``, or
    ``None``.  Work is proportional to the edges with trussness >= the
    answer, without any fixed numpy pass costs.
    """
    tau = kernel.tau
    edge_u = kernel.edge_u
    edge_v = kernel.edge_v
    order = kernel.edge_order_desc
    parent = list(range(kernel.csr.number_of_nodes()))
    anchor = query_ids[0]
    others = query_ids[1:]

    position = 0
    total = len(order)
    for level in kernel.levels:
        # Union every edge at this trussness level (the sweep is cumulative).
        while position < total:
            edge = order[position]
            if tau[edge] < level:
                break
            root_a = _union_find_parent(parent, edge_u[edge])
            root_b = _union_find_parent(parent, edge_v[edge])
            if root_a != root_b:
                parent[root_b] = root_a
            position += 1
        if level > upper_bound:
            # Lemma 1: no level above min vertex trussness can connect Q.
            continue
        anchor_root = _union_find_parent(parent, anchor)
        if all(_union_find_parent(parent, node) == anchor_root for node in others):
            return level
    return None


def _find_level_masked(
    kernel: QueryKernel, query_ids: list[int], upper_bound: int
) -> int | None:
    """The large-kernel strategy: binary search with masked-BFS probes."""
    levels = [level for level in kernel.levels if level <= upper_bound]
    if not levels or not _query_connected_at_k(kernel, query_ids, levels[-1]):
        return None
    # Connectivity is monotone along the (descending) level list: find the
    # first (= highest-k) connected level by binary search.
    low, high = 0, len(levels) - 1
    while low < high:
        middle = (low + high) // 2
        if _query_connected_at_k(kernel, query_ids, levels[middle]):
            high = middle
        else:
            low = middle + 1
    return levels[low]


def _query_connected_at_k(
    kernel: QueryKernel, query_ids: list[int], k: int
) -> bool:
    """Is ``Q`` inside one component of the ``{tau(e) >= k}`` subgraph?

    One masked BFS from the first query node, stopping as soon as every
    other query node has been reached (a query node isolated at this level
    is simply never reached).
    """
    csr = kernel.csr
    others = query_ids[1:]
    result = masked_bfs(
        csr.indptr,
        csr.indices,
        query_ids[:1],
        slot_edge=csr.slot_edge,
        edge_alive=kernel.trussness >= k,
        until_reached=others,
    )
    return bool((result.distances[others] >= 0).all())


def _component_at_k(
    kernel: QueryKernel, root: int, k: int
) -> tuple[list[int], list[int]]:
    """Frontier-BFS the component of ``root`` in the trussness >= k subgraph.

    Returns sorted node ids and sorted edge ids of the component.  An edge
    qualifies iff its trussness is >= ``k`` and one endpoint was visited —
    the BFS traverses exactly the qualifying edges, so a visited endpoint
    implies a visited edge, and one vectorized mask recovers the component's
    edge set without per-edge Python probing.
    """
    csr = kernel.csr
    qualifying = kernel.trussness >= k
    result = masked_bfs(
        csr.indptr,
        csr.indices,
        [root],
        slot_edge=csr.slot_edge,
        edge_alive=qualifying,
    )
    visited = result.distances >= 0
    component_edges = np.nonzero(qualifying & visited[csr.edge_u])[0]
    return np.nonzero(visited)[0].tolist(), component_edges.tolist()


def find_g0(
    kernel: QueryKernel, query_ids: list[int]
) -> tuple[list[int], list[int], int]:
    """Return ``(node_ids, edge_ids, k)`` of the paper's ``G0`` for the query.

    Results are identical to the dict path's
    :func:`~repro.trusses.extraction.find_maximal_connected_truss`
    (node/edge sets and ``k``), modulo the id-vs-label representation.

    Raises
    ------
    NoCommunityFoundError
        If no connected k-truss (k >= 2) contains all query nodes.
    """
    vertex_tau = kernel.vertex_trussness
    upper_bound = min(vertex_tau[node] for node in query_ids)
    if upper_bound < 2:
        # Some query vertex is isolated; a single isolated query node is its
        # own trivial community (k = 2 by convention), mirroring the dict path.
        if len(query_ids) == 1:
            return [query_ids[0]], [], 2
        raise NoCommunityFoundError(
            "a query node is isolated; no connected truss contains the whole query"
        )
    if len(query_ids) == 1:
        # A single node is trivially connected at its own vertex trussness
        # (Lemma 1's upper bound is attained immediately).
        node = query_ids[0]
        component_nodes, component_edges = _component_at_k(kernel, node, upper_bound)
        return component_nodes, component_edges, upper_bound

    if kernel.csr.number_of_edges() >= LEVEL_SEARCH_THRESHOLD:
        answer = _find_level_masked(kernel, query_ids, upper_bound)
    else:
        answer = _find_level_scalar(kernel, query_ids, upper_bound)
    if answer is None:
        raise NoCommunityFoundError(
            f"no connected k-truss (k >= 2) contains all query nodes "
            f"{[kernel.csr.node_label(node) for node in query_ids]!r}"
        )
    component_nodes, component_edges = _component_at_k(kernel, query_ids[0], answer)
    return component_nodes, component_edges, answer


def connected_truss_at_k(
    kernel: QueryKernel, query_ids: list[int], k: int
) -> tuple[list[int], list[int]]:
    """Return the connected k-truss containing the query at the *given* ``k``.

    Array twin of :func:`~repro.trusses.extraction.find_connected_truss_at_k`
    (the Figure 14 "given k" variant): the component of the ``{tau >= k}``
    subgraph containing all query nodes, where query nodes count as present
    even when isolated at that level (a lone query node is its own
    single-node component).

    Raises
    ------
    QueryError
        If ``k < 2``.
    NoCommunityFoundError
        If the query nodes are not connected in the maximal k-truss.
    """
    if k < 2:
        raise QueryError(f"trussness level must be >= 2, got {k}")
    component_nodes, component_edges = _component_at_k(kernel, query_ids[0], k)
    members = set(component_nodes)
    if any(node not in members for node in query_ids[1:]):
        raise NoCommunityFoundError(
            f"query nodes are not connected in the maximal {k}-truss"
        )
    return component_nodes, component_edges
