"""FindG0 on arrays: maximal connected k-truss containing Q, largest k.

The dict path (:func:`repro.trusses.extraction.find_maximal_connected_truss`)
walks the truss index level by level, BFS-style.  Its *result* is canonical
— ``k`` is the largest trussness threshold at which the query nodes fall in
one connected component of the ``{tau(e) >= k}`` subgraph, and ``G0`` is
exactly that component — so the kernel is free to compute the same object a
cheaper way: edges are unioned into a disjoint-set forest in **decreasing
trussness order** (one bucketed sweep over the pre-sorted edge-id array),
checking query connectivity at each level boundary.  Work is proportional
to the edges with trussness >= the answer, the same region the index walk
touches, without the per-level frontier bookkeeping.

The component is then extracted with one BFS over the CSR rows restricted
to qualifying edges.
"""

from __future__ import annotations

from collections import deque

from repro.ctc.kernels.context import QueryKernel
from repro.exceptions import NoCommunityFoundError, QueryError

__all__ = ["find_g0", "connected_truss_at_k"]


def _union_find_parent(parent: list[int], node: int) -> int:
    """Find with path halving on a plain parent list."""
    while parent[node] != node:
        parent[node] = parent[parent[node]]
        node = parent[node]
    return node


def _component_at_k(
    kernel: QueryKernel, root: int, k: int
) -> tuple[list[int], list[int]]:
    """BFS the component of ``root`` in the trussness >= k subgraph.

    Returns sorted node ids and sorted edge ids of the component.
    """
    bounds, neighbors, edges = kernel.flat
    tau = kernel.tau
    seen = {root}
    queue: deque[int] = deque([root])
    component_edges: set[int] = set()
    while queue:
        node = queue.popleft()
        for slot in range(bounds[node], bounds[node + 1]):
            edge = edges[slot]
            if tau[edge] < k:
                continue
            component_edges.add(edge)
            other = neighbors[slot]
            if other not in seen:
                seen.add(other)
                queue.append(other)
    return sorted(seen), sorted(component_edges)


def find_g0(
    kernel: QueryKernel, query_ids: list[int]
) -> tuple[list[int], list[int], int]:
    """Return ``(node_ids, edge_ids, k)`` of the paper's ``G0`` for the query.

    Results are identical to the dict path's
    :func:`~repro.trusses.extraction.find_maximal_connected_truss`
    (node/edge sets and ``k``), modulo the id-vs-label representation.

    Raises
    ------
    NoCommunityFoundError
        If no connected k-truss (k >= 2) contains all query nodes.
    """
    vertex_tau = kernel.vertex_trussness
    upper_bound = min(vertex_tau[node] for node in query_ids)
    if upper_bound < 2:
        # Some query vertex is isolated; a single isolated query node is its
        # own trivial community (k = 2 by convention), mirroring the dict path.
        if len(query_ids) == 1:
            return [query_ids[0]], [], 2
        raise NoCommunityFoundError(
            "a query node is isolated; no connected truss contains the whole query"
        )
    if len(query_ids) == 1:
        # A single node is trivially connected at its own vertex trussness
        # (Lemma 1's upper bound is attained immediately).
        node = query_ids[0]
        component_nodes, component_edges = _component_at_k(kernel, node, upper_bound)
        return component_nodes, component_edges, upper_bound

    tau = kernel.tau
    edge_u = kernel.edge_u
    edge_v = kernel.edge_v
    order = kernel.edge_order_desc
    parent = list(range(kernel.csr.number_of_nodes()))
    anchor = query_ids[0]
    others = query_ids[1:]

    position = 0
    total = len(order)
    for level in kernel.levels:
        # Union every edge at this trussness level (the sweep is cumulative).
        while position < total:
            edge = order[position]
            if tau[edge] < level:
                break
            root_a = _union_find_parent(parent, edge_u[edge])
            root_b = _union_find_parent(parent, edge_v[edge])
            if root_a != root_b:
                parent[root_b] = root_a
            position += 1
        if level > upper_bound:
            # Lemma 1: no level above min vertex trussness can connect Q.
            continue
        anchor_root = _union_find_parent(parent, anchor)
        if all(_union_find_parent(parent, node) == anchor_root for node in others):
            component_nodes, component_edges = _component_at_k(kernel, anchor, level)
            return component_nodes, component_edges, level

    raise NoCommunityFoundError(
        f"no connected k-truss (k >= 2) contains all query nodes "
        f"{[kernel.csr.node_label(node) for node in query_ids]!r}"
    )


def connected_truss_at_k(
    kernel: QueryKernel, query_ids: list[int], k: int
) -> tuple[list[int], list[int]]:
    """Return the connected k-truss containing the query at the *given* ``k``.

    Array twin of :func:`~repro.trusses.extraction.find_connected_truss_at_k`
    (the Figure 14 "given k" variant): the component of the ``{tau >= k}``
    subgraph containing all query nodes, where query nodes count as present
    even when isolated at that level (a lone query node is its own
    single-node component).

    Raises
    ------
    QueryError
        If ``k < 2``.
    NoCommunityFoundError
        If the query nodes are not connected in the maximal k-truss.
    """
    if k < 2:
        raise QueryError(f"trussness level must be >= 2, got {k}")
    component_nodes, component_edges = _component_at_k(kernel, query_ids[0], k)
    members = set(component_nodes)
    if any(node not in members for node in query_ids[1:]):
        raise NoCommunityFoundError(
            f"query nodes are not connected in the maximal {k}-truss"
        )
    return component_nodes, component_edges
