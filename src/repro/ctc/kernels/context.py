""":class:`QueryKernel`: the shared execution context of the CSR-native kernels.

Every kernel in this package operates on one frozen ``(CSRGraph, trussness
ndarray)`` pair — the exact artifacts :class:`~repro.engine.EngineSnapshot`
already carries.  ``QueryKernel`` bundles that pair with the derived
structures the kernels need, all built **lazily** and cached, so a snapshot
that only ever serves, say, FindG0 queries never pays for the structures the
Steiner kernel wants:

* ``flat adjacency`` — the CSR rows re-exposed as plain Python lists
  (``bounds`` / ``neighbors`` / ``edges``), because scalar indexing into
  Python lists is several times faster than scalar indexing into ``numpy``
  arrays on the BFS/peeling hot loops (the same trade
  :mod:`repro.trusses.csr_decomposition` makes);
* ``sorted adjacency`` — each row re-ordered by *decreasing edge trussness*
  (ties by ``repr`` of the neighbour label), the array twin of
  :class:`~repro.trusses.index.TrussIndex`'s per-node lists.  The parallel
  ``sorted_neg_trussness`` list holds negated trussness values, so the
  qualifying prefix for "incident edges with trussness >= k" is one
  ``bisect_right`` on a flat list;
* ``repr ranks`` — the position of every node in the ``repr``-sorted label
  order.  The dict-path algorithms break ties with ``repr(node)`` string
  comparisons; the kernels compare the precomputed integer ranks instead and
  make identical choices.

The tie-break mirroring is what buys the package its contract: for the same
query, a kernel and its dict-path twin return **identical** communities
(``tests/ctc/test_kernel_equivalence.py``), so the engine can route through
whichever is faster without observable differences.
"""

from __future__ import annotations

import threading
from collections.abc import Hashable, Sequence

import numpy as np

from repro.exceptions import QueryError
from repro.graph.csr import CSRGraph
from repro.graph.csr_triangles import TriangleIncidence

__all__ = ["QueryKernel", "validate_query_ids"]


def validate_query_ids(
    csr: CSRGraph, query: Sequence[Hashable]
) -> tuple[list[Hashable], list[int]]:
    """Validate ``query`` against the snapshot and map it to dense node ids.

    Mirrors :func:`repro.trusses.extraction.validate_query`: deduplicates
    while preserving order, then checks non-emptiness and membership.

    Raises
    ------
    QueryError
        If the query is empty or contains nodes missing from the snapshot.
    """
    normalized = list(dict.fromkeys(query))
    if not normalized:
        raise QueryError("the query node set must not be empty")
    missing = [node for node in normalized if not csr.has_node(node)]
    if missing:
        raise QueryError(f"query nodes not present in the graph: {missing!r}")
    return normalized, [csr.node_id(node) for node in normalized]


class QueryKernel:
    """Lazily derived, cached query-execution structures over one snapshot.

    Parameters
    ----------
    csr:
        The frozen snapshot to execute against.
    trussness:
        Per-edge-id trussness (``int64``, length ``csr.number_of_edges()``),
        as produced by
        :func:`~repro.trusses.csr_decomposition.csr_truss_decomposition`.
    incidence:
        Optional :class:`~repro.graph.csr_triangles.TriangleIncidence` of
        the snapshot (shared by the engine when its full rebuild enumerated
        one).  The LCTC kernel re-decomposes its local expansions on
        restrictions of it instead of re-enumerating triangles; ``None``
        falls back to per-subgraph decomposition with identical results.
    on_enumerate:
        Optional callback receiving the freshly built
        :class:`TriangleIncidence` whenever :meth:`ensure_incidence` had to
        enumerate from scratch.  The engine passes
        :meth:`~repro.engine.EngineSnapshot._adopt_incidence` here so
        lazy kernel-side enumerations land back on the snapshot (making the
        artifact patchable forward) and are counted in
        :attr:`~repro.engine.EngineStats.incidence_enumerations`.

    A ``QueryKernel`` is immutable-by-contract like the snapshot it wraps;
    :class:`~repro.engine.EngineSnapshot` memoizes one per snapshot so the
    derived structures amortize across every query on that graph version.

    Thread-safety: the serving layer shares one kernel between reader
    threads.  The memos that are derived through multiple dependent fields
    or fire observer callbacks (:meth:`ensure_incidence`,
    :attr:`sorted_arrays` / :meth:`sorted_row_stops`) build under an
    internal lock; the remaining lazies are single-assignment value caches
    of deterministic conversions, where the worst concurrent outcome is two
    threads computing the same value once each.
    """

    __slots__ = (
        "csr",
        "trussness",
        "incidence",
        "_tau_list",
        "_flat",
        "_sorted",
        "_sorted_np",
        "_sorted_keys",
        "_repr_rank",
        "_repr_rank_np",
        "_vertex_tau",
        "_levels",
        "_label_array",
        "_edge_order_desc",
        "_edge_u_list",
        "_edge_v_list",
        "_on_enumerate",
        "_lock",
    )

    def __init__(
        self,
        csr: CSRGraph,
        trussness: np.ndarray,
        incidence: TriangleIncidence | None = None,
        *,
        on_enumerate=None,
    ) -> None:
        self.csr = csr
        self.trussness = np.asarray(trussness, dtype=np.int64)
        self.incidence = incidence
        self._on_enumerate = on_enumerate
        if self.trussness.shape != (csr.number_of_edges(),):
            raise ValueError(
                f"trussness must have one entry per edge "
                f"({csr.number_of_edges()}), got shape {self.trussness.shape}"
            )
        self._tau_list: list[int] | None = None
        self._flat: tuple[list[int], list[int], list[int]] | None = None
        self._sorted: tuple[list[int], list[int], list[int], list[int]] | None = None
        self._sorted_np: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._sorted_keys: np.ndarray | None = None
        self._repr_rank: list[int] | None = None
        self._repr_rank_np: np.ndarray | None = None
        self._vertex_tau: list[int] | None = None
        self._levels: list[int] | None = None
        self._label_array: np.ndarray | None = None
        self._edge_order_desc: list[int] | None = None
        self._edge_u_list: list[int] | None = None
        self._edge_v_list: list[int] | None = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # lazy derived structures
    # ------------------------------------------------------------------
    @property
    def tau(self) -> list[int]:
        """Per-edge trussness as a plain list (fast scalar access)."""
        if self._tau_list is None:
            self._tau_list = self.trussness.tolist()
        return self._tau_list

    @property
    def edge_u(self) -> list[int]:
        """Lower endpoint id of every edge, as a plain list."""
        if self._edge_u_list is None:
            self._edge_u_list = self.csr.edge_u.tolist()
        return self._edge_u_list

    @property
    def edge_v(self) -> list[int]:
        """Upper endpoint id of every edge, as a plain list."""
        if self._edge_v_list is None:
            self._edge_v_list = self.csr.edge_v.tolist()
        return self._edge_v_list

    @property
    def flat(self) -> tuple[list[int], list[int], list[int]]:
        """``(bounds, neighbors, edges)``: the raw CSR rows as Python lists.

        Node ``i``'s neighbours occupy ``neighbors[bounds[i]:bounds[i+1]]``
        (sorted by neighbour id), with the parallel ``edges`` list holding
        the edge id of each slot.
        """
        if self._flat is None:
            self._flat = (
                self.csr.indptr.tolist(),
                self.csr.indices.tolist(),
                self.csr.slot_edge.tolist(),
            )
        return self._flat

    @property
    def repr_rank(self) -> list[int]:
        """Rank of every node id in the ``repr``-sorted label order.

        ``repr_rank[u] < repr_rank[v]`` iff ``repr(label(u)) <
        repr(label(v))`` (ties between equal ``repr`` strings keep id
        order), which lets the kernels reproduce the dict paths'
        ``repr``-based tie-breaks with integer comparisons.
        """
        if self._repr_rank is None:
            labels = self.csr.labels()
            order = sorted(range(len(labels)), key=lambda node: repr(labels[node]))
            rank = [0] * len(labels)
            for position, node in enumerate(order):
                rank[node] = position
            self._repr_rank = rank
        return self._repr_rank

    @property
    def repr_rank_array(self) -> np.ndarray:
        """:attr:`repr_rank` as an ``int64`` array (for vectorized tie-breaks)."""
        if self._repr_rank_np is None:
            self._repr_rank_np = np.asarray(self.repr_rank, dtype=np.int64)
        return self._repr_rank_np

    @property
    def sorted_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(bounds, neighbors, edges, neg_trussness)``: trussness-sorted rows.

        The ``numpy`` form of :attr:`sorted_adjacency` (same ordering, same
        slots), which is what the masked frontier BFS of
        :mod:`repro.graph.csr_bfs` traverses; combined with
        :meth:`sorted_row_stops` the qualifying prefix for "trussness >= k"
        needs no per-row bisect.
        """
        if self._sorted_np is None:
            with self._lock:
                if self._sorted_np is None:
                    csr = self.csr
                    num_nodes = csr.number_of_nodes()
                    row_of_slot = np.repeat(
                        np.arange(num_nodes, dtype=np.int64), np.diff(csr.indptr)
                    )
                    neg_tau = -self.trussness[csr.slot_edge]
                    rank = np.asarray(self.repr_rank, dtype=np.int64)[csr.indices]
                    # One composite-key argsort instead of a three-key lexsort
                    # (the keys are small non-negative ints, so the packed
                    # value is exact and ~10x faster to sort); equivalent to
                    # np.lexsort((rank, neg_tau, row_of_slot)).
                    tau_span = self.max_trussness + 1
                    if num_nodes * tau_span < 2**62 // max(num_nodes, 1):
                        composite = (
                            row_of_slot * tau_span + (neg_tau + self.max_trussness)
                        ) * max(num_nodes, 1) + rank
                        order = np.argsort(composite, kind="stable")
                    else:  # packed key would overflow int64 (beyond ~1e9 slots)
                        order = np.lexsort((rank, neg_tau, row_of_slot))
                    self._sorted_np = (
                        csr.indptr,
                        csr.indices[order],
                        csr.slot_edge[order],
                        neg_tau[order],
                    )
        return self._sorted_np

    @property
    def sorted_adjacency(self) -> tuple[list[int], list[int], list[int], list[int]]:
        """``(bounds, neighbors, edges, neg_trussness)``: trussness-sorted rows.

        Each row is ordered by decreasing edge trussness, ties by the
        neighbour's ``repr`` rank — exactly the order
        :meth:`TrussIndex.incident_edges_at_least` yields.  The qualifying
        prefix for trussness >= k ends at
        ``bisect_right(neg_trussness, -k, start, stop)``.  Plain-list form
        of :attr:`sorted_arrays` for the scalar hot loops (the LCTC
        expansion); both derive from one argsort.
        """
        if self._sorted is None:
            bounds, neighbors, edges, neg_tau = self.sorted_arrays
            self._sorted = (
                bounds.tolist(),
                neighbors.tolist(),
                edges.tolist(),
                neg_tau.tolist(),
            )
        return self._sorted

    def sorted_row_stops(self, threshold: int):
        """Row-stop resolver for the "trussness >= ``threshold``" prefixes.

        Returns a callable mapping an id array (a BFS frontier) to the
        exclusive slot bound where each listed node's qualifying prefix
        ends inside :attr:`sorted_arrays` — the batch twin of the per-row
        ``bisect_right(neg_trussness, -threshold, start, stop)`` the scalar
        consumers run, resolved with one ``searchsorted`` per call against
        a composite ``(row, neg trussness)`` key (non-decreasing by
        construction, because rows are laid out in id order and each row is
        sorted by increasing negated trussness).  Resolving per frontier
        instead of materializing all-row bound arrays keeps the
        threshold-sweep BFS cheap even on a freshly derived kernel — only
        the visited rows ever pay.
        """
        if threshold > self.max_trussness:
            # No edge qualifies anywhere; every prefix is empty.  (Also keeps
            # the probes below inside their own rows' key ranges.)
            indptr = self.csr.indptr
            return lambda frontier: indptr[frontier]
        if self._sorted_keys is None:
            with self._lock:
                if self._sorted_keys is None:
                    csr = self.csr
                    num_nodes = csr.number_of_nodes()
                    row_of_slot = np.repeat(
                        np.arange(num_nodes, dtype=np.int64), np.diff(csr.indptr)
                    )
                    neg_tau = self.sorted_arrays[3]
                    self._sorted_keys = (
                        row_of_slot * (self.max_trussness + 1)
                        + (neg_tau + self.max_trussness)
                    )
        keys = self._sorted_keys
        span = self.max_trussness + 1
        offset = self.max_trussness - threshold

        def stops(frontier: np.ndarray) -> np.ndarray:
            return np.searchsorted(keys, frontier * span + offset, side="right")

        return stops

    def ensure_incidence(self) -> TriangleIncidence:
        """Return the snapshot's triangle incidence, enumerating it if absent.

        Snapshots built by a vector-strategy full rebuild share the
        incidence the rebuild enumerated; a bare kernel (or a bucket-path
        snapshot) enumerates it here once, on first demand, and caches it —
        the array peel engine needs it to restrict supports to working
        subgraphs, and one enumeration amortizes over every query on the
        snapshot.
        """
        if self.incidence is None:
            with self._lock:
                if self.incidence is None:
                    from repro.graph.csr_triangles import csr_triangle_incidence

                    self.incidence = csr_triangle_incidence(self.csr)
                    if self._on_enumerate is not None:
                        self._on_enumerate(self.incidence)
        return self.incidence

    @property
    def vertex_trussness(self) -> list[int]:
        """Trussness of every node: max over incident edges, 1 if isolated."""
        if self._vertex_tau is None:
            csr = self.csr
            num_nodes = csr.number_of_nodes()
            result = np.ones(num_nodes, dtype=np.int64)
            degrees = np.diff(csr.indptr)
            nonempty = degrees > 0
            if csr.slot_edge.size:
                # Segmented max over each non-empty row; a reduceat segment
                # between consecutive non-empty starts spans exactly that
                # row's slots (intervening empty rows contribute none).
                slot_tau = self.trussness[csr.slot_edge]
                starts = csr.indptr[:-1][nonempty]
                result[nonempty] = np.maximum.reduceat(slot_tau, starts)
            self._vertex_tau = result.tolist()
        return self._vertex_tau

    @property
    def max_trussness(self) -> int:
        """``tau_bar(empty set)``: the maximum edge trussness (2 if no edges)."""
        if self.trussness.size == 0:
            return 2
        return int(self.trussness.max())

    @property
    def levels(self) -> list[int]:
        """Distinct trussness levels present, in decreasing order."""
        if self._levels is None:
            self._levels = np.unique(self.trussness)[::-1].tolist()
        return self._levels

    @property
    def edge_order_desc(self) -> list[int]:
        """Edge ids sorted by decreasing trussness (stable), for FindG0's
        scalar union-find sweep (the small-kernel strategy)."""
        if self._edge_order_desc is None:
            self._edge_order_desc = np.argsort(
                -self.trussness, kind="stable"
            ).tolist()
        return self._edge_order_desc

    @property
    def label_array(self) -> np.ndarray:
        """Node labels as an ``object`` array indexed by node id.

        One vectorized gather maps whole id arrays back to label space —
        how the search entry points materialize communities without a
        Python ``node_label`` call per member.
        """
        if self._label_array is None:
            labels = self.csr.labels()
            array = np.empty(len(labels), dtype=object)
            for position, label in enumerate(labels):
                array[position] = label
            self._label_array = array
        return self._label_array

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.csr.number_of_nodes()}, "
            f"edges={self.csr.number_of_edges()})"
        )
