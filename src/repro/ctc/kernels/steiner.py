"""Truss-distance Steiner trees on the sorted-adjacency arrays.

Array twin of :mod:`repro.ctc.steiner` (Definition 7 + the
Kou–Markowsky–Berman 2-approximation).  The expensive part — the
threshold-sweep BFS that computes exact truss distances — runs on the
kernel's trussness-sorted rows with int ids; the KMB scaffolding (metric
closure, Kruskal passes, leaf pruning) stays structurally identical to the
dict path, including its ``repr``-keyed sort orders, because LCTC's
downstream expansion is order-sensitive: same witness paths in, same
community out.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque

from repro.ctc.kernels.context import QueryKernel
from repro.exceptions import QueryError
from repro.graph.components import UnionFind
from repro.graph.csr_bfs import masked_bfs, path_from_parents
from repro.graph.keys import edge_key

__all__ = [
    "MASKED_SWEEP_THRESHOLD",
    "truss_distance_between",
    "build_truss_steiner_tree",
    "minimum_trussness_of_tree",
]

_INF = float("inf")

#: Snapshots with at least this many edges run the threshold-restricted
#: witness-path BFS as an ordered masked frontier sweep; smaller ones keep
#: the scalar queue.  The sweep's early exits (single target, tightening
#: cutoff) keep visited sets tiny at bundled-dataset scale, where per-round
#: numpy pass costs exceed the whole Python walk — the same regime split as
#: the peel/decomposition/FindG0 autos, with the crossover pushed out to
#: real-SNAP-sized graphs.
MASKED_SWEEP_THRESHOLD = 32768


def _scalar_bfs_paths(
    kernel: QueryKernel,
    source: int,
    targets: set[int],
    threshold: int,
    cutoff: float,
) -> dict[int, list[int]]:
    """The small-snapshot strategy: a scalar queue BFS over the sorted lists."""
    bounds, neighbors, _edges, neg_tau = kernel.sorted_adjacency
    parents: dict[int, int] = {source: -1}
    depth: dict[int, int] = {source: 0}
    remaining = set(targets)
    remaining.discard(source)
    found: dict[int, list[int]] = {}
    if source in targets:
        found[source] = [source]
    queue: deque[int] = deque([source])
    while queue and remaining:
        node = queue.popleft()
        next_depth = depth[node] + 1
        if next_depth > cutoff:
            continue
        start, end = bounds[node], bounds[node + 1]
        stop = bisect_right(neg_tau, -threshold, start, end)
        for slot in range(start, stop):
            neighbor = neighbors[slot]
            if neighbor in parents:
                continue
            parents[neighbor] = node
            depth[neighbor] = next_depth
            if neighbor in remaining:
                remaining.discard(neighbor)
                path = [neighbor]
                current = node
                while current != -1:
                    path.append(current)
                    current = parents[current]
                path.reverse()
                found[neighbor] = path
            queue.append(neighbor)
    return found


def _restricted_bfs_paths(
    kernel: QueryKernel,
    source: int,
    targets: set[int],
    threshold: int,
    cutoff: float,
) -> dict[int, list[int]]:
    """BFS from ``source`` over edges with trussness >= ``threshold``.

    Returns an id path for every target reached within ``cutoff`` hops.
    Neighbour order is the sorted-adjacency order (decreasing trussness,
    ``repr``-rank ties), so witness paths match the dict path's exactly.
    At or above :data:`MASKED_SWEEP_THRESHOLD` edges this runs as an
    *ordered* masked frontier BFS (:mod:`repro.graph.csr_bfs`) over the
    trussness-sorted rows, restricted to each row's qualifying prefix
    (``QueryKernel.sorted_row_stops``): the first-discovery frontier order
    reproduces the scalar queue BFS's parent tie-breaks, so the parents
    array recovers witness paths bit-identical to the scalar (and hence
    dict) path's.
    """
    if kernel.csr.number_of_edges() < MASKED_SWEEP_THRESHOLD:
        return _scalar_bfs_paths(kernel, source, targets, threshold, cutoff)
    bounds, neighbors, _edges, _neg_tau = kernel.sorted_arrays
    found: dict[int, list[int]] = {}
    if source in targets:
        found[source] = [source]
    remaining = [node for node in targets if node != source]
    if not remaining or cutoff < 1:
        return found
    result = masked_bfs(
        bounds,
        neighbors,
        [source],
        row_stop=kernel.sorted_row_stops(threshold),
        track_parents=True,
        ordered=True,
        max_depth=None if math.isinf(cutoff) else int(cutoff),
        until_reached=remaining,
    )
    for target in remaining:
        if result.distances[target] >= 0:
            found[target] = path_from_parents(result.parents, target)
    return found


def truss_distance_between(
    kernel: QueryKernel, source: int, target: int, gamma: float
) -> tuple[float, list[int] | None]:
    """Return ``(truss distance, witness id path)`` between two node ids.

    The threshold sweep over decreasing trussness levels is exact for the
    min-bottleneck metric (see :mod:`repro.ctc.steiner`); returns
    ``(inf, None)`` when the nodes are disconnected.
    """
    if source == target:
        return 0.0, [source]
    tau_bar = kernel.max_trussness
    best_value = _INF
    best_path: list[int] | None = None
    for threshold in kernel.levels:
        penalty = gamma * (tau_bar - threshold)
        if best_path is not None and penalty + 1 >= best_value:
            break
        cutoff = best_value - penalty if best_value < _INF else _INF
        paths = _restricted_bfs_paths(kernel, source, {target}, threshold, cutoff)
        path = paths.get(target)
        if path is None:
            continue
        value = (len(path) - 1) + penalty
        if value < best_value:
            best_value = value
            best_path = path
    return best_value, best_path


def _edge_repr(kernel: QueryKernel, u: int, v: int) -> str:
    """``repr`` of the canonical label-space edge key (the dict sort key)."""
    return repr(edge_key(kernel.csr.node_label(u), kernel.csr.node_label(v)))


def build_truss_steiner_tree(
    kernel: QueryKernel, terminal_ids: list[int], gamma: float
) -> tuple[set[int], set[int]]:
    """Return ``(node ids, edge ids)`` of a Steiner tree over the terminals.

    Follows Kou–Markowsky–Berman with the truss-distance metric closure,
    reproducing :func:`repro.ctc.steiner.build_truss_steiner_tree` choice
    for choice.  A single terminal yields a single-node, edge-less tree.

    Raises
    ------
    QueryError
        If ``terminal_ids`` is empty or some pair is disconnected.
    """
    terminals = list(dict.fromkeys(terminal_ids))
    if not terminals:
        raise QueryError("cannot build a Steiner tree over an empty terminal set")
    if len(terminals) == 1:
        return {terminals[0]}, set()

    # Metric closure: truss distance + witness path for every terminal pair.
    closure: dict[tuple[int, int], tuple[float, list[int], str]] = {}
    for position, source in enumerate(terminals):
        for target in terminals[position + 1:]:
            value, path = truss_distance_between(kernel, source, target, gamma)
            if path is not None:
                closure[(source, target)] = (value, path, _edge_repr(kernel, source, target))

    # Kruskal MST over the closure (sorted by distance, then key repr).
    union_find = UnionFind(terminals)
    chosen: list[tuple[int, int]] = []
    for pair, (_value, _path, _key) in sorted(
        closure.items(), key=lambda item: (item[1][0], item[1][2])
    ):
        if union_find.union(*pair):
            chosen.append(pair)
    roots = {union_find.find(node) for node in terminals}
    if len(roots) > 1:
        raise QueryError("terminals are not mutually connected; no Steiner tree exists")

    # Expand closure edges back into their witness paths.
    csr = kernel.csr
    expanded_nodes: set[int] = set()
    expanded_edges: set[int] = set()
    for pair in chosen:
        _value, path, _key = closure[pair]
        expanded_nodes.update(path)
        for first, second in zip(path, path[1:]):
            expanded_edges.add(csr.edge_id(first, second))

    # Spanning tree of the expansion (weight = 1 + gamma * (tau_bar - tau)),
    # then prune non-terminal leaves (final KMB step).
    tau = kernel.tau
    tau_bar = kernel.max_trussness
    edge_u, edge_v = kernel.edge_u, kernel.edge_v
    spanning_union = UnionFind(expanded_nodes)
    tree_edges: set[int] = set()
    for edge in sorted(
        expanded_edges,
        key=lambda e: (1.0 + gamma * (tau_bar - tau[e]), _edge_repr(kernel, edge_u[e], edge_v[e])),
    ):
        if spanning_union.union(edge_u[edge], edge_v[edge]):
            tree_edges.add(edge)

    tree_adjacency: dict[int, set[int]] = {node: set() for node in expanded_nodes}
    for edge in tree_edges:
        tree_adjacency[edge_u[edge]].add(edge_v[edge])
        tree_adjacency[edge_v[edge]].add(edge_u[edge])
    terminal_set = set(terminals)
    leaves = deque(
        node for node, row in tree_adjacency.items()
        if len(row) <= 1 and node not in terminal_set
    )
    while leaves:
        node = leaves.popleft()
        if node not in tree_adjacency:
            continue
        for neighbor in tree_adjacency.pop(node):
            row = tree_adjacency[neighbor]
            row.discard(node)
            tree_edges.discard(kernel.csr.edge_id(node, neighbor))
            if len(row) <= 1 and neighbor not in terminal_set:
                leaves.append(neighbor)
    return set(tree_adjacency), tree_edges


def minimum_trussness_of_tree(
    kernel: QueryKernel, tree_nodes: set[int], tree_edges: set[int]
) -> int:
    """``k_t = min_{e in T} tau(e)`` (Algorithm 5, line 2).

    An edge-less tree (single terminal) falls back to that terminal's
    vertex trussness; an empty tree returns 2 — both as in the dict path.
    """
    if not tree_edges:
        if tree_nodes:
            return kernel.vertex_trussness[next(iter(tree_nodes))]
        return 2
    tau = kernel.tau
    return min(tau[edge] for edge in tree_edges)
