"""CSR-native query kernels: CTC search directly on cached array snapshots.

PRs 1-2 froze the engine's read replica into ``(CSRGraph, trussness
ndarray)`` pairs but still answered every query in dict-of-sets land.  This
package is the missing execution layer: FindG0, the truss-distance Steiner
seed, LCTC expansion, query distances and BulkDelete peeling all run on the
arrays (dense int ids, flat per-edge attributes), which is where the
paper's Section 5 locality argument — and the HTAP-replica design the
engine borrows from Polynesia (arXiv:2103.00798) — says analytical reads
belong.

Layout
------
* :mod:`~repro.ctc.kernels.context` — :class:`QueryKernel`, the lazily
  derived per-snapshot structures (sorted adjacency, ``repr`` ranks, ...);
* :mod:`~repro.ctc.kernels.find_g0` — Algorithm 2: masked-BFS binary search
  over trussness levels (large snapshots) or the scalar union-find sweep
  (small ones);
* :mod:`~repro.ctc.kernels.peeling` — Algorithms 1/3/4 as the masked array
  peel engine (alive masks + incidence cascade + frontier-BFS distances),
  with the adjacency-map engine kept for tiny working subgraphs;
* :mod:`~repro.ctc.kernels.steiner` / :mod:`~repro.ctc.kernels.local` —
  Algorithm 5's Steiner seed and budgeted expansion;
* :mod:`~repro.ctc.kernels.search` — the per-method entry points returning
  :class:`~repro.ctc.result.CommunityResult`.

The dispatch seam
-----------------
:func:`kernel_of` is how the algorithm classes pick their execution path
(mirroring how :func:`repro.trusses.decomposition.truss_decomposition`
dispatches on graph type): anything exposing a ``kernel`` attribute holding
a :class:`QueryKernel` — i.e. an :class:`~repro.engine.EngineSnapshot` —
runs on the kernels; a plain :class:`~repro.trusses.index.TrussIndex` keeps
the dict path.  The duck-typed probe (rather than an ``isinstance`` on the
snapshot) keeps this package importable without the engine.

Both paths return identical communities for the same query; the property
suite ``tests/ctc/test_kernel_equivalence.py`` enforces it.
"""

from repro.ctc.kernels.context import QueryKernel, validate_query_ids
from repro.ctc.kernels.find_g0 import connected_truss_at_k, find_g0
from repro.ctc.kernels.search import (
    basic_search,
    bulk_delete_search,
    lctc_search,
    truss_search,
)

__all__ = [
    "QueryKernel",
    "kernel_of",
    "split_dispatch",
    "validate_query_ids",
    "find_g0",
    "connected_truss_at_k",
    "basic_search",
    "bulk_delete_search",
    "lctc_search",
    "truss_search",
]


def kernel_of(target: object) -> QueryKernel | None:
    """Return ``target``'s :class:`QueryKernel`, or ``None`` for dict-path inputs.

    This is the package's dispatch seam: :class:`~repro.engine.EngineSnapshot`
    exposes a lazily built ``kernel`` attribute, a
    :class:`~repro.trusses.index.TrussIndex` (or any ad-hoc graph) does not.
    A bare :class:`QueryKernel` passes through unchanged, so power users can
    drive the kernels without an engine.
    """
    if isinstance(target, QueryKernel):
        return target
    kernel = getattr(target, "kernel", None)
    return kernel if isinstance(kernel, QueryKernel) else None


def split_dispatch(target):
    """Resolve an algorithm constructor's input into ``(kernel, index)``.

    Exactly one of the two is non-``None``: the :class:`QueryKernel` when
    ``target`` is kernel-capable (see :func:`kernel_of`), otherwise
    ``target`` itself as the dict-path index.  The algorithm classes all
    call this so the seam has a single definition.
    """
    kernel = kernel_of(target)
    return kernel, (None if kernel is not None else target)
