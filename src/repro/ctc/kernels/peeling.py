"""The shared peel engine of Basic/BulkDelete, array-native on the snapshot.

This is the twin of :meth:`repro.ctc.basic.BasicCTC._peel` +
:class:`~repro.trusses.maintenance.KTrussMaintainer`, and it ships **two**
interchangeable engines behind one ``peel()`` entry point:

* the **array engine** (``engine="array"``, the default at or above
  :data:`DEFAULT_ARRAY_THRESHOLD` working edges): the working subgraph is
  *never materialized* — it lives as node-alive/edge-alive masks over the
  :class:`~repro.ctc.kernels.context.QueryKernel`'s CSR plus a
  :func:`~repro.graph.csr_triangles.subset_incidence` restriction of the
  snapshot's triangle enumeration.  Per iteration, query distances come
  from the masked frontier BFS of :mod:`repro.graph.csr_bfs` (one
  multi-round scatter/gather pass per query node, fused with the
  ``connect_G(Q)`` check), victims fall out of an argmax / threshold mask
  over ``(distance, non-query, repr rank)`` arrays, and Algorithm 3's
  cascade is the same
  :class:`~repro.trusses.csr_decomposition.IncidencePeelState` scatter/scan
  round machinery the level-synchronous full decomposition peels with —
  dead-triangle flag dedup, one ``np.bincount`` support drop per round —
  pinned at the community's fixed threshold ``k - 2``;
* the **dict engine** (``engine="dict"``): the original int-keyed
  adjacency-map implementation, retained as the small-subgraph fallback —
  below a couple hundred edges the fixed cost of the numpy passes exceeds
  the whole Python peel (the same crossover
  :mod:`repro.trusses.csr_decomposition` measured for full rebuilds).

Both engines mirror the dict path's tie-breaks (``repr`` ranks instead of
``repr`` strings), so for the same starting truss all three peel the same
vertices in the same order and return identical best graphs — enforced by
``tests/ctc/test_kernel_equivalence.py``.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.ctc.kernels.context import QueryKernel
from repro.graph.csr_bfs import fold_query_distance, masked_bfs
from repro.graph.csr_triangles import TriangleIncidence, subset_incidence
from repro.trusses.csr_decomposition import IncidencePeelState

__all__ = [
    "DEFAULT_ARRAY_THRESHOLD",
    "PeelOutcome",
    "peel",
    "basic_selector",
    "bulk_delete_selector",
    "subgraph_adjacency",
    "query_distances",
]

_INF = float("inf")

#: ``engine="auto"`` peels on the array engine at or above this many working
#: edges and on the dict engine below it (the numpy rounds have a fixed cost
#: the tiny-subgraph Python peel undercuts — the same regime split as
#: :data:`repro.trusses.csr_decomposition.DEFAULT_VECTOR_THRESHOLD`).
DEFAULT_ARRAY_THRESHOLD = 256


class PeelOutcome:
    """What one peel run produced (the kernel twin of ``_peel``'s tuple)."""

    __slots__ = ("node_ids", "edge_ids", "query_distance", "iterations", "timed_out")

    def __init__(
        self,
        node_ids: set[int],
        edge_ids: set[int],
        query_distance: float,
        iterations: int,
        timed_out: bool,
    ) -> None:
        self.node_ids = node_ids
        self.edge_ids = edge_ids
        self.query_distance = query_distance
        self.iterations = iterations
        self.timed_out = timed_out


# ----------------------------------------------------------------------
# victim selection (both engines, shared per-run state)
# ----------------------------------------------------------------------
def _top_k_by_distance_rank(
    nodes: np.ndarray, distances: np.ndarray, rank_of: np.ndarray, limit: int
) -> np.ndarray:
    """Exact top-``limit`` of ``nodes`` under the ``(distance, repr rank)`` order.

    ``np.argpartition`` twice instead of a full sort: once on distance to
    find the boundary value, once on rank among the boundary ties.  Ranks
    are unique per node, so the composite key is a total order and the
    selected *set* matches ``sorted(..., reverse=True)[:limit]`` exactly.
    """
    boundary_position = np.argpartition(distances, nodes.size - limit)[nodes.size - limit]
    boundary = distances[boundary_position]
    chosen = nodes[distances > boundary]
    need = limit - int(chosen.size)
    if need > 0:
        ties = nodes[distances == boundary]
        if need < ties.size:
            tie_ranks = rank_of[ties]
            keep = np.argpartition(tie_ranks, ties.size - need)[ties.size - need:]
            ties = ties[keep]
        chosen = np.concatenate([chosen, ties])
    return chosen


class _BasicSelector:
    """Algorithm 1's rule: the single farthest vertex (ties like the dict path).

    Ties on distance prefer non-query vertices, then the largest ``repr``
    rank — matching
    :meth:`~repro.ctc.query_distance.QueryDistanceSnapshot.farthest_vertex`.
    Peeling stops (empty victim set) once the farthest distance is 0.
    """

    __slots__ = ("_query_set", "_query_mask", "_rank", "_rank_array")

    def __init__(self, kernel: QueryKernel, query_ids: list[int]) -> None:
        self._query_set = set(query_ids)
        self._rank = kernel.repr_rank
        self._rank_array = kernel.repr_rank_array
        mask = np.zeros(kernel.csr.number_of_nodes(), dtype=bool)
        mask[np.asarray(query_ids, dtype=np.int64)] = True
        self._query_mask = mask

    def select_table(self, distances: dict[int, float]) -> set[int]:
        rank = self._rank
        query_set = self._query_set
        best_node: int | None = None
        best_key: tuple[float, bool, int] | None = None
        for node, distance in distances.items():
            key = (distance, node not in query_set, rank[node])
            if best_key is None or key > best_key:
                best_key = key
                best_node = node
        if best_node is None or distances[best_node] <= 0:
            return set()
        return {best_node}

    def select_array(self, maxima: np.ndarray, alive_nodes: np.ndarray) -> np.ndarray:
        if alive_nodes.size == 0:
            return alive_nodes
        local = maxima[alive_nodes]
        best = local.max()
        if best <= 0:
            return alive_nodes[:0]
        candidates = alive_nodes[local == best]
        non_query = candidates[~self._query_mask[candidates]]
        if non_query.size:
            candidates = non_query
        return candidates[[np.argmax(self._rank_array[candidates])]]


class _BulkDeleteSelector:
    """Algorithm 4's rule: every vertex at distance >= d - ``threshold_offset``.

    ``d`` is the smallest graph query distance seen so far (per-run state,
    reset per search exactly like ``BulkDeleteCTC``); a finite
    ``batch_limit`` keeps only the vertices ranked farthest by
    ``(distance, repr rank)``, the dict path's tie-break, selected with
    :func:`_top_k_by_distance_rank` instead of a full sort.
    """

    __slots__ = ("_rank", "_rank_array", "_offset", "_limit", "_best_seen")

    def __init__(
        self,
        kernel: QueryKernel,
        query_ids: list[int],
        threshold_offset: int,
        batch_limit: int | None,
    ) -> None:
        del query_ids  # Algorithm 4's bulk set does not exclude query nodes.
        self._rank = kernel.repr_rank
        self._rank_array = kernel.repr_rank_array
        self._offset = threshold_offset
        self._limit = batch_limit
        self._best_seen = _INF

    def select_table(self, distances: dict[int, float]) -> set[int]:
        current = max(distances.values()) if distances else 0.0
        if current <= 0:
            return set()
        if current < self._best_seen:
            self._best_seen = current
        threshold = self._best_seen - self._offset
        if threshold <= 0:
            return set()
        victims = [node for node, distance in distances.items() if distance >= threshold]
        if not victims:
            return set()
        if self._limit is not None and len(victims) > self._limit:
            nodes = np.asarray(victims, dtype=np.int64)
            dist = np.asarray([distances[node] for node in victims], dtype=np.float64)
            return set(
                _top_k_by_distance_rank(nodes, dist, self._rank_array, self._limit).tolist()
            )
        return set(victims)

    def select_array(self, maxima: np.ndarray, alive_nodes: np.ndarray) -> np.ndarray:
        if alive_nodes.size == 0:
            return alive_nodes
        local = maxima[alive_nodes]
        current = float(local.max())
        if current <= 0:
            return alive_nodes[:0]
        if current < self._best_seen:
            self._best_seen = current
        threshold = self._best_seen - self._offset
        if threshold <= 0:
            return alive_nodes[:0]
        hit = local >= threshold
        victims = alive_nodes[hit]
        if self._limit is not None and victims.size > self._limit:
            victims = _top_k_by_distance_rank(
                victims, local[hit], self._rank_array, self._limit
            )
        return victims


#: A victim-selection rule: per iteration, maps the current distances to the
#: vertex set to peel (empty = stop), through whichever of its two views
#: (``select_table`` / ``select_array``) the active engine drives.
VictimSelector = _BasicSelector | _BulkDeleteSelector


def basic_selector(kernel: QueryKernel, query_ids: list[int]) -> VictimSelector:
    """Build Algorithm 1's single-farthest-vertex selection rule."""
    return _BasicSelector(kernel, query_ids)


def bulk_delete_selector(
    kernel: QueryKernel,
    query_ids: list[int],
    threshold_offset: int = 1,
    batch_limit: int | None = None,
) -> VictimSelector:
    """Build Algorithm 4's bulk threshold selection rule."""
    return _BulkDeleteSelector(kernel, query_ids, threshold_offset, batch_limit)


# ----------------------------------------------------------------------
# dict engine (the small-subgraph fallback)
# ----------------------------------------------------------------------
def subgraph_adjacency(
    kernel: QueryKernel, node_ids: list[int], edge_ids: list[int]
) -> dict[int, dict[int, int]]:
    """Build ``{node: {neighbour: edge id}}`` maps for a subgraph."""
    edge_u, edge_v = kernel.edge_u, kernel.edge_v
    adjacency: dict[int, dict[int, int]] = {node: {} for node in node_ids}
    for edge in edge_ids:
        u, v = edge_u[edge], edge_v[edge]
        adjacency[u][v] = edge
        adjacency[v][u] = edge
    return adjacency


def _supports(adjacency: dict[int, dict[int, int]]) -> dict[int, int]:
    """Support of every edge of the subgraph (C-speed keys-view intersection)."""
    supports: dict[int, int] = {}
    for node, row in adjacency.items():
        keys = row.keys()
        for other, edge in row.items():
            if node > other:
                continue
            supports[edge] = len(keys & adjacency[other].keys())
    return supports


def query_distances(
    adjacency: dict[int, dict[int, int]], query_ids: list[int]
) -> dict[int, float]:
    """``dist(v, Q) = max_q dist(v, q)`` for every subgraph node (BFS per q)."""
    maxima: dict[int, float] = {node: 0.0 for node in adjacency}
    for source in query_ids:
        distances = {source: 0}
        queue: deque[int] = deque([source])
        while queue:
            node = queue.popleft()
            next_distance = distances[node] + 1
            for neighbor in adjacency[node]:
                if neighbor not in distances:
                    distances[neighbor] = next_distance
                    queue.append(neighbor)
        for node in maxima:
            distance = distances.get(node, _INF)
            if distance > maxima[node]:
                maxima[node] = distance
    return maxima


def _query_connected(
    adjacency: dict[int, dict[int, int]], query_ids: list[int]
) -> bool:
    """``connect_G(Q)``: all query nodes present and in one component.

    The BFS stops as soon as every query node has been seen — peeling
    shrinks the graph *around* the query, so the queries usually sit close
    together and the component tail never needs walking.
    """
    if any(node not in adjacency for node in query_ids):
        return False
    if len(query_ids) == 1:
        return True
    root = query_ids[0]
    remaining = set(query_ids)
    remaining.discard(root)
    seen = {root}
    queue: deque[int] = deque([root])
    while queue and remaining:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                remaining.discard(neighbor)
                queue.append(neighbor)
    return not remaining


def _cascade_delete(
    kernel: QueryKernel,
    adjacency: dict[int, dict[int, int]],
    supports: dict[int, int],
    alive_edges: set[int],
    victims: set[int],
    k: int,
) -> None:
    """Algorithm 3 on adjacency maps: delete ``victims``, restore the k-truss.

    Mutates ``adjacency``, ``supports`` and ``alive_edges`` in place; the
    fixpoint (the maximal sub-structure where every edge keeps support >=
    k - 2, minus newly isolated vertices) is unique, so any processing
    order matches the dict path's result.
    """
    edge_u, edge_v = kernel.edge_u, kernel.edge_v
    removal_queue: deque[int] = deque()
    queued: set[int] = set()
    present_victims = [node for node in victims if node in adjacency]
    for node in present_victims:
        for edge in adjacency[node].values():
            if edge not in queued:
                queued.add(edge)
                removal_queue.append(edge)

    while removal_queue:
        edge = removal_queue.popleft()
        if edge not in alive_edges:
            continue
        u, v = edge_u[edge], edge_v[edge]
        row_u, row_v = adjacency[u], adjacency[v]
        smaller, larger = (row_u, row_v) if len(row_u) <= len(row_v) else (row_v, row_u)
        for w, first in smaller.items():
            second = larger.get(w)
            if second is None:
                continue
            for side in (first, second):
                if side in queued:
                    continue
                supports[side] -= 1
                if supports[side] < k - 2:
                    queued.add(side)
                    removal_queue.append(side)
        del row_u[v]
        del row_v[u]
        supports.pop(edge, None)
        alive_edges.discard(edge)

    for node in present_victims:
        del adjacency[node]
    for node in [node for node, row in adjacency.items() if not row]:
        del adjacency[node]


def _dict_peel(
    kernel: QueryKernel,
    node_ids: list[int],
    edge_ids: list[int],
    k: int,
    query_ids: list[int],
    selector: VictimSelector,
    start_time: float,
    time_budget: float | None,
    max_iterations: int | None,
    incidence: TriangleIncidence | None,
) -> PeelOutcome:
    """The original adjacency-map peel loop (small working subgraphs)."""
    adjacency = subgraph_adjacency(kernel, node_ids, edge_ids)
    if incidence is not None:
        # The caller's subset incidence already counted every triangle of the
        # working subgraph; seed the support table from it instead of paying
        # the per-edge keys-view intersections again.
        supports = dict(zip(sorted(edge_ids), incidence.supports.tolist()))
    else:
        supports = _supports(adjacency)
    alive_edges = set(edge_ids)
    best_nodes = set(node_ids)
    best_edges = set(edge_ids)
    best_distance = _INF
    iterations = 0
    timed_out = False

    while _query_connected(adjacency, query_ids):
        distances = query_distances(adjacency, query_ids)
        current_distance = max(distances.values()) if distances else 0.0
        if current_distance < best_distance:
            best_distance = current_distance
            best_nodes = set(adjacency)
            best_edges = set(alive_edges)
        if time_budget is not None and time.perf_counter() - start_time > time_budget:
            timed_out = True
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        victims = selector.select_table(distances)
        if not victims:
            break
        _cascade_delete(kernel, adjacency, supports, alive_edges, victims, k)
        iterations += 1
    return PeelOutcome(best_nodes, best_edges, best_distance, iterations, timed_out)


# ----------------------------------------------------------------------
# array engine
# ----------------------------------------------------------------------
def _array_cascade(
    kernel: QueryKernel,
    state: IncidencePeelState,
    sub_edges: np.ndarray,
    local_of_edge: np.ndarray,
    edge_alive_full: np.ndarray,
    node_alive: np.ndarray,
    alive_degree: np.ndarray,
    victims: np.ndarray,
    k: int,
) -> None:
    """Algorithm 3 on masks: delete ``victims``, restore the k-truss property.

    The victims' still-alive incident edges seed the frontier; each round
    kills the frontier (both the local alive flags the incidence peel reads
    and the full-graph mask the BFS reads), drops the dead triangles'
    surviving supports by one bincount, and promotes the edges that fell
    strictly below ``k - 2`` — :meth:`IncidencePeelState.drop_frontier`
    with the threshold pinned at ``k - 3``.  Newly isolated vertices die
    with their last edge, mirroring the adjacency-map cleanup.
    """
    csr = kernel.csr
    indptr = csr.indptr
    starts = indptr[victims]
    counts = indptr[victims + 1] - starts
    total = int(counts.sum())
    if total:
        offsets = np.cumsum(counts) - counts
        gather = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
        incident = csr.slot_edge[gather]
        incident = incident[edge_alive_full[incident]]
        frontier = state.dedup_edges(local_of_edge[incident])
    else:
        frontier = np.zeros(0, dtype=np.int64)

    num_nodes = node_alive.size
    while frontier.size:
        state.edge_alive[frontier] = False
        dead_parent = sub_edges[frontier]
        edge_alive_full[dead_parent] = False
        endpoints = np.concatenate([csr.edge_u[dead_parent], csr.edge_v[dead_parent]])
        alive_degree -= np.bincount(endpoints, minlength=num_nodes)
        frontier = state.drop_frontier(frontier, k - 3)

    node_alive[victims] = False
    # Adjacency-map cleanup twin: every vertex whose row emptied dies too.
    np.logical_and(node_alive, alive_degree > 0, out=node_alive)


def _array_peel(
    kernel: QueryKernel,
    node_ids: list[int],
    edge_ids: list[int],
    k: int,
    query_ids: list[int],
    selector: VictimSelector,
    start_time: float,
    time_budget: float | None,
    max_iterations: int | None,
    incidence: TriangleIncidence | None,
) -> PeelOutcome:
    """The masked peel loop: alive flags + incidence cascade + frontier BFS."""
    csr = kernel.csr
    num_nodes = csr.number_of_nodes()
    num_edges = csr.number_of_edges()
    sub_edges = np.sort(np.asarray(edge_ids, dtype=np.int64))
    if incidence is None:
        incidence = subset_incidence(kernel.ensure_incidence(), sub_edges)
    state = IncidencePeelState(incidence)
    local_of_edge = np.full(num_edges, -1, dtype=np.int64)
    local_of_edge[sub_edges] = np.arange(sub_edges.size, dtype=np.int64)
    edge_alive_full = np.zeros(num_edges, dtype=bool)
    edge_alive_full[sub_edges] = True
    node_alive = np.zeros(num_nodes, dtype=bool)
    node_alive[np.asarray(node_ids, dtype=np.int64)] = True
    alive_degree = np.bincount(
        csr.edge_u[sub_edges], minlength=num_nodes
    ) + np.bincount(csr.edge_v[sub_edges], minlength=num_nodes)
    query = np.asarray(query_ids, dtype=np.int64)

    # Best-graph snapshots stay as arrays until the loop ends (alive_nodes
    # and the boolean-index gather are both fresh arrays each iteration, so
    # no copies are needed); one set conversion happens at return.
    best_nodes_array: np.ndarray | None = None
    best_edges_array: np.ndarray | None = None
    best_distance = _INF
    iterations = 0
    timed_out = False
    maxima = np.zeros(num_nodes, dtype=np.float64)

    while bool(node_alive[query].all()):
        # One BFS per query node; the first doubles as the connect_G(Q)
        # check (all remaining query nodes must be reachable from it), so
        # connectivity costs no extra traversal.
        first = masked_bfs(
            csr.indptr,
            csr.indices,
            query[:1],
            slot_edge=csr.slot_edge,
            edge_alive=edge_alive_full,
        )
        if query.size > 1 and bool((first.distances[query[1:]] < 0).any()):
            break
        maxima[:] = 0.0
        fold_query_distance(maxima, first.distances)
        for source in query[1:]:
            result = masked_bfs(
                csr.indptr,
                csr.indices,
                source[None],
                slot_edge=csr.slot_edge,
                edge_alive=edge_alive_full,
            )
            fold_query_distance(maxima, result.distances)
        alive_nodes = np.nonzero(node_alive)[0]
        current_distance = float(maxima[alive_nodes].max()) if alive_nodes.size else 0.0
        if current_distance < best_distance:
            best_distance = current_distance
            best_nodes_array = alive_nodes
            best_edges_array = sub_edges[state.edge_alive]
        if time_budget is not None and time.perf_counter() - start_time > time_budget:
            timed_out = True
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        victims = selector.select_array(maxima, alive_nodes)
        if victims.size == 0:
            break
        _array_cascade(
            kernel,
            state,
            sub_edges,
            local_of_edge,
            edge_alive_full,
            node_alive,
            alive_degree,
            victims,
            k,
        )
        iterations += 1
    if best_nodes_array is None:
        best_nodes, best_edges = set(node_ids), set(edge_ids)
    else:
        best_nodes = set(best_nodes_array.tolist())
        best_edges = set(best_edges_array.tolist())
    return PeelOutcome(best_nodes, best_edges, best_distance, iterations, timed_out)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def peel(
    kernel: QueryKernel,
    node_ids: list[int],
    edge_ids: list[int],
    k: int,
    query_ids: list[int],
    select_victims: VictimSelector,
    *,
    start_time: float,
    time_budget: float | None = None,
    max_iterations: int | None = None,
    engine: str = "auto",
    incidence: TriangleIncidence | None = None,
) -> PeelOutcome:
    """Run the greedy peeling loop on an explicit starting truss.

    The loop structure — best-graph tracking, budget checks, victim
    selection, cascade — mirrors :meth:`BasicCTC._peel` statement for
    statement; ``engine`` picks the data representation (``"auto"``,
    ``"array"`` or ``"dict"``; see the module docstring), with identical
    results either way.  ``incidence``, when given, must be the
    :func:`~repro.graph.csr_triangles.subset_incidence` restriction to
    ``sorted(edge_ids)``; callers that already restricted one (the LCTC
    pipeline) thread it through so the peel never re-counts its starting
    supports.
    """
    if engine == "auto":
        engine = "array" if len(edge_ids) >= DEFAULT_ARRAY_THRESHOLD else "dict"
    if engine == "array":
        return _array_peel(
            kernel, node_ids, edge_ids, k, query_ids, select_victims,
            start_time, time_budget, max_iterations, incidence,
        )
    if engine != "dict":
        raise ValueError(
            f"peel engine must be 'auto', 'array' or 'dict', got {engine!r}"
        )
    return _dict_peel(
        kernel, node_ids, edge_ids, k, query_ids, select_victims,
        start_time, time_budget, max_iterations, incidence,
    )
