"""The shared peel engine of Basic/BulkDelete on edge-id arrays.

This is the array twin of :meth:`repro.ctc.basic.BasicCTC._peel` +
:class:`~repro.trusses.maintenance.KTrussMaintainer`: a working subgraph is
held as int-keyed adjacency maps (``node id -> {neighbour id: edge id}``)
plus an edge-id-keyed support table, query distances are recomputed each
iteration with one BFS per query node, victims are selected by the
algorithm's rule, and Algorithm 3's cascade restores the k-truss property
incrementally.  All tie-breaks mirror the dict path (``repr`` ranks instead
of ``repr`` strings), so for the same starting truss the two engines peel
the same vertices in the same order and return identical best graphs.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable

from repro.ctc.kernels.context import QueryKernel

__all__ = [
    "PeelOutcome",
    "peel",
    "basic_selector",
    "bulk_delete_selector",
    "subgraph_adjacency",
    "query_distances",
]

_INF = float("inf")

#: A victim-selection rule: maps the current distance table to the vertex
#: set to peel this iteration (empty set = stop).
VictimSelector = Callable[[dict[int, float]], set[int]]


class PeelOutcome:
    """What one peel run produced (the kernel twin of ``_peel``'s tuple)."""

    __slots__ = ("node_ids", "edge_ids", "query_distance", "iterations", "timed_out")

    def __init__(
        self,
        node_ids: set[int],
        edge_ids: set[int],
        query_distance: float,
        iterations: int,
        timed_out: bool,
    ) -> None:
        self.node_ids = node_ids
        self.edge_ids = edge_ids
        self.query_distance = query_distance
        self.iterations = iterations
        self.timed_out = timed_out


def subgraph_adjacency(
    kernel: QueryKernel, node_ids: list[int], edge_ids: list[int]
) -> dict[int, dict[int, int]]:
    """Build ``{node: {neighbour: edge id}}`` maps for a subgraph."""
    edge_u, edge_v = kernel.edge_u, kernel.edge_v
    adjacency: dict[int, dict[int, int]] = {node: {} for node in node_ids}
    for edge in edge_ids:
        u, v = edge_u[edge], edge_v[edge]
        adjacency[u][v] = edge
        adjacency[v][u] = edge
    return adjacency


def _supports(adjacency: dict[int, dict[int, int]]) -> dict[int, int]:
    """Support of every edge of the subgraph (C-speed keys-view intersection)."""
    supports: dict[int, int] = {}
    for node, row in adjacency.items():
        keys = row.keys()
        for other, edge in row.items():
            if node > other:
                continue
            supports[edge] = len(keys & adjacency[other].keys())
    return supports


def query_distances(
    adjacency: dict[int, dict[int, int]], query_ids: list[int]
) -> dict[int, float]:
    """``dist(v, Q) = max_q dist(v, q)`` for every subgraph node (BFS per q)."""
    maxima: dict[int, float] = {node: 0.0 for node in adjacency}
    for source in query_ids:
        distances = {source: 0}
        queue: deque[int] = deque([source])
        while queue:
            node = queue.popleft()
            next_distance = distances[node] + 1
            for neighbor in adjacency[node]:
                if neighbor not in distances:
                    distances[neighbor] = next_distance
                    queue.append(neighbor)
        for node in maxima:
            distance = distances.get(node, _INF)
            if distance > maxima[node]:
                maxima[node] = distance
    return maxima


def _query_connected(
    adjacency: dict[int, dict[int, int]], query_ids: list[int]
) -> bool:
    """``connect_G(Q)``: all query nodes present and in one component."""
    if any(node not in adjacency for node in query_ids):
        return False
    if len(query_ids) == 1:
        return True
    root = query_ids[0]
    seen = {root}
    queue: deque[int] = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return all(node in seen for node in query_ids[1:])


def _cascade_delete(
    kernel: QueryKernel,
    adjacency: dict[int, dict[int, int]],
    supports: dict[int, int],
    alive_edges: set[int],
    victims: set[int],
    k: int,
) -> None:
    """Algorithm 3 on arrays: delete ``victims``, restore the k-truss property.

    Mutates ``adjacency``, ``supports`` and ``alive_edges`` in place; the
    fixpoint (the maximal sub-structure where every edge keeps support >=
    k - 2, minus newly isolated vertices) is unique, so any processing
    order matches the dict path's result.
    """
    edge_u, edge_v = kernel.edge_u, kernel.edge_v
    removal_queue: deque[int] = deque()
    queued: set[int] = set()
    present_victims = [node for node in victims if node in adjacency]
    for node in present_victims:
        for edge in adjacency[node].values():
            if edge not in queued:
                queued.add(edge)
                removal_queue.append(edge)

    while removal_queue:
        edge = removal_queue.popleft()
        if edge not in alive_edges:
            continue
        u, v = edge_u[edge], edge_v[edge]
        row_u, row_v = adjacency[u], adjacency[v]
        smaller, larger = (row_u, row_v) if len(row_u) <= len(row_v) else (row_v, row_u)
        for w, first in smaller.items():
            second = larger.get(w)
            if second is None:
                continue
            for side in (first, second):
                if side in queued:
                    continue
                supports[side] -= 1
                if supports[side] < k - 2:
                    queued.add(side)
                    removal_queue.append(side)
        del row_u[v]
        del row_v[u]
        supports.pop(edge, None)
        alive_edges.discard(edge)

    for node in present_victims:
        del adjacency[node]
    for node in [node for node, row in adjacency.items() if not row]:
        del adjacency[node]


def peel(
    kernel: QueryKernel,
    node_ids: list[int],
    edge_ids: list[int],
    k: int,
    query_ids: list[int],
    select_victims: VictimSelector,
    *,
    start_time: float,
    time_budget: float | None = None,
    max_iterations: int | None = None,
) -> PeelOutcome:
    """Run the greedy peeling loop on an explicit starting truss.

    The loop structure — best-graph tracking, budget checks, victim
    selection, cascade — mirrors :meth:`BasicCTC._peel` statement for
    statement; only the data representation differs.
    """
    adjacency = subgraph_adjacency(kernel, node_ids, edge_ids)
    supports = _supports(adjacency)
    alive_edges = set(edge_ids)
    best_nodes = set(node_ids)
    best_edges = set(edge_ids)
    best_distance = _INF
    iterations = 0
    timed_out = False

    while _query_connected(adjacency, query_ids):
        distances = query_distances(adjacency, query_ids)
        current_distance = max(distances.values()) if distances else 0.0
        if current_distance < best_distance:
            best_distance = current_distance
            best_nodes = set(adjacency)
            best_edges = set(alive_edges)
        if time_budget is not None and time.perf_counter() - start_time > time_budget:
            timed_out = True
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        victims = select_victims(distances)
        if not victims:
            break
        _cascade_delete(kernel, adjacency, supports, alive_edges, victims, k)
        iterations += 1
    return PeelOutcome(best_nodes, best_edges, best_distance, iterations, timed_out)


def basic_selector(kernel: QueryKernel, query_ids: list[int]) -> VictimSelector:
    """Algorithm 1's rule: the single farthest vertex (ties like the dict path).

    Ties on distance prefer non-query vertices, then the largest ``repr``
    rank — matching
    :meth:`~repro.ctc.query_distance.QueryDistanceSnapshot.farthest_vertex`.
    Peeling stops (empty victim set) once the farthest distance is 0.
    """
    query_set = set(query_ids)
    repr_rank = kernel.repr_rank

    def select(distances: dict[int, float]) -> set[int]:
        best_node: int | None = None
        best_key: tuple[float, bool, int] | None = None
        for node, distance in distances.items():
            key = (distance, node not in query_set, repr_rank[node])
            if best_key is None or key > best_key:
                best_key = key
                best_node = node
        if best_node is None or distances[best_node] <= 0:
            return set()
        return {best_node}

    return select


def bulk_delete_selector(
    kernel: QueryKernel,
    query_ids: list[int],
    threshold_offset: int = 1,
    batch_limit: int | None = None,
) -> VictimSelector:
    """Algorithm 4's rule: every vertex at distance >= d - ``threshold_offset``.

    ``d`` is the smallest graph query distance seen so far (per-run state,
    captured in the closure exactly like ``BulkDeleteCTC`` resets it per
    search); a finite ``batch_limit`` keeps only the vertices ranked
    farthest by ``(distance, repr rank)``, the dict path's tie-break.
    """
    del query_ids  # Algorithm 4's bulk set does not exclude query nodes.
    repr_rank = kernel.repr_rank
    best_seen = _INF

    def select(distances: dict[int, float]) -> set[int]:
        nonlocal best_seen
        current = max(distances.values()) if distances else 0.0
        if current <= 0:
            return set()
        if current < best_seen:
            best_seen = current
        threshold = best_seen - threshold_offset
        if threshold <= 0:
            return set()
        victims = {node for node, distance in distances.items() if distance >= threshold}
        if not victims:
            return set()
        if batch_limit is not None and len(victims) > batch_limit:
            ranked = sorted(
                victims,
                key=lambda node: (distances[node], repr_rank[node]),
                reverse=True,
            )
            victims = set(ranked[:batch_limit])
        return victims

    return select
