"""Query-distance bookkeeping for the peeling algorithms.

Algorithms 1 and 4 recompute, at every iteration, the vertex query distance
``dist(v, Q)`` of every surviving vertex via one BFS per query node
(Section 4.3, "Computing Query Distance").  This module packages that
computation plus the selection rules the two algorithms use:

* the single farthest vertex ``u* = argmax dist(v, Q)`` (Basic), and
* the bulk candidate set ``L = {v : dist(v, Q) >= d - 1}`` (BulkDelete) or
  ``L' = {v : dist(v, Q) >= d}`` (the LCTC shrinking variant).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import query_distances

__all__ = [
    "QueryDistanceSnapshot",
    "compute_snapshot",
]

_INF = float("inf")


class QueryDistanceSnapshot:
    """Vertex query distances of one peeling iteration, with selection helpers."""

    __slots__ = ("distances", "query")

    def __init__(self, distances: dict[Hashable, float], query: Sequence[Hashable]) -> None:
        self.distances = distances
        self.query = tuple(query)

    # ------------------------------------------------------------------
    @property
    def graph_query_distance(self) -> float:
        """``dist(G, Q)``: the maximum vertex query distance."""
        return max(self.distances.values()) if self.distances else 0.0

    def farthest_vertex(self) -> Hashable | None:
        """Return one vertex attaining the maximum query distance.

        The paper's ``u* = argmax dist(u, Q)`` does not exclude query nodes
        (deleting one simply ends the peeling at the next connectivity
        check); ties are broken in favour of *non-query* vertices first and
        then by ``repr`` so runs are deterministic and the algorithm peels as
        long as the paper's would.  Returns ``None`` for an empty snapshot.
        """
        query_set = set(self.query)
        best_node: Hashable | None = None
        best_key: tuple[float, bool, str] | None = None
        for node, distance in self.distances.items():
            key = (distance, node not in query_set, repr(node))
            if best_key is None or key > best_key:
                best_key = key
                best_node = node
        return best_node

    def vertices_at_least(self, threshold: float, exclude_query: bool = False) -> set[Hashable]:
        """Return all vertices with query distance >= ``threshold``.

        Algorithm 4's bulk set ``L = {u : dist(u, Q) >= d - 1}`` does include
        query nodes when they qualify (Example 7 relies on this: removing
        ``L`` there disconnects ``Q`` and the algorithm stops with ``G0``);
        pass ``exclude_query=True`` for the softer variant.
        """
        query_set = set(self.query) if exclude_query else set()
        return {
            node
            for node, distance in self.distances.items()
            if distance >= threshold and node not in query_set
        }

    def has_unreachable_vertex(self) -> bool:
        """Return ``True`` if some vertex cannot reach every query node."""
        return any(distance == _INF for distance in self.distances.values())

    def __repr__(self) -> str:
        return (
            f"QueryDistanceSnapshot(vertices={len(self.distances)}, "
            f"graph_query_distance={self.graph_query_distance})"
        )


def compute_snapshot(graph: UndirectedGraph, query: Sequence[Hashable]) -> QueryDistanceSnapshot:
    """Compute ``dist(v, Q)`` for every vertex of ``graph`` (|Q| BFS passes)."""
    return QueryDistanceSnapshot(query_distances(graph, query), query)
