"""Algorithm 5 (``LCTC``): local exploration around a truss-aware Steiner tree.

The global algorithms (Basic, BD) touch the whole maximal connected k-truss
``G0``, which on large networks is most of the graph.  LCTC instead:

1. connects the query nodes with a Steiner tree ``T`` under the truss
   distance (Section 5.2, Definition 7), so the seed avoids low-trussness
   bridges;
2. expands ``T`` outward in BFS order through edges whose trussness is at
   least ``k_t = min_{e in T} tau(e)``, stopping once the expanded node set
   reaches the size budget ``eta``;
3. truss-decomposes the (small) expanded graph and extracts the maximal
   connected k-truss containing ``Q`` with the largest ``k <= k_t``;
4. shrinks it with the conservative BulkDelete variant (peel vertices at
   query distance >= d, i.e. ``threshold_offset=0``), which preserves the
   2-approximation on the *local* graph.

LCTC is a heuristic overall: its answer may have lower trussness than the
global optimum when the expansion budget cuts the community short, which is
exactly the trade-off Figure 13(b) of the paper quantifies.

Paper cross-references
----------------------
* Algorithm 5 — the four-step pipeline implemented by
  :meth:`LocalCTC.search`.
* Definition 7 / Section 5.1 — the truss distance minimised by the Steiner
  tree seed (:mod:`repro.ctc.steiner`), with gamma weighting the trussness
  penalty.
* Section 5.2 — local expansion under the budget ``eta`` and the
  conservative BulkDelete shrink (``threshold_offset=0``).
* Figures 13(b), 15, 16 — quality vs. the global methods, and the eta /
  gamma sensitivity experiments (``benchmarks/bench_fig15_vary_eta.py``,
  ``benchmarks/bench_fig16_vary_gamma.py``).

Step 3's local re-decomposition consumes per-edge trussness dicts keyed by
:func:`repro.graph.keys.edge_key` (see that module for the key contract).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Hashable, Sequence

from repro.ctc.bulk_delete import BulkDeleteCTC
from repro.ctc.kernels import lctc_search as _kernel_lctc_search
from repro.ctc.kernels import split_dispatch
from repro.ctc.result import CommunityResult
from repro.ctc.steiner import build_truss_steiner_tree, minimum_trussness_of_tree
from repro.exceptions import NoCommunityFoundError
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.extraction import find_maximal_connected_truss, validate_query
from repro.trusses.index import TrussIndex

__all__ = ["LocalCTC", "local_ctc_search", "DEFAULT_ETA", "DEFAULT_GAMMA"]

#: Default expansion budget; the paper tunes eta in [500, 2000] and settles on
#: 1000 for the SNAP networks.  The synthetic stand-ins are smaller, so
#: experiment configs usually scale this down.
DEFAULT_ETA = 1000

#: Default trussness penalty weight; the paper selects gamma = 3.
DEFAULT_GAMMA = 3.0


class LocalCTC:
    """Local-exploration CTC search (the paper's ``LCTC``).

    Parameters
    ----------
    index:
        Truss index over the full graph, or an
        :class:`~repro.engine.EngineSnapshot` (the search then runs on the
        snapshot's CSR-native kernels — see :mod:`repro.ctc.kernels` —
        with identical results).
    eta:
        Node-count budget for the local expansion (``|V(Gt)| <= eta``).
    gamma:
        Weight of the trussness penalty in the truss distance.
    max_trussness_k:
        Optional cap on the community trussness.  ``None`` (default)
        reproduces the parameter-free model; a finite value reproduces the
        "given maximum trussness k" experiment of Figure 14.
    """

    method_name = "lctc"

    def __init__(
        self,
        index: TrussIndex,
        eta: int = DEFAULT_ETA,
        gamma: float = DEFAULT_GAMMA,
        max_trussness_k: int | None = None,
    ) -> None:
        if eta < 1:
            raise ValueError(f"eta must be positive, got {eta}")
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        self._kernel, self._index = split_dispatch(index)
        self._eta = eta
        self._gamma = gamma
        self._max_trussness_k = max_trussness_k

    # ------------------------------------------------------------------
    def search(self, query: Sequence[Hashable]) -> CommunityResult:
        """Run LCTC for ``query`` and return the community found."""
        if self._kernel is not None:
            return _kernel_lctc_search(
                self._kernel,
                query,
                eta=self._eta,
                gamma=self._gamma,
                max_trussness_k=self._max_trussness_k,
            )
        start_time = time.perf_counter()
        graph = self._index.graph
        query_nodes = tuple(validate_query(graph, query))

        # Step 1: truss-aware Steiner tree over the query nodes.
        steiner_tree = build_truss_steiner_tree(self._index, query_nodes, self._gamma)
        k_t = minimum_trussness_of_tree(self._index, steiner_tree)
        if self._max_trussness_k is not None:
            k_t = min(k_t, self._max_trussness_k)

        # Step 2: expand the tree through edges of trussness >= k_t.
        expanded = self._expand(steiner_tree, k_t)

        # Step 3: extract the best connected truss containing Q from the
        # expansion.  The expansion's trussness may be below k_t, so we
        # re-decompose locally and take the largest feasible k.
        local_index = TrussIndex(expanded)
        try:
            candidate, k = find_maximal_connected_truss(local_index, query_nodes)
        except NoCommunityFoundError:
            # The expansion could not connect Q inside any truss; fall back to
            # the expansion itself (trussness 2) so the caller still gets a
            # connected subgraph containing the query.
            candidate, k = expanded, 2
        if self._max_trussness_k is not None and k > self._max_trussness_k:
            k = self._max_trussness_k
            candidate = self._restrict_to_level(local_index, query_nodes, k, fallback=candidate)

        # Step 4: shrink with the conservative BulkDelete variant.
        candidate_index = TrussIndex(candidate)
        shrinker = BulkDeleteCTC(candidate_index, threshold_offset=0)
        best_graph, best_distance, iterations, _timed_out = shrinker.peel(
            candidate, k, query_nodes, start_time
        )

        elapsed = time.perf_counter() - start_time
        return CommunityResult(
            graph=best_graph,
            query=query_nodes,
            trussness=k,
            method=self.method_name,
            query_distance=best_distance,
            elapsed_seconds=elapsed,
            iterations=iterations,
            extras={
                "steiner_nodes": steiner_tree.number_of_nodes(),
                "k_t": k_t,
                "expanded_nodes": expanded.number_of_nodes(),
                "expanded_edges": expanded.number_of_edges(),
                "eta": self._eta,
                "gamma": self._gamma,
            },
        )

    # ------------------------------------------------------------------
    def _expand(self, steiner_tree: UndirectedGraph, k_t: int) -> UndirectedGraph:
        """Grow the Steiner tree through trussness >= k_t edges up to ``eta`` nodes."""
        expanded = UndirectedGraph()
        expanded.add_nodes_from(steiner_tree.nodes())
        for u, v in steiner_tree.edges():
            expanded.add_edge(u, v)

        queue: deque[Hashable] = deque(sorted(steiner_tree.nodes(), key=repr))
        enqueued = set(queue)
        while queue:
            node = queue.popleft()
            for neighbor, _trussness in self._index.incident_edges_at_least(node, k_t):
                if expanded.number_of_nodes() >= self._eta and not expanded.has_node(neighbor):
                    # Budget reached: keep closing edges among already-included
                    # nodes (they are free density-wise) but add no new nodes.
                    continue
                expanded.add_edge(node, neighbor)
                if neighbor not in enqueued:
                    enqueued.add(neighbor)
                    queue.append(neighbor)
        return expanded

    def _restrict_to_level(
        self,
        local_index: TrussIndex,
        query_nodes: Sequence[Hashable],
        k: int,
        fallback: UndirectedGraph,
    ) -> UndirectedGraph:
        """Return the connected k-truss containing Q at level ``k`` of the local graph."""
        from repro.trusses.extraction import find_connected_truss_at_k

        try:
            return find_connected_truss_at_k(local_index, query_nodes, k)
        except NoCommunityFoundError:
            return fallback


def local_ctc_search(
    graph: UndirectedGraph,
    query: Sequence[Hashable],
    index: TrussIndex | None = None,
    eta: int = DEFAULT_ETA,
    gamma: float = DEFAULT_GAMMA,
    max_trussness_k: int | None = None,
) -> CommunityResult:
    """One-call convenience wrapper: build the index if needed and run ``LCTC``."""
    if index is None:
        index = TrussIndex(graph)
    searcher = LocalCTC(index, eta=eta, gamma=gamma, max_trussness_k=max_trussness_k)
    return searcher.search(query)
