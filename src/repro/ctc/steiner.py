"""Steiner trees under the *truss distance* (Definition 7).

LCTC (Algorithm 5) seeds its local exploration with a Steiner tree over the
query nodes.  A plain hop-count Steiner tree can run through low-trussness
bridges (the ``(q1, t), (t, q3)`` example of Section 5.2), which would doom
the subsequent expansion to a low-trussness community.  The paper therefore
scores a path ``P`` by

    truss_dist(P) = len(P) + gamma * (tau_bar(empty) - min_{e in P} tau(e))

i.e. hop length plus a penalty for the weakest edge on the path.

Because the penalty depends on the *minimum* edge trussness of the path (not
a per-edge sum), the shortest truss-distance path is computed exactly by a
threshold sweep: for every candidate trussness level ``t`` (in decreasing
order) run a BFS restricted to edges with trussness >= ``t``; the best
``hops + gamma * (tau_bar - t)`` over all levels is the true minimum, because
any path with bottleneck trussness ``t`` is available (and no longer than the
BFS distance) at threshold ``t``.

The tree itself follows the classic Kou–Markowsky–Berman 2-approximation:
metric closure over the terminals under the truss distance, minimum spanning
tree of the closure, expansion of closure edges back into their witness
paths, and pruning of non-terminal leaves.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence

from repro.exceptions import QueryError
from repro.graph.components import UnionFind
from repro.graph.keys import edge_key
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.index import TrussIndex

__all__ = [
    "truss_distance_between",
    "truss_distance_closure",
    "build_truss_steiner_tree",
    "minimum_trussness_of_tree",
]

_INF = float("inf")


def _restricted_bfs_paths(
    index: TrussIndex,
    source: Hashable,
    targets: set[Hashable],
    threshold: int,
    cutoff: float,
) -> dict[Hashable, list[Hashable]]:
    """BFS from ``source`` over edges with trussness >= ``threshold``.

    Returns a path for every target reached within ``cutoff`` hops.
    """
    graph = index.graph
    parents: dict[Hashable, Hashable | None] = {source: None}
    depth: dict[Hashable, int] = {source: 0}
    remaining = set(targets)
    remaining.discard(source)
    found: dict[Hashable, list[Hashable]] = {}
    if source in targets:
        found[source] = [source]
    queue: deque[Hashable] = deque([source])
    while queue and remaining:
        node = queue.popleft()
        next_depth = depth[node] + 1
        if next_depth > cutoff:
            continue
        for neighbor, _trussness in index.incident_edges_at_least(node, threshold):
            if neighbor in parents:
                continue
            parents[neighbor] = node
            depth[neighbor] = next_depth
            if neighbor in remaining:
                remaining.discard(neighbor)
                path = [neighbor]
                current = node
                while current is not None:
                    path.append(current)
                    current = parents[current]
                path.reverse()
                found[neighbor] = path
            queue.append(neighbor)
    return found


def truss_distance_between(
    index: TrussIndex,
    source: Hashable,
    target: Hashable,
    gamma: float,
    levels: Sequence[int] | None = None,
) -> tuple[float, list[Hashable] | None]:
    """Return ``(truss distance, witness path)`` between two nodes.

    ``levels`` may restrict the candidate bottleneck-trussness values; by
    default every distinct edge-trussness level of the graph is considered.
    Returns ``(inf, None)`` when the nodes are disconnected.
    """
    if source == target:
        return 0.0, [source]
    tau_bar = index.max_trussness()
    candidate_levels = sorted(levels if levels is not None else index.trussness_levels(), reverse=True)
    best_value = _INF
    best_path: list[Hashable] | None = None
    for threshold in candidate_levels:
        penalty = gamma * (tau_bar - threshold)
        if best_path is not None and penalty + 1 >= best_value:
            # Lower thresholds only increase the penalty; nothing can improve.
            break
        cutoff = best_value - penalty if best_value < _INF else _INF
        paths = _restricted_bfs_paths(index, source, {target}, threshold, cutoff)
        path = paths.get(target)
        if path is None:
            continue
        value = (len(path) - 1) + penalty
        if value < best_value:
            best_value = value
            best_path = path
    return best_value, best_path


def truss_distance_closure(
    index: TrussIndex, terminals: Sequence[Hashable], gamma: float
) -> dict[tuple[Hashable, Hashable], tuple[float, list[Hashable]]]:
    """Return the truss-distance metric closure over ``terminals``.

    Maps every unordered terminal pair (canonical edge key) to its truss
    distance and a witness path.  Pairs in different connected components are
    omitted.
    """
    closure: dict[tuple[Hashable, Hashable], tuple[float, list[Hashable]]] = {}
    terminal_list = list(dict.fromkeys(terminals))
    for position, source in enumerate(terminal_list):
        for target in terminal_list[position + 1:]:
            value, path = truss_distance_between(index, source, target, gamma)
            if path is not None:
                closure[edge_key(source, target)] = (value, path)
    return closure


def build_truss_steiner_tree(
    index: TrussIndex, terminals: Sequence[Hashable], gamma: float
) -> UndirectedGraph:
    """Return a Steiner tree over ``terminals`` under the truss distance.

    Follows Kou–Markowsky–Berman with the truss-distance metric closure.  A
    single terminal yields a single-node tree.

    Raises
    ------
    QueryError
        If ``terminals`` is empty or some pair of terminals is disconnected.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        raise QueryError("cannot build a Steiner tree over an empty terminal set")
    tree = UndirectedGraph()
    if len(terminal_list) == 1:
        tree.add_node(terminal_list[0])
        return tree

    closure = truss_distance_closure(index, terminal_list, gamma)

    # Kruskal MST over the metric closure.
    union_find = UnionFind(terminal_list)
    chosen_pairs: list[tuple[Hashable, Hashable]] = []
    for (u, v), (_value, _path) in sorted(closure.items(), key=lambda item: (item[1][0], repr(item[0]))):
        if union_find.union(u, v):
            chosen_pairs.append((u, v))
    roots = {union_find.find(node) for node in terminal_list}
    if len(roots) > 1:
        raise QueryError("terminals are not mutually connected; no Steiner tree exists")

    # Expand closure edges back into witness paths.
    expanded = UndirectedGraph()
    for u, v in chosen_pairs:
        _value, path = closure[edge_key(u, v)]
        for first, second in zip(path, path[1:]):
            expanded.add_edge(first, second)

    # Spanning tree of the expansion, preferring high-trussness edges, then
    # prune non-terminal leaves (final KMB step).
    spanning = _minimum_spanning_tree(expanded, index, gamma)
    _prune_nonterminal_leaves(spanning, set(terminal_list))
    return spanning


def _minimum_spanning_tree(
    graph: UndirectedGraph, index: TrussIndex, gamma: float
) -> UndirectedGraph:
    """Kruskal spanning tree of ``graph`` with weight ``1 + gamma * (tau_bar - tau(e))``."""
    tau_bar = index.max_trussness()

    def weight(edge: tuple[Hashable, Hashable]) -> float:
        return 1.0 + gamma * (tau_bar - index.edge_trussness(*edge))

    union_find = UnionFind(graph.nodes())
    tree = UndirectedGraph()
    tree.add_nodes_from(graph.nodes())
    for u, v in sorted(graph.edges(), key=lambda edge: (weight(edge), repr(edge))):
        if union_find.union(u, v):
            tree.add_edge(u, v)
    return tree


def _prune_nonterminal_leaves(tree: UndirectedGraph, terminals: set[Hashable]) -> None:
    """Repeatedly strip degree-<=1 non-terminal nodes from ``tree`` in place."""
    changed = True
    while changed:
        changed = False
        for node in list(tree.nodes()):
            if node not in terminals and tree.degree(node) <= 1:
                tree.remove_node(node)
                changed = True


def minimum_trussness_of_tree(index: TrussIndex, tree: UndirectedGraph) -> int:
    """Return ``k_t = min_{e in T} tau(e)`` (Algorithm 5, line 2).

    For an edge-less tree (single terminal) the vertex trussness of that
    terminal is returned, which is the natural upper bound for the expansion.
    """
    edges = list(tree.edges())
    if not edges:
        nodes = list(tree.nodes())
        return index.vertex_trussness(nodes[0]) if nodes else 2
    return min(index.edge_trussness(u, v) for u, v in edges)
