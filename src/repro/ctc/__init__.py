"""Closest Truss Community search: the paper's core contribution."""

from repro.ctc.api import available_methods, build_index, search
from repro.ctc.basic import BasicCTC, basic_ctc_search
from repro.ctc.bulk_delete import BulkDeleteCTC, bulk_delete_ctc_search
from repro.ctc.free_rider import (
    free_riders,
    retained_edge_percentage,
    retained_node_percentage,
    suffers_free_rider_effect,
)
from repro.ctc.local import DEFAULT_ETA, DEFAULT_GAMMA, LocalCTC, local_ctc_search
from repro.ctc.query_distance import QueryDistanceSnapshot, compute_snapshot
from repro.ctc.result import CommunityResult
from repro.ctc.steiner import (
    build_truss_steiner_tree,
    minimum_trussness_of_tree,
    truss_distance_between,
    truss_distance_closure,
)

__all__ = [
    "search",
    "build_index",
    "available_methods",
    "CommunityResult",
    "BasicCTC",
    "basic_ctc_search",
    "BulkDeleteCTC",
    "bulk_delete_ctc_search",
    "LocalCTC",
    "local_ctc_search",
    "DEFAULT_ETA",
    "DEFAULT_GAMMA",
    "QueryDistanceSnapshot",
    "compute_snapshot",
    "build_truss_steiner_tree",
    "minimum_trussness_of_tree",
    "truss_distance_between",
    "truss_distance_closure",
    "retained_node_percentage",
    "retained_edge_percentage",
    "free_riders",
    "suffers_free_rider_effect",
]
