"""Exception hierarchy for the CTC reproduction library.

All library errors derive from :class:`ReproError` so that callers can catch
library failures with a single ``except`` clause while still distinguishing
the common cases (bad graph input, query nodes missing from the graph, no
community satisfying the model, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """A graph operation received structurally invalid input.

    Examples: adding a self-loop to a simple graph, querying an endpoint of
    an edge that does not exist, or building a view over nodes that are not
    present in the parent graph.
    """


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class QueryError(ReproError):
    """A community-search query is malformed.

    Raised when the query node set is empty where the algorithm requires at
    least one node, when query nodes are missing from the graph, or when the
    query nodes are mutually disconnected so no connected community exists.
    """


class NoCommunityFoundError(ReproError):
    """No community satisfying the model exists for the given query.

    For the CTC model this happens when the query nodes cannot be connected
    inside any k-truss with k >= 2 (e.g. they lie in different connected
    components of the graph).
    """


class IndexNotBuiltError(ReproError):
    """A truss-index-dependent operation was invoked before building the index."""


class StaleMaintainerError(ReproError):
    """An engine-bound k-truss maintainer was used after the store moved on.

    A :class:`~repro.trusses.maintenance.KTrussMaintainer` obtained from
    :meth:`~repro.engine.CTCEngine.maintainer` computes its edge-support
    table at creation time; if the engine's store is mutated through any
    other channel afterwards, that table is stale and further cascades
    would corrupt the graph.  Obtain a fresh maintainer instead.
    """


class VersionEvictedError(ReproError):
    """A time-travel read asked for a version the delta log no longer retains.

    :meth:`~repro.engine.CTCEngine.snapshot_at` can materialize any version
    the bounded delta log still reaches (see ``retained_versions()``); once
    a version's deltas are trimmed past ``delta_log_limit``, the graph state
    at that version is unrecoverable and pinned reads against it must fail
    loudly instead of silently serving a different version.

    Attributes
    ----------
    version:
        The requested (unrecoverable) version.
    retained:
        The inclusive ``(oldest, newest)`` range of versions that *can*
        still be materialized.
    """

    def __init__(self, version: int, retained: tuple[int, int]) -> None:
        super().__init__(
            f"version {version} has been evicted from the delta log; "
            f"retained versions are {retained[0]}..{retained[1]} "
            "(raise delta_log_limit to keep more history)"
        )
        self.version = version
        self.retained = retained


class CrossShardMutationError(GraphError):
    """A mutation would create an edge spanning two serving shards.

    The process-mode :class:`~repro.engine.serving.ServingEngine` partitions
    the store by connected component; an edge between nodes living on
    different shards would merge two components across worker processes,
    which the shard-parallel design cannot represent.  Route such workloads
    through a single-process engine (or thread mode) instead.
    """


class QueryTimeoutError(ReproError):
    """A query missed its deadline and was abandoned by the serving layer.

    Raised per overdue query by :meth:`~repro.engine.serving.ServingEngine.
    query_batch` (and :meth:`aquery`) when ``timeout=`` is given: in thread
    mode when the query's future has not completed by the deadline, in
    process mode when the owning shard worker has not replied by it.  Also
    raised by :meth:`~repro.engine.CTCEngine.snapshot_at` when a
    deadline-bounded wait on another thread's in-flight snapshot build
    expires.  The computation may still complete in the background — the
    error only means the caller stopped waiting.

    Attributes
    ----------
    timeout:
        The deadline that was missed, in seconds (``None`` when unknown).
    """

    def __init__(self, message: str, *, timeout: float | None = None) -> None:
        super().__init__(message)
        self.timeout = timeout


class ShardUnavailableError(ReproError):
    """A serving shard was quarantined after repeated worker failures.

    The process-mode :class:`~repro.engine.serving.ServingEngine` respawns a
    crashed shard worker with bounded retries; once the retry budget is
    exhausted the shard is quarantined and every query or mutation routed to
    it fails fast with this error while the remaining shards keep serving
    (graceful degradation instead of a poisoned engine).

    Attributes
    ----------
    shard:
        The quarantined shard index (``None`` when not applicable).
    """

    def __init__(self, message: str, *, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard


class ConfigurationError(ReproError):
    """An experiment or dataset configuration is inconsistent."""


class WalCorruptionError(ReproError):
    """The write-ahead delta log is damaged beyond safe recovery.

    The WAL recovery reader distinguishes two failure shapes.  A **torn
    tail** — the final record cut short or failing its checksum, the
    expected residue of a crash mid-append — is repaired silently by
    truncating the log back to the last whole record.  Damage anywhere
    *before* the tail (a checksum mismatch followed by more log bytes, a
    bad file header, a version gap between consecutive records) cannot be
    the result of a crashed append; it means the file was corrupted after
    the fact, and replaying past it could silently resurrect a different
    graph.  That case must fail loudly with this error instead of serving
    wrong data.

    Attributes
    ----------
    path:
        The damaged WAL (or checkpoint manifest) file, when known.
    offset:
        Byte offset of the damaged record, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        offset: int | None = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset
