"""Experiment drivers that regenerate every table and figure of the paper."""

from repro.experiments.config import FULL_CONFIG, QUICK_CONFIG, ExperimentConfig
from repro.experiments.figures import (
    approximation_quality,
    case_study,
    ground_truth_quality,
    vary_degree_rank,
    vary_eta,
    vary_gamma,
    vary_inter_distance,
    vary_query_size,
    vary_trussness_k,
)
from repro.experiments.reporting import format_series, format_table, render_report
from repro.experiments.runner import MethodRun, make_searcher, run_method_on_queries
from repro.experiments.tables import (
    render_table2,
    render_table3,
    table2_network_statistics,
    table3_index_statistics,
)

__all__ = [
    "ExperimentConfig",
    "QUICK_CONFIG",
    "FULL_CONFIG",
    "table2_network_statistics",
    "table3_index_statistics",
    "render_table2",
    "render_table3",
    "vary_query_size",
    "vary_degree_rank",
    "vary_inter_distance",
    "case_study",
    "ground_truth_quality",
    "approximation_quality",
    "vary_trussness_k",
    "vary_eta",
    "vary_gamma",
    "MethodRun",
    "make_searcher",
    "run_method_on_queries",
    "format_table",
    "format_series",
    "render_report",
]
