"""Table 2 and Table 3 of the paper.

* Table 2: per-network statistics — ``|V|``, ``|E|``, ``d_max`` and the
  maximum trussness ``tau_bar(empty)``.
* Table 3: truss-index size and construction time per network.

Both are computed over the registry's stand-in networks; the paper's original
numbers are carried along (from :data:`repro.datasets.registry.PAPER_NETWORKS`)
so the printed table shows the substitution side by side.
"""

from __future__ import annotations

import time
from typing import Any

from repro.datasets.registry import PAPER_NETWORKS, dataset_names, dataset_spec, load_dataset
from repro.experiments.reporting import format_table
from repro.trusses.decomposition import max_trussness, truss_decomposition
from repro.trusses.index import TrussIndex

__all__ = ["table2_network_statistics", "table3_index_statistics", "render_table2", "render_table3"]


def table2_network_statistics(names: list[str] | None = None) -> list[dict[str, Any]]:
    """Return one row per stand-in network with the Table 2 statistics."""
    rows: list[dict[str, Any]] = []
    for name in names or dataset_names():
        network = load_dataset(name)
        spec = dataset_spec(name)
        trussness = truss_decomposition(network.graph)
        paper = PAPER_NETWORKS.get(spec.paper_counterpart, {})
        rows.append(
            {
                "network": name,
                "paper_counterpart": spec.paper_counterpart,
                "nodes": network.graph.number_of_nodes(),
                "edges": network.graph.number_of_edges(),
                "d_max": network.graph.max_degree(),
                "max_trussness": max_trussness(network.graph, trussness),
                "paper_nodes": paper.get("nodes", ""),
                "paper_edges": paper.get("edges", ""),
                "paper_max_trussness": paper.get("max_trussness", ""),
            }
        )
    return rows


def table3_index_statistics(names: list[str] | None = None) -> list[dict[str, Any]]:
    """Return one row per network with index size (entries) and build time."""
    rows: list[dict[str, Any]] = []
    for name in names or dataset_names():
        network = load_dataset(name)
        graph_entries = 2 * network.graph.number_of_edges() + network.graph.number_of_nodes()
        started = time.perf_counter()
        index = TrussIndex(network.graph)
        build_seconds = time.perf_counter() - started
        rows.append(
            {
                "network": name,
                "graph_entries": graph_entries,
                "index_entries": index.size_in_entries(),
                "index_to_graph_ratio": index.size_in_entries() / graph_entries
                if graph_entries
                else 0.0,
                "index_time_s": build_seconds,
            }
        )
    return rows


def render_table2(names: list[str] | None = None) -> str:
    """Render Table 2 as text."""
    return format_table(
        table2_network_statistics(names),
        title="Table 2: network statistics (stand-in networks vs. paper originals)",
    )


def render_table3(names: list[str] | None = None) -> str:
    """Render Table 3 as text."""
    return format_table(
        table3_index_statistics(names),
        title="Table 3: truss index size and construction time",
    )
