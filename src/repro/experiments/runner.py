"""Shared experiment machinery: run methods over query workloads and aggregate.

Each figure of the paper reports, for one network, one or more *panels*
(query time, FRE-avoidance percentage, density, F1, diameter, ...) as a
function of one swept parameter, averaged over a workload of query sets.
:func:`run_method_on_queries` executes one (method, workload) cell and
returns the aggregate; the figure drivers in :mod:`repro.experiments.figures`
assemble cells into the paper's panels.
"""

from __future__ import annotations

import dataclasses
import statistics
import time
from collections.abc import Callable, Hashable, Sequence
from typing import Any

from repro.baselines.mdc import MinimumDegreeCommunity
from repro.baselines.qdc import QueryBiasedDensestCommunity
from repro.baselines.truss_only import TrussOnly
from repro.ctc.basic import BasicCTC
from repro.ctc.bulk_delete import BulkDeleteCTC
from repro.ctc.local import LocalCTC
from repro.ctc.result import CommunityResult
from repro.exceptions import NoCommunityFoundError, QueryError, ReproError
from repro.experiments.config import ExperimentConfig
from repro.graph.simple_graph import UndirectedGraph
from repro.metrics.quality import f1_score
from repro.metrics.structure import percentage_retained
from repro.trusses.index import TrussIndex

__all__ = [
    "MethodRun",
    "make_searcher",
    "run_method_on_queries",
    "aggregate_percentage_and_density",
    "score_against_ground_truth",
    "mean_or_nan",
]


def mean_or_nan(values: Sequence[float]) -> float:
    """Mean of the finite entries of ``values``, or NaN when none are finite."""
    finite = [value for value in values if value == value and value != float("inf")]
    return statistics.fmean(finite) if finite else float("nan")


@dataclasses.dataclass
class MethodRun:
    """Aggregated outcome of one method over one query workload.

    ``results`` is aligned with the input query list: entry *i* is the
    :class:`CommunityResult` for query *i*, or ``None`` if that query failed
    (no community exists / query invalid on this graph), so pairwise
    comparisons between methods stay query-aligned.
    """

    method: str
    results: list[CommunityResult | None]

    # ------------------------------------------------------------------
    @property
    def successful(self) -> list[CommunityResult]:
        """The results of the queries that produced a community."""
        return [result for result in self.results if result is not None]

    @property
    def failures(self) -> int:
        """Number of queries for which no community was found."""
        return sum(1 for result in self.results if result is None)

    @property
    def mean_elapsed(self) -> float:
        """Mean wall-clock seconds per successful query."""
        return mean_or_nan([result.elapsed_seconds for result in self.successful])

    @property
    def mean_nodes(self) -> float:
        """Mean community size in nodes."""
        return mean_or_nan([result.num_nodes for result in self.successful])

    @property
    def mean_edges(self) -> float:
        """Mean community size in edges."""
        return mean_or_nan([result.num_edges for result in self.successful])

    @property
    def mean_density(self) -> float:
        """Mean community edge density."""
        return mean_or_nan([result.density() for result in self.successful])

    @property
    def mean_trussness(self) -> float:
        """Mean community trussness."""
        return mean_or_nan([result.trussness for result in self.successful])

    def as_row(self) -> dict[str, Any]:
        """Flatten to a reporting row."""
        return {
            "method": self.method,
            "queries": len(self.results),
            "failures": self.failures,
            "time_s": self.mean_elapsed,
            "nodes": self.mean_nodes,
            "edges": self.mean_edges,
            "density": self.mean_density,
            "trussness": self.mean_trussness,
        }


def make_searcher(
    method: str,
    graph: UndirectedGraph,
    index: TrussIndex,
    config: ExperimentConfig,
    eta: int | None = None,
    gamma: float | None = None,
    max_trussness_k: int | None = None,
) -> Callable[[Sequence[Hashable]], CommunityResult]:
    """Return a ``query -> CommunityResult`` callable for the named method."""
    if method == "basic":
        return BasicCTC(index, time_budget_seconds=config.time_budget_seconds).search
    if method == "bulk-delete":
        return BulkDeleteCTC(index, time_budget_seconds=config.time_budget_seconds).search
    if method == "lctc":
        searcher = LocalCTC(
            index,
            eta=eta if eta is not None else config.lctc_eta,
            gamma=gamma if gamma is not None else config.lctc_gamma,
            max_trussness_k=max_trussness_k,
        )
        return searcher.search
    if method == "truss":
        return TrussOnly(index).search
    if method == "mdc":
        return MinimumDegreeCommunity(graph).search
    if method == "qdc":
        return QueryBiasedDensestCommunity(graph).search
    raise ReproError(f"unknown method {method!r}")


def run_method_on_queries(
    method: str,
    graph: UndirectedGraph,
    index: TrussIndex,
    queries: Sequence[Sequence[Hashable]],
    config: ExperimentConfig,
    **method_kwargs: Any,
) -> MethodRun:
    """Run one method on every query set and collect query-aligned results.

    Query sets for which no community exists (or that are invalid on this
    graph) yield ``None`` entries rather than aborting the sweep — the paper
    similarly averages over successful queries only.
    """
    searcher = make_searcher(method, graph, index, config, **method_kwargs)
    results: list[CommunityResult | None] = []
    for query in queries:
        started = time.perf_counter()
        try:
            result = searcher(list(query))
        except (NoCommunityFoundError, QueryError):
            results.append(None)
            continue
        if result.elapsed_seconds == 0.0:
            result.elapsed_seconds = time.perf_counter() - started
        results.append(result)
    return MethodRun(method=method, results=results)


def aggregate_percentage_and_density(run: MethodRun, reference: MethodRun) -> dict[str, float]:
    """Pair a method run with the Truss reference run (Figures 5-10 panels b/c).

    Entry *i* of both runs corresponds to the same query set, so the
    FRE-avoidance percentage is averaged pairwise over queries where both
    methods produced a community.
    """
    percentages = []
    for result, reference_result in zip(run.results, reference.results):
        if result is None or reference_result is None:
            continue
        percentages.append(percentage_retained(result.graph, reference_result.graph))
    return {
        "percentage": mean_or_nan(percentages),
        "density": run.mean_density,
        "time_s": run.mean_elapsed,
    }


def score_against_ground_truth(run: MethodRun, truths: Sequence[set[Hashable]]) -> float:
    """Return the mean F1 of a run against per-query ground-truth communities."""
    scores = []
    for result, truth in zip(run.results, truths):
        if result is None:
            scores.append(0.0)
        else:
            scores.append(f1_score(result.nodes, truth))
    return mean_or_nan(scores)
