"""Per-figure experiment drivers (Figures 5-16 of the paper).

Every function returns a list of flat row dictionaries — one row per
(swept-parameter value, method) — that the benchmarks print with
:func:`repro.experiments.reporting.format_table`.  The row schema mirrors the
panels of the corresponding figure: query time, FRE-avoidance percentage and
density for the efficiency figures; F1 / time / size for the ground-truth
figure; diameter and trussness for the approximation figures.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.datasets.collaboration import CASE_STUDY_QUERY, build_collaboration_network
from repro.datasets.queries import QueryWorkloadGenerator, ground_truth_query_sets
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentConfig, QUICK_CONFIG
from repro.experiments.runner import (
    MethodRun,
    aggregate_percentage_and_density,
    mean_or_nan,
    run_method_on_queries,
    score_against_ground_truth,
)
from repro.metrics.approximation import diameter_bounds
from repro.metrics.structure import community_statistics
from repro.trusses.index import TrussIndex

__all__ = [
    "vary_query_size",
    "vary_degree_rank",
    "vary_inter_distance",
    "case_study",
    "ground_truth_quality",
    "approximation_quality",
    "vary_trussness_k",
    "vary_eta",
    "vary_gamma",
]

#: Default method set of the efficiency figures (Figures 5-10).  ``basic`` is
#: included for the small facebook-like network only, mirroring the paper
#: where Basic fails to finish on DBLP within the time limit.
DEFAULT_EFFICIENCY_METHODS = ("bulk-delete", "lctc")


# ----------------------------------------------------------------------
# Figures 5-6: varying the query size |Q|
# ----------------------------------------------------------------------
def vary_query_size(
    dataset_name: str,
    config: ExperimentConfig = QUICK_CONFIG,
    methods: Sequence[str] = DEFAULT_EFFICIENCY_METHODS,
) -> list[dict[str, Any]]:
    """Reproduce Figure 5 (DBLP) / Figure 6 (Facebook): sweep |Q|.

    For every query size, random query sets are generated and each method is
    compared against the ``Truss`` reference on query time, the percentage of
    ``G0`` nodes kept, and the community edge density.
    """
    network = load_dataset(dataset_name)
    index = TrussIndex(network.graph)
    rows: list[dict[str, Any]] = []
    for query_size in config.query_sizes:
        generator = QueryWorkloadGenerator(network.graph, seed=config.seed + query_size)
        queries = generator.random_queries(query_size, config.queries_per_point)
        reference = run_method_on_queries("truss", network.graph, index, queries, config)
        for method in methods:
            run = run_method_on_queries(method, network.graph, index, queries, config)
            panel = aggregate_percentage_and_density(run, reference)
            rows.append(
                {
                    "dataset": dataset_name,
                    "query_size": query_size,
                    "method": method,
                    "time_s": panel["time_s"],
                    "percentage": panel["percentage"],
                    "density": panel["density"],
                    "failures": run.failures,
                }
            )
        rows.append(
            {
                "dataset": dataset_name,
                "query_size": query_size,
                "method": "truss",
                "time_s": reference.mean_elapsed,
                "percentage": 100.0,
                "density": reference.mean_density,
                "failures": reference.failures,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figures 7-8: varying the degree rank of the query nodes
# ----------------------------------------------------------------------
def vary_degree_rank(
    dataset_name: str,
    config: ExperimentConfig = QUICK_CONFIG,
    methods: Sequence[str] = DEFAULT_EFFICIENCY_METHODS,
) -> list[dict[str, Any]]:
    """Reproduce Figure 7 (DBLP) / Figure 8 (Facebook): sweep the degree-rank bucket."""
    network = load_dataset(dataset_name)
    index = TrussIndex(network.graph)
    rows: list[dict[str, Any]] = []
    for rank in config.degree_ranks:
        generator = QueryWorkloadGenerator(network.graph, seed=config.seed + rank)
        queries = generator.degree_rank_queries(
            rank, config.default_query_size, config.queries_per_point
        )
        reference = run_method_on_queries("truss", network.graph, index, queries, config)
        for method in methods:
            run = run_method_on_queries(method, network.graph, index, queries, config)
            panel = aggregate_percentage_and_density(run, reference)
            rows.append(
                {
                    "dataset": dataset_name,
                    "degree_rank": rank,
                    "method": method,
                    "time_s": panel["time_s"],
                    "percentage": panel["percentage"],
                    "density": panel["density"],
                    "failures": run.failures,
                }
            )
        rows.append(
            {
                "dataset": dataset_name,
                "degree_rank": rank,
                "method": "truss",
                "time_s": reference.mean_elapsed,
                "percentage": 100.0,
                "density": reference.mean_density,
                "failures": reference.failures,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figures 9-10: varying the inter-distance of the query nodes
# ----------------------------------------------------------------------
def vary_inter_distance(
    dataset_name: str,
    config: ExperimentConfig = QUICK_CONFIG,
    methods: Sequence[str] = DEFAULT_EFFICIENCY_METHODS,
) -> list[dict[str, Any]]:
    """Reproduce Figure 9 (DBLP) / Figure 10 (Facebook): sweep the inter-distance l."""
    network = load_dataset(dataset_name)
    index = TrussIndex(network.graph)
    rows: list[dict[str, Any]] = []
    for inter_distance in config.inter_distances:
        generator = QueryWorkloadGenerator(network.graph, seed=config.seed + inter_distance)
        queries = generator.inter_distance_queries(
            inter_distance, config.default_query_size, config.queries_per_point
        )
        if not queries:
            continue
        reference = run_method_on_queries("truss", network.graph, index, queries, config)
        for method in methods:
            run = run_method_on_queries(method, network.graph, index, queries, config)
            panel = aggregate_percentage_and_density(run, reference)
            rows.append(
                {
                    "dataset": dataset_name,
                    "inter_distance": inter_distance,
                    "method": method,
                    "time_s": panel["time_s"],
                    "percentage": panel["percentage"],
                    "density": panel["density"],
                    "failures": run.failures,
                }
            )
        rows.append(
            {
                "dataset": dataset_name,
                "inter_distance": inter_distance,
                "method": "truss",
                "time_s": reference.mean_elapsed,
                "percentage": 100.0,
                "density": reference.mean_density,
                "failures": reference.failures,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 11: the DBLP case study
# ----------------------------------------------------------------------
def case_study(config: ExperimentConfig = QUICK_CONFIG) -> list[dict[str, Any]]:
    """Reproduce Figure 11: the collaboration-network case study.

    Returns two rows — the raw maximal connected k-truss ``G0`` (Figure
    11(a)) and the LCTC community (Figure 11(b)) — with node/edge counts,
    density, diameter and trussness, so the "73 authors, density 0.18,
    diameter 4" versus "14 authors, density 0.89, diameter 2" contrast of the
    paper can be compared against the stand-in network.
    """
    network = build_collaboration_network()
    index = TrussIndex(network.graph)
    query = list(CASE_STUDY_QUERY)

    truss_run = run_method_on_queries("truss", network.graph, index, [query], config)
    lctc_run = run_method_on_queries(
        "lctc", network.graph, index, [query], config, eta=config.lctc_eta
    )

    rows: list[dict[str, Any]] = []
    for label, run in (("truss-G0", truss_run), ("lctc", lctc_run)):
        result = run.results[0]
        if result is None:
            rows.append({"community": label, "found": False})
            continue
        stats = community_statistics(result.graph, query)
        rows.append(
            {
                "community": label,
                "found": True,
                "nodes": stats["nodes"],
                "edges": stats["edges"],
                "density": stats["density"],
                "diameter": stats["diameter"],
                "trussness": result.trussness,
                "contains_all_query_authors": result.contains_query(),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 12: quality against ground-truth communities
# ----------------------------------------------------------------------
def ground_truth_quality(
    dataset_names: Sequence[str] = ("amazon-like", "dblp-like", "youtube-like", "lj-like", "orkut-like"),
    config: ExperimentConfig = QUICK_CONFIG,
    methods: Sequence[str] = ("mdc", "qdc", "truss", "lctc"),
) -> list[dict[str, Any]]:
    """Reproduce Figure 12: F1 (a), query time (b) and community size (c).

    Query sets are drawn from single ground-truth communities (the paper's
    protocol); every method is scored by F1 against the community its query
    was drawn from, and the community sizes of ``truss`` versus ``lctc`` give
    the panel-(c) reduction.
    """
    rows: list[dict[str, Any]] = []
    for dataset_name in dataset_names:
        network = load_dataset(dataset_name)
        index = TrussIndex(network.graph)
        pairs = ground_truth_query_sets(
            network, config.ground_truth_queries, size_range=(1, 8), seed=config.seed
        )
        queries = [query for query, _truth in pairs]
        truths = [truth for _query, truth in pairs]
        for method in methods:
            run = run_method_on_queries(method, network.graph, index, queries, config)
            rows.append(
                {
                    "dataset": dataset_name,
                    "method": method,
                    "f1": score_against_ground_truth(run, truths),
                    "time_s": run.mean_elapsed,
                    "nodes": run.mean_nodes,
                    "edges": run.mean_edges,
                    "failures": run.failures,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 13: diameter / trussness approximation versus the inter-distance
# ----------------------------------------------------------------------
def approximation_quality(
    dataset_name: str = "facebook-like",
    config: ExperimentConfig = QUICK_CONFIG,
    methods: Sequence[str] = ("basic", "bulk-delete", "lctc"),
) -> list[dict[str, Any]]:
    """Reproduce Figure 13: community diameter and trussness with LB/UB-OPT curves.

    The Basic run provides the lower bound (its optimal query distance,
    Lemma 5) and the upper bound (twice that, Lemma 2); the diameters of the
    other methods are reported against those bounds.
    """
    network = load_dataset(dataset_name)
    index = TrussIndex(network.graph)
    rows: list[dict[str, Any]] = []
    for inter_distance in config.inter_distances:
        generator = QueryWorkloadGenerator(network.graph, seed=config.seed + inter_distance)
        queries = generator.inter_distance_queries(
            inter_distance, config.default_query_size, config.queries_per_point
        )
        if not queries:
            continue
        runs: dict[str, MethodRun] = {
            method: run_method_on_queries(method, network.graph, index, queries, config)
            for method in methods
        }
        reference = runs.get("basic") or next(iter(runs.values()))
        lower_bounds = []
        upper_bounds = []
        for result in reference.results:
            if result is None:
                continue
            lower, upper = diameter_bounds(result)
            lower_bounds.append(lower)
            upper_bounds.append(upper)
        for method, run in runs.items():
            rows.append(
                {
                    "dataset": dataset_name,
                    "inter_distance": inter_distance,
                    "method": method,
                    "diameter": mean_or_nan(
                        [result.diameter() for result in run.successful]
                    ),
                    "trussness": run.mean_trussness,
                    "failures": run.failures,
                }
            )
        rows.append(
            {
                "dataset": dataset_name,
                "inter_distance": inter_distance,
                "method": "lb-opt",
                "diameter": mean_or_nan(lower_bounds),
                "trussness": reference.mean_trussness,
                "failures": 0,
            }
        )
        rows.append(
            {
                "dataset": dataset_name,
                "inter_distance": inter_distance,
                "method": "ub-opt",
                "diameter": mean_or_nan(upper_bounds),
                "trussness": reference.mean_trussness,
                "failures": 0,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 14: diameter versus the maximum-trussness constraint k
# ----------------------------------------------------------------------
def vary_trussness_k(
    dataset_name: str = "facebook-like",
    config: ExperimentConfig = QUICK_CONFIG,
) -> list[dict[str, Any]]:
    """Reproduce Figure 14: LCTC with a capped trussness k versus the lower bound.

    Queries are drawn from inside single ground-truth communities (as in the
    paper's quality experiments) so that the uncapped maximum trussness is
    non-trivial and the sweep over k is meaningful.
    """
    network = load_dataset(dataset_name)
    index = TrussIndex(network.graph)
    pairs = ground_truth_query_sets(
        network,
        config.queries_per_point,
        size_range=(config.default_query_size, config.default_query_size),
        seed=config.seed,
    )
    queries = [query for query, _truth in pairs]
    reference = run_method_on_queries("basic", network.graph, index, queries, config)
    lower_bounds = [
        diameter_bounds(result)[0] for result in reference.results if result is not None
    ]
    rows: list[dict[str, Any]] = []
    for level in config.trussness_levels:
        run = run_method_on_queries(
            "lctc", network.graph, index, queries, config, max_trussness_k=level
        )
        rows.append(
            {
                "dataset": dataset_name,
                "max_k": "max" if level is None else level,
                "method": "lctc",
                "diameter": mean_or_nan([result.diameter() for result in run.successful]),
                "trussness": run.mean_trussness,
                "lb_opt": mean_or_nan(lower_bounds),
                "failures": run.failures,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figures 15-16: LCTC parameter sensitivity (eta and gamma)
# ----------------------------------------------------------------------
def _lctc_sensitivity(
    dataset_name: str,
    config: ExperimentConfig,
    parameter_name: str,
    values: Sequence[Any],
) -> list[dict[str, Any]]:
    network = load_dataset(dataset_name)
    index = TrussIndex(network.graph)
    pairs = ground_truth_query_sets(
        network, config.ground_truth_queries, size_range=(2, 4), seed=config.seed
    )
    queries = [query for query, _truth in pairs]
    truths = [truth for _query, truth in pairs]
    rows: list[dict[str, Any]] = []
    for value in values:
        kwargs = {parameter_name: value}
        run = run_method_on_queries("lctc", network.graph, index, queries, config, **kwargs)
        rows.append(
            {
                "dataset": dataset_name,
                parameter_name: value,
                "nodes": run.mean_nodes,
                "f1": score_against_ground_truth(run, truths),
                "time_s": run.mean_elapsed,
                "failures": run.failures,
            }
        )
    return rows


def vary_eta(
    dataset_name: str = "dblp-like", config: ExperimentConfig = QUICK_CONFIG
) -> list[dict[str, Any]]:
    """Reproduce Figure 15: LCTC community size, F1 and time as eta varies."""
    return _lctc_sensitivity(dataset_name, config, "eta", list(config.eta_values))


def vary_gamma(
    dataset_name: str = "dblp-like", config: ExperimentConfig = QUICK_CONFIG
) -> list[dict[str, Any]]:
    """Reproduce Figure 16: LCTC community size, F1 and time as gamma varies."""
    return _lctc_sensitivity(dataset_name, config, "gamma", list(config.gamma_values))
