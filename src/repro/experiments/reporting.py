"""Plain-text reporting of experiment results.

The benchmark harness prints the same rows/series the paper's tables and
figures show; this module owns the formatting so tables look consistent
whether they come from the CLI, the examples or the pytest benchmarks.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

__all__ = ["format_table", "format_series", "format_float", "render_report"]


def format_float(value: Any, precision: int = 3) -> str:
    """Format a numeric cell: floats rounded, infinities as ``inf``, rest via str()."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [format_float(row.get(column, ""), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[index]) for rendered in rendered_rows))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(rendered[index].ljust(widths[index]) for index in range(len(columns)))
        for rendered in rendered_rows
    ]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, separator, *body])
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[Any]], x_label: str, x_values: Sequence[Any], title: str | None = None
) -> str:
    """Render named series over a shared x-axis (one figure panel) as a table."""
    rows = []
    for position, x_value in enumerate(x_values):
        row: dict[str, Any] = {x_label: x_value}
        for name, values in series.items():
            row[name] = values[position] if position < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)


def render_report(sections: Sequence[tuple[str, str]]) -> str:
    """Join titled report sections with blank lines."""
    parts = []
    for heading, body in sections:
        parts.append(f"== {heading} ==")
        parts.append(body)
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
