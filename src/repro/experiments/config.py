"""Experiment configuration.

The paper runs 100 query sets per data point on networks with up to 117M
edges and a one-hour-per-query timeout.  The reproduction keeps the same
experimental *design* (which parameters are varied, which methods are
compared, what is measured) while scaling the per-point query count and the
dataset sizes so the whole suite runs on a laptop.  Every figure driver and
benchmark takes an :class:`ExperimentConfig`, so the scale can be turned back
up by anyone with more patience or hardware.
"""

from __future__ import annotations

import dataclasses

__all__ = ["ExperimentConfig", "QUICK_CONFIG", "FULL_CONFIG"]


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Scaling knobs shared by all experiment drivers.

    Attributes
    ----------
    queries_per_point:
        Number of query sets averaged per data point (paper: 100).
    default_query_size:
        |Q| used when the experiment does not vary it (paper: 3).
    query_sizes:
        The |Q| values swept by Figures 5-6 (paper: 1, 2, 4, 8, 16).
    degree_ranks:
        Degree-rank buckets swept by Figures 7-8 (paper: 20..100%).
    inter_distances:
        Inter-distance values swept by Figures 9-10 and 13 (paper: 1..5).
    eta_values / gamma_values:
        LCTC parameter sweeps of Figures 15-16 (eta scaled to the stand-in
        network sizes; the paper sweeps 100..2000 on million-node graphs).
    lctc_eta / lctc_gamma:
        Default LCTC parameters (paper: eta=1000, gamma=3).
    trussness_levels:
        The k values swept by Figure 14 ("max" is represented by ``None``).
    ground_truth_queries:
        Query-set count for the Figure 12 quality evaluation (paper: 1000).
    time_budget_seconds:
        Per-query wall-clock cap for the global methods (paper: 3600).
    seed:
        Workload RNG seed.
    """

    queries_per_point: int = 5
    default_query_size: int = 3
    query_sizes: tuple[int, ...] = (1, 2, 4, 8, 16)
    degree_ranks: tuple[int, ...] = (20, 40, 60, 80, 100)
    inter_distances: tuple[int, ...] = (1, 2, 3, 4, 5)
    eta_values: tuple[int, ...] = (25, 50, 100, 200, 400)
    gamma_values: tuple[float, ...] = (1.0, 3.0, 5.0, 7.0, 9.0)
    lctc_eta: int = 200
    lctc_gamma: float = 3.0
    trussness_levels: tuple[int | None, ...] = (2, 4, 6, 8, None)
    ground_truth_queries: int = 20
    time_budget_seconds: float = 30.0
    seed: int = 2015

    def scaled(self, factor: float) -> "ExperimentConfig":
        """Return a copy with the per-point query counts scaled by ``factor``."""
        return dataclasses.replace(
            self,
            queries_per_point=max(1, int(self.queries_per_point * factor)),
            ground_truth_queries=max(1, int(self.ground_truth_queries * factor)),
        )


#: Configuration used by the pytest benchmarks: fast enough for CI.
QUICK_CONFIG = ExperimentConfig(
    queries_per_point=3,
    ground_truth_queries=8,
    time_budget_seconds=15.0,
)

#: Closer to the paper's scale (still laptop-sized); used when running the
#: experiment drivers by hand.
FULL_CONFIG = ExperimentConfig(
    queries_per_point=20,
    ground_truth_queries=100,
    time_budget_seconds=120.0,
)
