"""The triangle-connected k-truss community model (Huang et al., SIGMOD 2014).

This is the community-search model the paper builds on and contrasts with in
its introduction (reference [17]): a *k-truss community* for a query node is
a maximal k-truss in which every pair of edges is connected through a chain
of triangles (each consecutive pair of edges shares a triangle).  Triangle
connectivity is strictly stronger than connectivity, which is why — as the
introduction points out with Q = {v4, q3, p1} on Figure 1 — the model can
fail to return *any* community for multi-node queries even though a perfectly
good connected k-truss exists.

The implementation exists so the repository can demonstrate that limitation
(and so downstream users can compare against the earlier model); it follows
the original definition, not the original index structures.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence

from repro.ctc.result import CommunityResult
from repro.exceptions import NoCommunityFoundError
from repro.graph.components import UnionFind
from repro.graph.keys import EdgeKey, edge_key
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import graph_query_distance
from repro.trusses.decomposition import k_truss_subgraph
from repro.trusses.extraction import validate_query
from repro.trusses.index import TrussIndex

__all__ = ["TriangleConnectedCommunity", "triangle_connected_classes"]


def triangle_connected_classes(truss: UndirectedGraph) -> list[set[EdgeKey]]:
    """Partition the edges of a k-truss into triangle-connected classes.

    Two edges are in the same class when they are linked by a chain of
    triangles of ``truss`` in which consecutive triangles share an edge.
    """
    union_find = UnionFind(edge_key(u, v) for u, v in truss.edges())
    for u, v in truss.edges():
        for w in truss.common_neighbors(u, v):
            union_find.union(edge_key(u, v), edge_key(u, w))
            union_find.union(edge_key(u, v), edge_key(v, w))
    return union_find.groups()


class TriangleConnectedCommunity:
    """Search for a triangle-connected k-truss community containing the query.

    For the largest feasible ``k`` (starting from the minimum vertex trussness
    of the query, as in Lemma 1), the maximal k-truss is partitioned into
    triangle-connected classes; a class qualifies if every query node has an
    incident edge in it.  If no class qualifies at any ``k >= 3`` the model
    has no answer for this query — the limitation the CTC paper motivates
    itself with.
    """

    method_name = "triangle-truss"

    def __init__(self, index: TrussIndex) -> None:
        self._index = index

    def search(self, query: Sequence[Hashable]) -> CommunityResult:
        """Return the triangle-connected community with the largest k, or raise.

        Raises
        ------
        NoCommunityFoundError
            If no triangle-connected k-truss (k >= 3) covers every query node.
        """
        start_time = time.perf_counter()
        graph = self._index.graph
        query_nodes = tuple(validate_query(graph, query))
        upper_bound = min(self._index.vertex_trussness(node) for node in query_nodes)
        trussness = self._index.all_edge_trussness()

        for k in range(upper_bound, 2, -1):
            truss = k_truss_subgraph(graph, k, trussness)
            if any(not truss.has_node(node) for node in query_nodes):
                continue
            for edge_class in triangle_connected_classes(truss):
                members: set[Hashable] = set()
                for u, v in edge_class:
                    members.add(u)
                    members.add(v)
                if all(node in members for node in query_nodes):
                    community = UndirectedGraph()
                    for u, v in edge_class:
                        community.add_edge(u, v)
                    return CommunityResult(
                        graph=community,
                        query=query_nodes,
                        trussness=k,
                        method=self.method_name,
                        query_distance=graph_query_distance(community, query_nodes),
                        elapsed_seconds=time.perf_counter() - start_time,
                    )
        raise NoCommunityFoundError(
            "no triangle-connected k-truss (k >= 3) contains all query nodes "
            f"{list(query_nodes)!r} — the limitation of the triangle-connected "
            "model that motivates the CTC formulation"
        )
