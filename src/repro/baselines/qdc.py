"""QDC baseline: query-biased densest connected subgraph (Wu et al., PVLDB 2015).

QDC shifts the densest-subgraph objective toward the query by weighting each
node with the reciprocal of its *proximity* to the query (computed by random
walk with restart), then maximising the query-biased edge density

    rho_Q(H) = |E(H)| / sum_{v in H} w(v),          w(v) = 1 / pi(v),

so that distant, low-proximity nodes are expensive to include.  The standard
peeling scheme for (weighted) densest subgraph applies: repeatedly remove the
vertex with the smallest degree-to-weight contribution and keep the best
intermediate subgraph; finally report the connected component containing the
query (Wu et al. note the unrestricted optimum can split the query across
components — the weakness Section 7.2 of the CTC paper points out).

This is a faithful re-implementation of the published objective, not a port
of the authors' code; it plays the same role in the Figure 12 quality
comparison.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence

from repro.ctc.result import CommunityResult
from repro.exceptions import NoCommunityFoundError
from repro.graph.components import connected_component_containing, nodes_are_connected
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import graph_query_distance, query_distances
from repro.trusses.extraction import validate_query

__all__ = ["QueryBiasedDensestCommunity", "qdc_search", "random_walk_proximity"]


def random_walk_proximity(
    graph: UndirectedGraph,
    query: Sequence[Hashable],
    restart_probability: float = 0.2,
    iterations: int = 30,
) -> dict[Hashable, float]:
    """Return random-walk-with-restart proximity of every node to the query.

    Power iteration of ``pi = c * r + (1 - c) * W^T pi`` where ``r`` is the
    uniform restart vector over the query nodes and ``W`` the row-normalised
    adjacency.  A small floor keeps weights finite for unreachable nodes.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    restart = {node: 0.0 for node in nodes}
    for node in query:
        restart[node] = 1.0 / len(query)
    proximity = dict(restart)
    for _ in range(iterations):
        nxt = {node: restart_probability * restart[node] for node in nodes}
        for node in nodes:
            mass = proximity[node]
            degree = graph.degree(node)
            if degree == 0 or mass == 0.0:
                continue
            share = (1.0 - restart_probability) * mass / degree
            for neighbor in graph.neighbors(node):
                nxt[neighbor] += share
        proximity = nxt
    floor = 1e-12
    return {node: max(value, floor) for node, value in proximity.items()}


class QueryBiasedDensestCommunity:
    """Greedy peeling for the query-biased densest connected subgraph.

    Parameters
    ----------
    graph:
        The full network.
    restart_probability:
        Restart probability of the proximity random walk.
    neighborhood_bound:
        To keep the peeling tractable on large graphs the search is confined
        to nodes within this hop distance of the query (the query-biased
        weights make farther nodes essentially never worth including anyway).
        ``None`` disables the restriction.
    """

    method_name = "qdc"

    def __init__(
        self,
        graph: UndirectedGraph,
        restart_probability: float = 0.2,
        neighborhood_bound: int | None = 3,
    ) -> None:
        self._graph = graph
        self._restart_probability = restart_probability
        self._neighborhood_bound = neighborhood_bound

    # ------------------------------------------------------------------
    def search(self, query: Sequence[Hashable]) -> CommunityResult:
        """Run the peeling and return the best query-biased-density community."""
        start_time = time.perf_counter()
        query_nodes = tuple(validate_query(self._graph, query))

        working = self._initial_subgraph(query_nodes)
        if not nodes_are_connected(working, query_nodes):
            raise NoCommunityFoundError(
                "query nodes are not connected within the QDC neighbourhood bound"
            )
        component = connected_component_containing(working, query_nodes[0])
        working = working.subgraph(component)

        proximity = random_walk_proximity(
            working, query_nodes, restart_probability=self._restart_probability
        )
        weights = {node: 1.0 / proximity[node] for node in working.nodes()}

        best_nodes = working.node_set()
        best_density = self._biased_density(working, weights)
        query_set = set(query_nodes)
        iterations = 0

        while nodes_are_connected(working, query_nodes):
            density = self._biased_density(working, weights)
            if density > best_density:
                best_density = density
                best_nodes = working.node_set()
            victim = self._cheapest_victim(working, weights, query_set)
            if victim is None:
                break
            working.remove_node(victim)
            iterations += 1

        best_graph = self._graph.subgraph(best_nodes)
        # Report the connected component containing the query (QDC's optimum
        # may be disconnected; CTC's critique hinges on exactly this).
        if query_nodes[0] in best_graph and nodes_are_connected(best_graph, query_nodes):
            component = connected_component_containing(best_graph, query_nodes[0])
            best_graph = best_graph.subgraph(component)

        elapsed = time.perf_counter() - start_time
        return CommunityResult(
            graph=best_graph,
            query=query_nodes,
            trussness=2,
            method=self.method_name,
            query_distance=graph_query_distance(best_graph, query_nodes)
            if all(best_graph.has_node(node) for node in query_nodes)
            else float("inf"),
            elapsed_seconds=elapsed,
            iterations=iterations,
            extras={"query_biased_density": best_density},
        )

    # ------------------------------------------------------------------
    def _initial_subgraph(self, query_nodes: Sequence[Hashable]) -> UndirectedGraph:
        if self._neighborhood_bound is None:
            return self._graph.copy()
        distances = query_distances(self._graph, query_nodes)
        keep = [
            node
            for node, distance in distances.items()
            if distance <= self._neighborhood_bound
        ]
        return self._graph.subgraph(keep)

    @staticmethod
    def _biased_density(graph: UndirectedGraph, weights: dict[Hashable, float]) -> float:
        total_weight = sum(weights[node] for node in graph.nodes())
        if total_weight <= 0:
            return 0.0
        return graph.number_of_edges() / total_weight

    @staticmethod
    def _cheapest_victim(
        graph: UndirectedGraph, weights: dict[Hashable, float], query_set: set[Hashable]
    ) -> Hashable | None:
        """Return the non-query vertex with the smallest degree-per-weight contribution."""
        best_node: Hashable | None = None
        best_key: tuple[float, str] | None = None
        for node in graph.nodes():
            if node in query_set:
                continue
            weight = weights.get(node, 1.0)
            key = (graph.degree(node) / weight if weight else float("inf"), repr(node))
            if best_key is None or key < best_key:
                best_key = key
                best_node = node
        return best_node


def qdc_search(
    graph: UndirectedGraph,
    query: Sequence[Hashable],
    restart_probability: float = 0.2,
    neighborhood_bound: int | None = 3,
) -> CommunityResult:
    """Convenience wrapper around :class:`QueryBiasedDensestCommunity`."""
    searcher = QueryBiasedDensestCommunity(
        graph,
        restart_probability=restart_probability,
        neighborhood_bound=neighborhood_bound,
    )
    return searcher.search(query)
