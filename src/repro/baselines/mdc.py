"""MDC baseline: minimum-degree community search (Sozio & Gionis, KDD 2010).

The "Cocktail Party" model finds a connected subgraph containing the query
nodes that maximises the *minimum degree*, optionally subject to a distance
constraint (every node within a hop bound of the query) and a size
constraint.  The classic greedy algorithm peels the minimum-degree
non-query vertex while the query stays connected and returns the best
intermediate graph.

The paper (Section 6, Exp-3) compares CTC/LCTC against MDC "with the
distance and size constraints", attributing MDC's lower F1 to those fixed
constraints; this implementation exposes both knobs so the Figure 12
comparison can be reproduced.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence

from repro.ctc.result import CommunityResult
from repro.exceptions import NoCommunityFoundError
from repro.graph.components import connected_component_containing, nodes_are_connected
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import graph_query_distance, query_distances
from repro.trusses.extraction import validate_query

__all__ = ["MinimumDegreeCommunity", "mdc_search"]


class MinimumDegreeCommunity:
    """Greedy minimum-degree community search with distance/size constraints.

    Parameters
    ----------
    graph:
        The full network.
    distance_bound:
        Keep only nodes whose query distance is at most this bound before
        peeling (the paper's MDC uses a fixed distance constraint).  ``None``
        disables the restriction.
    size_bound:
        Upper bound on the number of nodes of the returned community;
        intermediate graphs larger than the bound are not eligible answers.
        ``None`` disables the restriction.
    """

    method_name = "mdc"

    def __init__(
        self,
        graph: UndirectedGraph,
        distance_bound: int | None = 2,
        size_bound: int | None = 200,
    ) -> None:
        self._graph = graph
        self._distance_bound = distance_bound
        self._size_bound = size_bound

    # ------------------------------------------------------------------
    def search(self, query: Sequence[Hashable]) -> CommunityResult:
        """Run the greedy peeling and return the best minimum-degree community."""
        start_time = time.perf_counter()
        query_nodes = tuple(validate_query(self._graph, query))

        working = self._initial_subgraph(query_nodes)
        if not nodes_are_connected(working, query_nodes):
            raise NoCommunityFoundError(
                "query nodes are not connected within the MDC distance bound"
            )
        # Restrict to the component containing the query.
        component = connected_component_containing(working, query_nodes[0])
        working = working.subgraph(component)

        best_graph = working.copy()
        best_min_degree = -1
        query_set = set(query_nodes)
        iterations = 0

        while nodes_are_connected(working, query_nodes):
            current_min_degree = min(
                (working.degree(node) for node in working.nodes()), default=0
            )
            eligible_size = (
                self._size_bound is None or working.number_of_nodes() <= self._size_bound
            )
            if eligible_size and current_min_degree > best_min_degree:
                best_min_degree = current_min_degree
                best_graph = working.copy()
            victim = self._minimum_degree_victim(working, query_set)
            if victim is None:
                break
            working.remove_node(victim)
            # Keep only the component still containing the query (removing a
            # cut vertex can strand irrelevant fragments).
            if query_nodes[0] in working and nodes_are_connected(working, query_nodes):
                component = connected_component_containing(working, query_nodes[0])
                if len(component) < working.number_of_nodes():
                    working = working.subgraph(component)
            iterations += 1

        elapsed = time.perf_counter() - start_time
        return CommunityResult(
            graph=best_graph,
            query=query_nodes,
            trussness=2,
            method=self.method_name,
            query_distance=graph_query_distance(best_graph, query_nodes),
            elapsed_seconds=elapsed,
            iterations=iterations,
            extras={"min_degree": best_min_degree},
        )

    # ------------------------------------------------------------------
    def _initial_subgraph(self, query_nodes: Sequence[Hashable]) -> UndirectedGraph:
        """Apply the distance constraint around the query."""
        if self._distance_bound is None:
            return self._graph.copy()
        distances = query_distances(self._graph, query_nodes)
        keep = [
            node for node, distance in distances.items() if distance <= self._distance_bound
        ]
        return self._graph.subgraph(keep)

    @staticmethod
    def _minimum_degree_victim(
        graph: UndirectedGraph, query_set: set[Hashable]
    ) -> Hashable | None:
        """Return the minimum-degree vertex that is not a query node (deterministic ties)."""
        best_node: Hashable | None = None
        best_key: tuple[int, str] | None = None
        for node in graph.nodes():
            if node in query_set:
                continue
            key = (graph.degree(node), repr(node))
            if best_key is None or key < best_key:
                best_key = key
                best_node = node
        return best_node


def mdc_search(
    graph: UndirectedGraph,
    query: Sequence[Hashable],
    distance_bound: int | None = 2,
    size_bound: int | None = 200,
) -> CommunityResult:
    """Convenience wrapper around :class:`MinimumDegreeCommunity`."""
    searcher = MinimumDegreeCommunity(
        graph, distance_bound=distance_bound, size_bound=size_bound
    )
    return searcher.search(query)
