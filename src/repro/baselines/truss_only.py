"""The ``Truss`` baseline: return ``G0`` with no free-rider removal.

The paper uses this baseline (Algorithm 2 alone) as the reference point for
the free-rider analysis: Figures 5-10 report the percentage of ``G0`` nodes
each CTC method keeps, and Figure 12(c) reports the raw node/edge counts of
``Truss`` versus ``LCTC`` communities.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence

from repro.ctc.kernels import split_dispatch
from repro.ctc.kernels import truss_search as _kernel_truss_search
from repro.ctc.result import CommunityResult
from repro.graph.traversal import graph_query_distance
from repro.trusses.extraction import find_maximal_connected_truss
from repro.trusses.index import TrussIndex

__all__ = ["TrussOnly", "truss_only_search"]


class TrussOnly:
    """Return the maximal connected k-truss ``G0`` containing the query.

    Accepts a :class:`TrussIndex` (dict path) or an
    :class:`~repro.engine.EngineSnapshot` (CSR-native FindG0 kernel).
    """

    method_name = "truss"

    def __init__(self, index: TrussIndex) -> None:
        self._kernel, self._index = split_dispatch(index)

    def search(self, query: Sequence[Hashable]) -> CommunityResult:
        """Run FindG0 and wrap the result."""
        if self._kernel is not None:
            return _kernel_truss_search(self._kernel, query)
        start_time = time.perf_counter()
        community, k = find_maximal_connected_truss(self._index, query)
        query_nodes = tuple(dict.fromkeys(query))
        elapsed = time.perf_counter() - start_time
        return CommunityResult(
            graph=community,
            query=query_nodes,
            trussness=k,
            method=self.method_name,
            query_distance=graph_query_distance(community, query_nodes),
            elapsed_seconds=elapsed,
            iterations=0,
        )


def truss_only_search(graph, query: Sequence[Hashable], index: TrussIndex | None = None) -> CommunityResult:
    """Convenience wrapper building the index if needed."""
    if index is None:
        index = TrussIndex(graph)
    return TrussOnly(index).search(query)
