"""Baselines the paper compares against: Truss (G0 only), MDC and QDC."""

from repro.baselines.mdc import MinimumDegreeCommunity, mdc_search
from repro.baselines.triangle_connected import (
    TriangleConnectedCommunity,
    triangle_connected_classes,
)
from repro.baselines.qdc import QueryBiasedDensestCommunity, qdc_search, random_walk_proximity
from repro.baselines.truss_only import TrussOnly, truss_only_search

__all__ = [
    "TrussOnly",
    "truss_only_search",
    "MinimumDegreeCommunity",
    "TriangleConnectedCommunity",
    "triangle_connected_classes",
    "mdc_search",
    "QueryBiasedDensestCommunity",
    "qdc_search",
    "random_walk_proximity",
]
