"""Approximation-quality bookkeeping (Lemma 2 bounds, Figures 13-14).

The optimal CTC diameter is NP-hard to compute, so the paper brackets it:

* **LB-OPT**: the smallest graph query distance ``dist(R, Q)`` over the
  communities found by ``Basic`` is a lower bound on the optimal diameter
  (Lemma 2, first inequality, combined with Lemma 5's optimality of the
  query distance).
* **UB-OPT**: ``2 * dist(R, Q)`` upper-bounds the diameter of ``R`` itself
  (Lemma 2, second inequality) and hence upper-bounds what the optimum could
  force us to accept.

Figure 13(a) plots the diameters of Basic/BD/LCTC against these two curves;
Figure 14 repeats the exercise while capping the trussness.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.ctc.result import CommunityResult

__all__ = [
    "diameter_bounds",
    "approximation_ratio",
    "summarize_diameter_experiment",
]


def diameter_bounds(reference: CommunityResult) -> tuple[float, float]:
    """Return ``(LB-OPT, UB-OPT)`` derived from a reference (Basic) result."""
    query_distance = reference.query_distance
    if query_distance in (0.0, float("inf")):
        query_distance = reference.recompute_query_distance()
    return query_distance, 2.0 * query_distance


def approximation_ratio(result: CommunityResult, lower_bound: float) -> float:
    """Return ``diam(result) / LB-OPT`` (1.0 when the lower bound is 0)."""
    if lower_bound <= 0:
        return 1.0
    return result.diameter() / lower_bound


def summarize_diameter_experiment(
    results: Sequence[CommunityResult], reference: CommunityResult
) -> dict[str, dict[str, float]]:
    """Return per-method diameter, trussness and approximation ratio rows.

    ``reference`` is the Basic run used to derive LB-OPT / UB-OPT; the rows
    are keyed by each result's ``method`` label, plus ``"lb-opt"`` and
    ``"ub-opt"`` pseudo-rows so the harness prints the same five curves the
    paper's Figure 13(a) shows.
    """
    lower, upper = diameter_bounds(reference)
    rows: dict[str, dict[str, float]] = {
        "lb-opt": {"diameter": lower, "trussness": reference.trussness, "ratio": 1.0},
        "ub-opt": {
            "diameter": upper,
            "trussness": reference.trussness,
            "ratio": upper / lower if lower else 1.0,
        },
    }
    for result in results:
        rows[result.method] = {
            "diameter": result.diameter(),
            "trussness": result.trussness,
            "ratio": approximation_ratio(result, lower),
        }
    return rows
