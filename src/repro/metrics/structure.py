"""Structural metrics of a found community.

These are the quantities the paper's figures report alongside runtime:

* edge density (Figures 5-10c),
* the FRE-avoidance percentage ``|V(R)| / |V(G0)|`` (Figures 5-10b),
* diameter and trussness (Figures 13-14),
* node/edge reduction relative to the Truss baseline (Figure 12c).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.ctc.result import CommunityResult
from repro.graph.csr import CSRGraph
from repro.graph.csr_bfs import masked_query_distances
from repro.graph.properties import edge_density
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import DIAMETER_CSR_THRESHOLD, diameter, graph_query_distance
from repro.trusses.decomposition import graph_trussness

__all__ = [
    "community_statistics",
    "reduction_ratio",
    "percentage_retained",
    "compare_to_reference",
]


def community_statistics(
    graph: UndirectedGraph, query: Sequence[Hashable] | None = None
) -> dict[str, float]:
    """Return the headline structural statistics of a community subgraph.

    Communities big enough to amortize it are frozen into CSR form *once*
    and both BFS-quadratic statistics — the diameter sweep and the query
    distance — run on the masked frontier BFS instead of per-node Python
    BFS (the values are identical; the experiment harness calls this per
    community per figure, which used to dominate engine-result reporting).
    """
    csr = (
        CSRGraph.from_graph(graph)
        if graph.number_of_nodes() >= DIAMETER_CSR_THRESHOLD
        else None
    )
    stats: dict[str, float] = {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "density": edge_density(graph),
        "diameter": diameter(csr if csr is not None else graph),
        "trussness": graph_trussness(graph),
    }
    if query is not None:
        if csr is not None:
            query_ids = [csr.node_id(label) for label in dict.fromkeys(query)]
            maxima = masked_query_distances(csr, query_ids)
            stats["query_distance"] = float(maxima.max()) if query_ids else 0.0
        else:
            stats["query_distance"] = graph_query_distance(graph, query)
    return stats


def percentage_retained(community: UndirectedGraph, reference: UndirectedGraph) -> float:
    """Return ``100 * |V(community)| / |V(reference)|`` (the paper's "percentage")."""
    if reference.number_of_nodes() == 0:
        return 100.0
    return 100.0 * community.number_of_nodes() / reference.number_of_nodes()


def reduction_ratio(community: UndirectedGraph, reference: UndirectedGraph) -> dict[str, float]:
    """Return node and edge counts of both graphs plus retention ratios (Figure 12c)."""
    ref_nodes = reference.number_of_nodes()
    ref_edges = reference.number_of_edges()
    return {
        "reference_nodes": ref_nodes,
        "reference_edges": ref_edges,
        "community_nodes": community.number_of_nodes(),
        "community_edges": community.number_of_edges(),
        "node_retention": community.number_of_nodes() / ref_nodes if ref_nodes else 1.0,
        "edge_retention": community.number_of_edges() / ref_edges if ref_edges else 1.0,
    }


def compare_to_reference(
    result: CommunityResult, reference: CommunityResult
) -> dict[str, float]:
    """Compare a method's result against the Truss baseline result.

    Returns the percentage of reference nodes kept, the density of both
    communities, and the elapsed-time ratio — one row of the Figures 5-10
    panels.
    """
    return {
        "percentage": percentage_retained(result.graph, reference.graph),
        "density": result.density(),
        "reference_density": reference.density(),
        "elapsed_seconds": result.elapsed_seconds,
        "reference_elapsed_seconds": reference.elapsed_seconds,
        "trussness": result.trussness,
        "reference_trussness": reference.trussness,
    }
