"""Metrics: ground-truth quality, community structure and approximation bounds."""

from repro.metrics.approximation import (
    approximation_ratio,
    diameter_bounds,
    summarize_diameter_experiment,
)
from repro.metrics.quality import average_f1, f1_score, jaccard_index, precision, recall
from repro.metrics.structure import (
    community_statistics,
    compare_to_reference,
    percentage_retained,
    reduction_ratio,
)

__all__ = [
    "precision",
    "recall",
    "f1_score",
    "jaccard_index",
    "average_f1",
    "community_statistics",
    "percentage_retained",
    "reduction_ratio",
    "compare_to_reference",
    "diameter_bounds",
    "approximation_ratio",
    "summarize_diameter_experiment",
]
