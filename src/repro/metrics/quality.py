"""Quality metrics against ground-truth communities (precision, recall, F1).

Figure 12(a) of the paper scores each method by the F1 alignment between the
community it returns and the ground-truth community its query nodes belong
to, averaged over all query sets.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

__all__ = ["precision", "recall", "f1_score", "jaccard_index", "average_f1"]


def _as_sets(found: Iterable[Hashable], truth: Iterable[Hashable]) -> tuple[set, set]:
    return set(found), set(truth)


def precision(found: Iterable[Hashable], truth: Iterable[Hashable]) -> float:
    """Return ``|found ∩ truth| / |found|`` (1.0 for an empty found set)."""
    found_set, truth_set = _as_sets(found, truth)
    if not found_set:
        return 1.0
    return len(found_set & truth_set) / len(found_set)


def recall(found: Iterable[Hashable], truth: Iterable[Hashable]) -> float:
    """Return ``|found ∩ truth| / |truth|`` (1.0 for an empty truth set)."""
    found_set, truth_set = _as_sets(found, truth)
    if not truth_set:
        return 1.0
    return len(found_set & truth_set) / len(truth_set)


def f1_score(found: Iterable[Hashable], truth: Iterable[Hashable]) -> float:
    """Return the harmonic mean of precision and recall (0.0 when both are 0)."""
    prec = precision(found, truth)
    rec = recall(found, truth)
    if prec + rec == 0.0:
        return 0.0
    return 2.0 * prec * rec / (prec + rec)


def jaccard_index(found: Iterable[Hashable], truth: Iterable[Hashable]) -> float:
    """Return ``|found ∩ truth| / |found ∪ truth|`` (1.0 when both are empty)."""
    found_set, truth_set = _as_sets(found, truth)
    union = found_set | truth_set
    if not union:
        return 1.0
    return len(found_set & truth_set) / len(union)


def average_f1(pairs: Sequence[tuple[Iterable[Hashable], Iterable[Hashable]]]) -> float:
    """Return the mean F1 over ``(found, truth)`` pairs (0.0 for no pairs)."""
    if not pairs:
        return 0.0
    return sum(f1_score(found, truth) for found, truth in pairs) / len(pairs)
