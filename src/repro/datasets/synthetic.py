"""Synthetic community-structured networks with ground truth.

The generator builds networks in the spirit of the SNAP ground-truth-
community datasets used by the paper: a set of (possibly overlapping)
communities of varying size, dense inside, plus a sparse background and a
connectivity stitch.  Each produced :class:`SyntheticNetwork` carries the
planted communities so the F1 evaluation of Figure 12 can be reproduced.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Hashable, Sequence

from repro.exceptions import ConfigurationError
from repro.graph.generators import connect_components
from repro.graph.simple_graph import UndirectedGraph

__all__ = ["CommunityProfile", "SyntheticNetwork", "generate_community_network"]


@dataclasses.dataclass(frozen=True)
class CommunityProfile:
    """Parameters describing one family of planted communities.

    Attributes
    ----------
    count:
        How many communities of this family to plant.
    size_range:
        Inclusive (low, high) bounds on the community size.
    p_in:
        Probability of an edge between two members of the same community.
    """

    count: int
    size_range: tuple[int, int]
    p_in: float

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent parameters."""
        low, high = self.size_range
        if self.count < 0:
            raise ConfigurationError("community count must be non-negative")
        if low < 3 or high < low:
            raise ConfigurationError("community sizes must satisfy 3 <= low <= high")
        if not 0.0 < self.p_in <= 1.0:
            raise ConfigurationError("p_in must be in (0, 1]")


@dataclasses.dataclass
class SyntheticNetwork:
    """A generated network together with its planted ground truth.

    Attributes
    ----------
    name:
        Human-readable dataset name (e.g. ``"dblp-like"``).
    graph:
        The network itself.
    communities:
        Planted ground-truth communities as node sets (may overlap).
    seed:
        The seed the network was generated with (for provenance).
    """

    name: str
    graph: UndirectedGraph
    communities: list[set[Hashable]]
    seed: int

    # ------------------------------------------------------------------
    def communities_of(self, node: Hashable) -> list[set[Hashable]]:
        """Return every planted community containing ``node``."""
        return [community for community in self.communities if node in community]

    def nodes_in_unique_community(self) -> list[Hashable]:
        """Return nodes that belong to exactly one planted community.

        The paper's Figure 12 protocol selects query nodes "that appear in a
        unique ground-truth community" so the target community is well
        defined.
        """
        membership_count: dict[Hashable, int] = {}
        for community in self.communities:
            for node in community:
                membership_count[node] = membership_count.get(node, 0) + 1
        return [node for node, count in membership_count.items() if count == 1]

    def summary(self) -> dict[str, float]:
        """Return headline statistics (used by the Table 2 benchmark)."""
        return {
            "name": self.name,
            "nodes": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
            "max_degree": self.graph.max_degree(),
            "communities": len(self.communities),
        }


def generate_community_network(
    name: str,
    num_nodes: int,
    profiles: Sequence[CommunityProfile],
    overlap_fraction: float = 0.1,
    background_density: float = 0.0005,
    seed: int = 0,
) -> SyntheticNetwork:
    """Generate a connected network with planted (overlapping) communities.

    Parameters
    ----------
    name:
        Dataset name recorded on the result.
    num_nodes:
        Total number of nodes.
    profiles:
        One or more :class:`CommunityProfile` families; communities are
        sampled family by family.
    overlap_fraction:
        Fraction of each community's members drawn from nodes that already
        belong to some community (creates overlapping memberships, as in the
        Orkut/LiveJournal ground truth).
    background_density:
        Probability scale of background noise edges between arbitrary nodes.
    seed:
        RNG seed; the generation is fully deterministic given the seed.
    """
    if num_nodes < 10:
        raise ConfigurationError("need at least 10 nodes for a meaningful network")
    if not profiles:
        raise ConfigurationError("at least one community profile is required")
    for profile in profiles:
        profile.validate()
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ConfigurationError("overlap_fraction must be in [0, 1]")

    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(num_nodes))

    communities: list[set[int]] = []
    already_assigned: list[int] = []
    assigned_set: set[int] = set()
    unassigned = list(range(num_nodes))
    rng.shuffle(unassigned)
    cursor = 0

    for profile in profiles:
        for _ in range(profile.count):
            size = rng.randint(*profile.size_range)
            size = min(size, num_nodes)
            overlap_quota = int(size * overlap_fraction) if already_assigned else 0
            members: set[int] = set()
            if overlap_quota:
                members.update(
                    rng.sample(already_assigned, min(overlap_quota, len(already_assigned)))
                )
            while len(members) < size and cursor < len(unassigned):
                candidate = unassigned[cursor]
                cursor += 1
                members.add(candidate)
            while len(members) < size:
                members.add(rng.randrange(num_nodes))
            communities.append(members)
            for node in members:
                if node not in assigned_set:
                    assigned_set.add(node)
                    already_assigned.append(node)
            # Wire the community densely.
            ordered = sorted(members)
            for index, u in enumerate(ordered):
                for v in ordered[index + 1:]:
                    if rng.random() < profile.p_in:
                        graph.add_edge(u, v)

    # Background noise keeps the periphery realistic (free riders need
    # somewhere to live) and helps connectivity.
    expected_noise = background_density * num_nodes * (num_nodes - 1) / 2.0
    for _ in range(int(expected_noise)):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            graph.add_edge(u, v)

    # Attach any node that ended up with no edges to a random community
    # member, then stitch components together.
    anchor_pool = sorted(assigned_set) if assigned_set else list(range(num_nodes))
    for node in range(num_nodes):
        if graph.degree(node) == 0:
            graph.add_edge(node, rng.choice(anchor_pool))
    connect_components(graph, rng)

    return SyntheticNetwork(name=name, graph=graph, communities=communities, seed=seed)
