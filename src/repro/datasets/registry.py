"""Named dataset registry: laptop-scale stand-ins for the paper's six networks.

Table 2 of the paper lists Facebook, Amazon, DBLP, Youtube, LiveJournal and
Orkut, spanning 4K to 3.1M nodes.  Running pure-Python truss decomposition on
the real LiveJournal/Orkut graphs is not feasible in-process, so the registry
provides synthetic stand-ins whose *relative* characteristics mirror the
originals:

================  =================================================================
stand-in          profile mirrored
================  =================================================================
``facebook-like`` small, very dense ego-network style graph, high max trussness
``amazon-like``   sparse co-purchase style graph, small tight communities, low
                  trussness (the real Amazon has tau_bar = 7)
``dblp-like``     collaboration graph with medium/large dense communities (high
                  trussness cliques of co-authors)
``youtube-like``  sparse, weak communities, low trussness, strong periphery
``lj-like``       larger mixture of many dense communities (scaled LiveJournal)
``orkut-like``    larger graph with heavily overlapping communities (scaled Orkut)
================  =================================================================

Sizes are scaled so the whole experiment suite runs in minutes; the scale
factor is recorded in each entry for the EXPERIMENTS.md accounting.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.datasets.synthetic import CommunityProfile, SyntheticNetwork, generate_community_network
from repro.exceptions import ConfigurationError

__all__ = ["DatasetSpec", "dataset_names", "load_dataset", "load_all_datasets", "PAPER_NETWORKS"]

#: The six networks of Table 2 with the statistics the paper reports
#: (|V|, |E|, d_max, tau_bar).  Kept for documentation and for the
#: paper-vs-measured comparison in EXPERIMENTS.md.
PAPER_NETWORKS: dict[str, dict[str, float]] = {
    "Facebook": {"nodes": 4_000, "edges": 88_000, "max_degree": 1_045, "max_trussness": 97},
    "Amazon": {"nodes": 335_000, "edges": 926_000, "max_degree": 549, "max_trussness": 7},
    "DBLP": {"nodes": 317_000, "edges": 1_000_000, "max_degree": 342, "max_trussness": 114},
    "Youtube": {"nodes": 1_100_000, "edges": 3_000_000, "max_degree": 28_754, "max_trussness": 19},
    "LiveJournal": {"nodes": 4_000_000, "edges": 35_000_000, "max_degree": 14_815, "max_trussness": 352},
    "Orkut": {"nodes": 3_100_000, "edges": 117_000_000, "max_degree": 33_313, "max_trussness": 78},
}


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset recipe.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"dblp-like"``).
    paper_counterpart:
        The Table 2 network this stand-in substitutes for.
    builder:
        Zero-argument callable producing the :class:`SyntheticNetwork`.
    description:
        What structural features of the original are preserved.
    """

    name: str
    paper_counterpart: str
    builder: Callable[[], SyntheticNetwork]
    description: str


def _facebook_like() -> SyntheticNetwork:
    return generate_community_network(
        name="facebook-like",
        num_nodes=400,
        profiles=[
            CommunityProfile(count=6, size_range=(25, 40), p_in=0.75),
            CommunityProfile(count=10, size_range=(10, 18), p_in=0.8),
        ],
        overlap_fraction=0.25,
        background_density=0.004,
        seed=11,
    )


def _amazon_like() -> SyntheticNetwork:
    return generate_community_network(
        name="amazon-like",
        num_nodes=1200,
        profiles=[
            CommunityProfile(count=120, size_range=(4, 8), p_in=0.7),
        ],
        overlap_fraction=0.05,
        background_density=0.0008,
        seed=22,
    )


def _dblp_like() -> SyntheticNetwork:
    return generate_community_network(
        name="dblp-like",
        num_nodes=1500,
        profiles=[
            # A few very dense "large collaboration" cores give DBLP its high
            # maximum trussness (the real DBLP has tau_bar = 114, the largest
            # after LiveJournal in Table 2).
            CommunityProfile(count=3, size_range=(20, 26), p_in=0.97),
            CommunityProfile(count=30, size_range=(12, 25), p_in=0.65),
            CommunityProfile(count=60, size_range=(5, 10), p_in=0.85),
        ],
        overlap_fraction=0.15,
        background_density=0.0008,
        seed=33,
    )


def _youtube_like() -> SyntheticNetwork:
    return generate_community_network(
        name="youtube-like",
        num_nodes=2000,
        profiles=[
            CommunityProfile(count=50, size_range=(5, 12), p_in=0.45),
        ],
        overlap_fraction=0.05,
        background_density=0.0012,
        seed=44,
    )


def _lj_like() -> SyntheticNetwork:
    return generate_community_network(
        name="lj-like",
        num_nodes=2500,
        profiles=[
            CommunityProfile(count=40, size_range=(15, 30), p_in=0.6),
            CommunityProfile(count=80, size_range=(6, 12), p_in=0.75),
        ],
        overlap_fraction=0.2,
        background_density=0.0006,
        seed=55,
    )


def _orkut_like() -> SyntheticNetwork:
    return generate_community_network(
        name="orkut-like",
        num_nodes=2200,
        profiles=[
            CommunityProfile(count=60, size_range=(10, 22), p_in=0.55),
        ],
        overlap_fraction=0.45,
        background_density=0.0015,
        seed=66,
    )


_REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="facebook-like",
            paper_counterpart="Facebook",
            builder=_facebook_like,
            description="small, dense, high-trussness ego-network style graph",
        ),
        DatasetSpec(
            name="amazon-like",
            paper_counterpart="Amazon",
            builder=_amazon_like,
            description="sparse co-purchase style graph with small tight communities",
        ),
        DatasetSpec(
            name="dblp-like",
            paper_counterpart="DBLP",
            builder=_dblp_like,
            description="collaboration graph with dense co-author communities",
        ),
        DatasetSpec(
            name="youtube-like",
            paper_counterpart="Youtube",
            builder=_youtube_like,
            description="sparse graph with weak communities and a large periphery",
        ),
        DatasetSpec(
            name="lj-like",
            paper_counterpart="LiveJournal",
            builder=_lj_like,
            description="scaled LiveJournal-style mixture of many dense communities",
        ),
        DatasetSpec(
            name="orkut-like",
            paper_counterpart="Orkut",
            builder=_orkut_like,
            description="heavily overlapping communities (hard F1 target, as in the paper)",
        ),
    ]
}

_CACHE: dict[str, SyntheticNetwork] = {}


def dataset_names() -> list[str]:
    """Return the registered dataset names (stable order)."""
    return list(_REGISTRY)


def load_dataset(name: str, use_cache: bool = True) -> SyntheticNetwork:
    """Build (or fetch from cache) the named dataset.

    Raises
    ------
    ConfigurationError
        If ``name`` is not registered.
    """
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    if use_cache and name in _CACHE:
        return _CACHE[name]
    network = _REGISTRY[name].builder()
    if use_cache:
        _CACHE[name] = network
    return network


def load_all_datasets(use_cache: bool = True) -> dict[str, SyntheticNetwork]:
    """Build every registered dataset."""
    return {name: load_dataset(name, use_cache=use_cache) for name in dataset_names()}


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name``."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    return _REGISTRY[name]
