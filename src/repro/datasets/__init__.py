"""Datasets: paper-figure fixtures, synthetic networks, registry and query workloads."""

from repro.datasets.collaboration import CASE_STUDY_QUERY, build_collaboration_network
from repro.datasets.paper_figures import (
    example_2_cycle_nodes,
    figure_1_expected_ctc_nodes,
    figure_1_free_riders,
    figure_1_graph,
    figure_1_grey_nodes,
    figure_1_query,
    figure_4_graph,
    figure_4_query,
)
from repro.datasets.queries import (
    QueryWorkloadGenerator,
    degree_rank_query_sets,
    ground_truth_query_sets,
    inter_distance_query_sets,
    random_query_sets,
)
from repro.datasets.registry import (
    PAPER_NETWORKS,
    DatasetSpec,
    dataset_names,
    dataset_spec,
    load_all_datasets,
    load_dataset,
)
from repro.datasets.synthetic import CommunityProfile, SyntheticNetwork, generate_community_network

__all__ = [
    "figure_1_graph",
    "figure_1_query",
    "figure_1_grey_nodes",
    "figure_1_expected_ctc_nodes",
    "figure_1_free_riders",
    "figure_4_graph",
    "figure_4_query",
    "example_2_cycle_nodes",
    "CommunityProfile",
    "SyntheticNetwork",
    "generate_community_network",
    "DatasetSpec",
    "PAPER_NETWORKS",
    "dataset_names",
    "dataset_spec",
    "load_dataset",
    "load_all_datasets",
    "QueryWorkloadGenerator",
    "random_query_sets",
    "degree_rank_query_sets",
    "inter_distance_query_sets",
    "ground_truth_query_sets",
    "CASE_STUDY_QUERY",
    "build_collaboration_network",
]
