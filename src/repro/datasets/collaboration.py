"""A DBLP-style collaboration network for the Figure 11 case study.

The paper's case study builds a co-authorship graph from the raw DBLP dump
(edge = co-authored at least 3 papers) and queries it with four well-known
database researchers; LCTC returns a tight 9-truss of 14 authors while the
raw maximal 9-truss ``G0`` has 73 authors, most of them "free riders".

The raw DBLP dump is not available offline, so this module builds a *named*
synthetic collaboration network with the same structure: a core community of
senior "authors" who have all co-authored with each other frequently (a
high-trussness near-clique), several satellite research groups that attach
to the core through a few bridging authors (the free riders of the case
study), and a periphery of occasional collaborators.
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import SyntheticNetwork
from repro.graph.simple_graph import UndirectedGraph

__all__ = ["CASE_STUDY_QUERY", "build_collaboration_network"]

#: The four query "authors" of the case study (names follow the paper's query).
CASE_STUDY_QUERY: tuple[str, ...] = (
    "Alon Y. Halevy",
    "Michael J. Franklin",
    "Jeffrey D. Ullman",
    "Jennifer Widom",
)

#: The core database-systems community of the case study figure (Figure 11(b)).
_CORE_AUTHORS: tuple[str, ...] = CASE_STUDY_QUERY + (
    "Michael J. Carey",
    "Michael Stonebraker",
    "Philip A. Bernstein",
    "Hector Garcia-Molina",
    "Joseph M. Hellerstein",
    "Gerhard Weikum",
    "David Maier",
    "David J. DeWitt",
    "Laura M. Haas",
    "Rakesh Agrawal",
)


def build_collaboration_network(
    num_satellite_groups: int = 8,
    satellite_new_authors: int = 9,
    satellite_shared_core_authors: int = 5,
    num_peripheral_authors: int = 120,
    core_density: float = 0.82,
    satellite_density: float = 0.95,
    seed: int = 7,
) -> SyntheticNetwork:
    """Build the synthetic collaboration network used by the case study.

    Structure:

    * the 14 core authors form a dense near-clique, giving a high-trussness
      core that contains all four query authors (the paper's Figure 11(b)
      community has density 0.89);
    * each satellite research group consists of new authors plus a few shared
      *non-query* core authors and is wired even more densely than the core,
      so the satellites join the same maximal k-truss as the core — exactly
      how the paper's raw ``G0`` balloons to 73 authors while most of them
      are far from some query author;
    * peripheral authors attach with a single edge and never reach high
      trussness.

    Returns a :class:`SyntheticNetwork` whose single ground-truth community
    is the core author set, so the case study can also be scored with F1.
    """
    rng = random.Random(seed)
    graph = UndirectedGraph()

    core = list(_CORE_AUTHORS)
    for index, first in enumerate(core):
        for second in core[index + 1:]:
            if rng.random() < core_density:
                graph.add_edge(first, second)
    # Guarantee the query authors are pairwise connected regardless of the
    # random dropout above.
    for index, first in enumerate(CASE_STUDY_QUERY):
        for second in CASE_STUDY_QUERY[index + 1:]:
            graph.add_edge(first, second)

    # Satellite research groups: internally denser than the core and sharing
    # a handful of senior (non-query) authors with it, so they sit inside the
    # same maximal k-truss but far from at least one query author.
    non_query_core = [author for author in core if author not in CASE_STUDY_QUERY]
    for group_index in range(num_satellite_groups):
        new_authors = [
            f"Satellite {group_index}-{member}" for member in range(satellite_new_authors)
        ]
        shared = rng.sample(non_query_core, satellite_shared_core_authors)
        members = new_authors + shared
        for index, first in enumerate(members):
            for second in members[index + 1:]:
                if rng.random() < satellite_density:
                    graph.add_edge(first, second)

    # Peripheral occasional collaborators.
    all_named = list(graph.nodes())
    for index in range(num_peripheral_authors):
        name = f"Peripheral {index}"
        graph.add_edge(name, rng.choice(all_named))

    return SyntheticNetwork(
        name="collaboration-case-study",
        graph=graph,
        communities=[set(core)],
        seed=seed,
    )
