"""Query-workload generation (Section 6 of the paper).

The experiments vary three query-set parameters:

* **query size** ``|Q|`` in {1, 2, 4, 8, 16} (default 3),
* **degree rank** ``Qd``: query nodes drawn from a given percentile bucket of
  the degree distribution (default: top 80%, i.e. "degree higher than the
  degree of 20% of nodes"),
* **inter-distance** ``l``: the maximum pairwise hop distance between query
  nodes (default 2).

For the ground-truth quality experiment (Figure 12) query sets are drawn from
inside a single ground-truth community, with query nodes that belong to
exactly one community.

:class:`EdgeChurn` generates the *write* half of mixed read/write workloads:
a deterministic stream of single-edge mutations against a
:class:`~repro.engine.CTCEngine`-like store, shared by the CLI's
``--mutate-every`` mode and ``benchmarks/bench_mixed_workload.py``.

:class:`WindowedChurnStream` generates the *temporal* workload: a
deterministic arrival order over a fixed edge population, feeding a
:class:`~repro.engine.SlidingWindowEngine` so the live graph slides across
the population (``benchmarks/bench_windowed_churn.py`` and the CLI's
``--window`` mode).
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Hashable, Iterable, Sequence
from typing import Protocol

from repro.datasets.synthetic import SyntheticNetwork
from repro.exceptions import ConfigurationError
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import bfs_distances

__all__ = [
    "QueryWorkloadGenerator",
    "EdgeChurn",
    "WindowedChurnStream",
    "random_query_sets",
    "degree_rank_query_sets",
    "inter_distance_query_sets",
    "ground_truth_query_sets",
]


class _MutableGraphStore(Protocol):
    """What :class:`EdgeChurn` needs from its target (a ``CTCEngine`` fits)."""

    @property
    def graph(self) -> UndirectedGraph: ...

    def add_edge(self, u: Hashable, v: Hashable) -> None: ...

    def remove_edge(self, u: Hashable, v: Hashable) -> None: ...


class EdgeChurn:
    """Deterministic, non-cancelling single-edge churn for mixed workloads.

    Each :meth:`step` applies exactly one mutation to the target store:
    mostly removals of randomly chosen present edges, interleaved with
    re-insertion of the oldest previously removed edge once a few removals
    have accumulated.  Consecutive deltas therefore never cancel to a
    no-op, the graph drifts without shrinking away, and a fixed ``seed``
    replays the identical stream — so two engines under comparison see the
    same mutations.

    Edges incident to ``protect``-ed nodes (typically the query nodes) are
    never touched, keeping every query answerable.
    """

    #: How many removals accumulate before re-insertions join the mix.
    REINSERT_BACKLOG = 4

    def __init__(
        self,
        engine: _MutableGraphStore,
        *,
        seed: int = 0,
        protect: Iterable[Hashable] = (),
    ) -> None:
        self._engine = engine
        self._rng = random.Random(seed)
        self._removed: deque[tuple[Hashable, Hashable]] = deque()
        protected = set(protect)
        self._edges = [
            edge
            for edge in sorted(engine.graph.edges(), key=repr)
            if not (edge[0] in protected or edge[1] in protected)
        ]

    @property
    def mutable_edges(self) -> int:
        """How many edges the churn may touch (0 = :meth:`step` is a no-op)."""
        return len(self._edges)

    def step(self) -> bool:
        """Apply one mutation; return ``False`` if no mutation was possible."""
        if len(self._removed) >= self.REINSERT_BACKLOG and self._rng.random() < 0.5:
            self._engine.add_edge(*self._removed.popleft())
            return True
        for _ in range(len(self._edges)):
            edge = self._edges[self._rng.randrange(len(self._edges))]
            if self._engine.graph.has_edge(*edge):
                self._engine.remove_edge(*edge)
                self._removed.append(edge)
                return True
        # Sampling found no present edge (pool mostly removed): re-insert if
        # anything is pending, otherwise report that the churn is exhausted.
        if self._removed:
            self._engine.add_edge(*self._removed.popleft())
            return True
        return False


class _EdgeIngestingStore(Protocol):
    """What :class:`WindowedChurnStream` needs from its target."""

    @property
    def graph(self) -> UndirectedGraph: ...

    def add_edge(self, u: Hashable, v: Hashable) -> None: ...


class WindowedChurnStream:
    """Deterministic edge-arrival stream for sliding-window workloads.

    The stream shuffles a fixed edge population once (seeded) and feeds it
    to a window-maintaining store in that order, cycling back to the start
    when exhausted — so a long run keeps re-inserting edges whose earlier
    copies have expired, and the live window slides across the population
    forever.  Two stores fed from identically-seeded streams see the exact
    same arrival order, which is what lets
    ``benchmarks/bench_windowed_churn.py`` compare maintenance policies on
    the same workload.

    Queries are sampled from the *live* graph (:meth:`sample_query` picks
    the endpoints of present edges), so every generated query is answerable
    against the current window.
    """

    def __init__(
        self,
        edges: Iterable[tuple[Hashable, Hashable]],
        *,
        seed: int = 0,
    ) -> None:
        self._rng = random.Random(seed)
        self._edges = sorted(edges, key=repr)
        if not self._edges:
            raise ConfigurationError("cannot stream over an empty edge population")
        self._rng.shuffle(self._edges)
        self._cursor = 0

    @property
    def population(self) -> int:
        """How many distinct edges the stream cycles over."""
        return len(self._edges)

    def feed(self, store: _EdgeIngestingStore, count: int) -> int:
        """Ingest the next ``count`` arrivals into ``store``; return ``count``."""
        for _ in range(count):
            u, v = self._edges[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._edges)
            store.add_edge(u, v)
        return count

    def sample_query(self, store: _EdgeIngestingStore, query_size: int = 2) -> list[Hashable]:
        """Return ``query_size`` nodes from the live graph, seeded from one edge.

        The first two nodes are the endpoints of a randomly drawn present
        edge (guaranteeing a connected anchor); further nodes extend along
        present edges of nodes already picked when possible.  Raises
        :class:`ConfigurationError` when the live graph has no edges.
        """
        if query_size < 1:
            raise ConfigurationError("query size must be at least 1")
        live = sorted(store.graph.edges(), key=repr)
        if not live:
            raise ConfigurationError("cannot sample a query from an edgeless window")
        u, v = live[self._rng.randrange(len(live))]
        picked: list[Hashable] = [u, v][:query_size]
        while len(picked) < query_size:
            frontier = sorted(
                {
                    other
                    for node in picked
                    for other in store.graph.neighbors(node)
                    if other not in picked
                },
                key=repr,
            )
            if not frontier:
                break
            picked.append(frontier[self._rng.randrange(len(frontier))])
        return picked


class QueryWorkloadGenerator:
    """Deterministic (seeded) generator of query-node sets over one graph."""

    def __init__(self, graph: UndirectedGraph, seed: int = 0) -> None:
        self._graph = graph
        self._rng = random.Random(seed)
        self._nodes = sorted(graph.nodes(), key=repr)
        if not self._nodes:
            raise ConfigurationError("cannot generate queries over an empty graph")
        # Nodes sorted by descending degree, for the degree-rank buckets.
        self._by_degree = sorted(
            self._nodes, key=lambda node: (-graph.degree(node), repr(node))
        )

    # ------------------------------------------------------------------
    def random_queries(self, query_size: int, count: int) -> list[list[Hashable]]:
        """Return ``count`` random query sets of ``query_size`` nodes each."""
        if query_size < 1:
            raise ConfigurationError("query size must be at least 1")
        population = self._nodes
        size = min(query_size, len(population))
        return [self._rng.sample(population, size) for _ in range(count)]

    def degree_rank_queries(
        self, rank_percent: int, query_size: int, count: int
    ) -> list[list[Hashable]]:
        """Return query sets drawn from one degree-rank bucket.

        ``rank_percent = 20`` means the top-20% highest-degree bucket,
        ``rank_percent = 100`` the bottom bucket — matching the five
        equal-sized buckets of Figures 7-8.
        """
        if rank_percent not in (20, 40, 60, 80, 100):
            raise ConfigurationError("rank_percent must be one of 20, 40, 60, 80, 100")
        bucket_size = max(1, len(self._by_degree) // 5)
        bucket_index = rank_percent // 20 - 1
        start = bucket_index * bucket_size
        stop = len(self._by_degree) if rank_percent == 100 else start + bucket_size
        bucket = self._by_degree[start:stop]
        size = min(query_size, len(bucket))
        return [self._rng.sample(bucket, size) for _ in range(count)]

    def inter_distance_queries(
        self, inter_distance: int, query_size: int, count: int, max_attempts: int = 200
    ) -> list[list[Hashable]]:
        """Return query sets whose pairwise hop distance is at most ``inter_distance``.

        The generator picks a random anchor node, collects its
        ``inter_distance``-hop ball, and samples the remaining query nodes
        from the ball, preferring nodes at exactly the requested distance so
        the workload actually stresses the requested separation (as in
        Figures 9-10).  Query sets that cannot be realised are skipped, so
        fewer than ``count`` sets may be returned on tiny graphs.
        """
        if inter_distance < 1:
            raise ConfigurationError("inter-distance must be at least 1")
        results: list[list[Hashable]] = []
        attempts = 0
        while len(results) < count and attempts < max_attempts * count:
            attempts += 1
            anchor = self._rng.choice(self._nodes)
            ball = bfs_distances(self._graph, anchor, cutoff=inter_distance)
            ball.pop(anchor, None)
            if len(ball) < query_size - 1:
                continue
            ring = [node for node, dist in ball.items() if dist == inter_distance]
            others = [node for node in ball if node not in ring]
            picked: list[Hashable] = [anchor]
            pool = sorted(ring, key=repr) + sorted(others, key=repr)
            self._rng.shuffle(pool)
            # Prefer at least one node on the outer ring so the realised
            # inter-distance is (close to) the requested one.
            if ring:
                picked.append(self._rng.choice(sorted(ring, key=repr)))
            for node in pool:
                if len(picked) >= query_size:
                    break
                if node not in picked:
                    picked.append(node)
            if len(picked) == query_size:
                results.append(picked)
        return results

    def ground_truth_queries(
        self,
        network: SyntheticNetwork,
        count: int,
        size_range: tuple[int, int] = (1, 16),
    ) -> list[tuple[list[Hashable], set[Hashable]]]:
        """Return ``(query, target community)`` pairs for the F1 evaluation.

        Query nodes are drawn from nodes that belong to exactly one planted
        community, and all query nodes of one set come from the same
        community (the Figure 12 protocol).
        """
        unique_nodes = set(network.nodes_in_unique_community())
        eligible: list[tuple[set[Hashable], list[Hashable]]] = []
        for community in network.communities:
            members = sorted((node for node in community if node in unique_nodes), key=repr)
            if members:
                eligible.append((set(community), members))
        if not eligible:
            raise ConfigurationError(
                "no ground-truth community has nodes with a unique membership"
            )
        pairs: list[tuple[list[Hashable], set[Hashable]]] = []
        low, high = size_range
        for _ in range(count):
            community, members = self._rng.choice(eligible)
            size = self._rng.randint(low, min(high, len(members)))
            pairs.append((self._rng.sample(members, size), community))
        return pairs


# ----------------------------------------------------------------------
# Functional wrappers (what the experiment drivers call)
# ----------------------------------------------------------------------
def random_query_sets(
    graph: UndirectedGraph, query_size: int, count: int, seed: int = 0
) -> list[list[Hashable]]:
    """Return ``count`` random query sets of the given size."""
    return QueryWorkloadGenerator(graph, seed).random_queries(query_size, count)


def degree_rank_query_sets(
    graph: UndirectedGraph, rank_percent: int, query_size: int, count: int, seed: int = 0
) -> list[list[Hashable]]:
    """Return query sets from the given degree-rank bucket."""
    return QueryWorkloadGenerator(graph, seed).degree_rank_queries(rank_percent, query_size, count)


def inter_distance_query_sets(
    graph: UndirectedGraph, inter_distance: int, query_size: int, count: int, seed: int = 0
) -> list[list[Hashable]]:
    """Return query sets constrained to the given pairwise inter-distance."""
    return QueryWorkloadGenerator(graph, seed).inter_distance_queries(
        inter_distance, query_size, count
    )


def ground_truth_query_sets(
    network: SyntheticNetwork,
    count: int,
    size_range: tuple[int, int] = (1, 16),
    seed: int = 0,
) -> list[tuple[list[Hashable], set[Hashable]]]:
    """Return ``(query, target community)`` pairs drawn from the planted ground truth."""
    generator = QueryWorkloadGenerator(network.graph, seed)
    return generator.ground_truth_queries(network, count, size_range=size_range)
