"""The worked examples of the paper (Figures 1 and 4) as concrete fixtures.

The paper's Figures 1-4 and Examples 1-7 walk through small graphs whose
behaviour under the algorithms is fully specified in the text.  The exact
drawings are not recoverable from the PDF, so the fixtures below are
*reconstructions*: graphs built to satisfy every property the text states
(supports, trussness values, diameters, query distances, which nodes are free
riders, how the algorithms behave).  They double as ground truth for the unit
tests of the truss machinery and the CTC algorithms.
"""

from __future__ import annotations

from repro.graph.simple_graph import UndirectedGraph

__all__ = [
    "figure_1_graph",
    "figure_1_query",
    "figure_1_expected_ctc_nodes",
    "figure_1_free_riders",
    "figure_1_grey_nodes",
    "figure_4_graph",
    "figure_4_query",
    "example_2_cycle_nodes",
]


def figure_1_graph() -> UndirectedGraph:
    """Return the reconstruction of the Figure 1(a) graph.

    Properties guaranteed by construction (and asserted in the test suite):

    * the subgraph on every node except ``t`` (the "grey region") is a
      4-truss containing the query ``{q1, q2, q3}`` and has diameter 4;
    * ``sup(q2, v2) = 3`` via the triangles with ``q1``, ``v1`` and ``v5``
      while ``tau(q2, v2) = 4`` (the worked example of Section 2);
    * ``{q1, q2, v1, v2}``, ``{q3, v3, v4, v5}`` and ``{q3, p1, p2, p3}``
      induce 4-cliques;
    * the 5-cycle ``q1 - t - q3 - v4 - q2 - q1`` exists (Example 2) and is
      the only way ``t`` attaches to the rest of the graph;
    * the maximum trussness of any edge is 4 (``tau_bar = 4``);
    * dropping ``{p1, p2, p3}`` leaves a 4-truss of diameter 3 — the closest
      truss community of Example 1 — and those three nodes are the free
      riders Algorithm 1 eliminates in Example 4.
    """
    edges = [
        # 4-clique on {q1, q2, v1, v2}
        ("q1", "q2"), ("q1", "v1"), ("q1", "v2"),
        ("q2", "v1"), ("q2", "v2"), ("v1", "v2"),
        # 4-clique on {q3, v3, v4, v5}
        ("q3", "v3"), ("q3", "v4"), ("q3", "v5"),
        ("v3", "v4"), ("v3", "v5"), ("v4", "v5"),
        # 4-clique on {q3, p1, p2, p3}
        ("q3", "p1"), ("q3", "p2"), ("q3", "p3"),
        ("p1", "p2"), ("p1", "p3"), ("p2", "p3"),
        # stitching edges that keep the grey region a single 4-truss
        ("q2", "v5"), ("v2", "v5"), ("v1", "v5"),
        ("q2", "v4"), ("q2", "v3"),
        # the low-trussness attachment of t (Example 2's 5-cycle)
        ("q1", "t"), ("q3", "t"),
    ]
    return UndirectedGraph(edges)


def figure_1_query() -> tuple[str, str, str]:
    """The query of Examples 1, 2, 4 and 7: ``{q1, q2, q3}``."""
    return ("q1", "q2", "q3")


def figure_1_grey_nodes() -> set[str]:
    """Nodes of the grey region of Figure 1(a): everything except ``t``."""
    return {"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5", "p1", "p2", "p3"}


def figure_1_expected_ctc_nodes() -> set[str]:
    """Nodes of the closest truss community of Figure 1(b)."""
    return {"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5"}


def figure_1_free_riders() -> set[str]:
    """The free-rider nodes removed by Algorithm 1 in Example 4."""
    return {"p1", "p2", "p3"}


def example_2_cycle_nodes() -> set[str]:
    """Nodes of the 5-cycle of Example 2 (the diameter-first counterexample)."""
    return {"q1", "q2", "q3", "v4", "t"}


def figure_4_graph() -> UndirectedGraph:
    """Return the reconstruction of the Figure 4 graph (FindG0 walkthrough).

    Two 4-cliques — ``{q1, v1, v2, t1}`` and ``{q2, v3, v4, t2}`` — joined by
    the single low-trussness bridge ``(t1, t2)``.  Every clique edge has
    trussness 4; the bridge has trussness 2.  With ``Q = {q1, q2}`` the
    maximal connected k-truss containing the query is the *whole* graph at
    ``k = 2``: the level-4 exploration finds two disconnected cliques, level
    3 adds nothing, and level 2 adds the bridge (Example 6).
    """
    edges = [
        ("q1", "v1"), ("q1", "v2"), ("q1", "t1"),
        ("v1", "v2"), ("v1", "t1"), ("v2", "t1"),
        ("q2", "v3"), ("q2", "v4"), ("q2", "t2"),
        ("v3", "v4"), ("v3", "t2"), ("v4", "t2"),
        ("t1", "t2"),
    ]
    return UndirectedGraph(edges)


def figure_4_query() -> tuple[str, str]:
    """The query of Example 6: ``{q1, q2}``."""
    return ("q1", "q2")
