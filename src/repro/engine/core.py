""":class:`CTCEngine`: serve many CTC queries from cached, read-optimized snapshots.

The paper assumes an offline-indexed setting: build the truss index once,
then answer queries against it (Table 3 prices index construction separately
from query time).  The seed implementation of :func:`repro.ctc.api.search`
nonetheless rebuilt a :class:`TrussIndex` per call whenever handed a plain
graph, so repeated queries paid the full O(rho * m) decomposition every
time.

``CTCEngine`` closes that gap with an HTAP-replica design (cf. Polynesia,
arXiv:2103.00798): one **mutable store** (an
:class:`~repro.graph.simple_graph.UndirectedGraph`) absorbs updates, while
every analytical query is served from a **frozen snapshot** of that store —
a :class:`~repro.graph.csr.CSRGraph` plus the per-edge trussness array its
CSR-fast-path decomposition produced.  Queries execute on the snapshot's
CSR-native kernels (:mod:`repro.ctc.kernels`) by default; the dict-path
:class:`TrussIndex` is derived lazily for consumers that ask for it
(``kernel="dict"``, direct ``snapshot().index`` access).

Delta propagation / rebuild policy
----------------------------------
The paper's system is dynamic (Section 4.2 maintains trusses under
deletions; reference [20] under insertions), so mutations must not throw
the read replica away.  Every effective mutation both bumps the store
**version** and appends a structured
:class:`~repro.graph.delta.GraphDelta` to a bounded **delta log**.  On a
snapshot miss the engine picks between two build paths:

* **delta apply** — if a cached snapshot plus a contiguous, fully-retained
  run of log entries reaches the current version, and the composed delta is
  small relative to that snapshot (``delta.size() <= delta_threshold *
  edges``), the new snapshot is produced by patching: the frozen store copy
  is edited in place, :meth:`CSRGraph.apply_delta` rewrites only touched
  adjacency rows, incremental truss maintenance
  (:mod:`repro.trusses.incremental`) re-evaluates only the affected edges,
  and :meth:`TrussIndex.patched` rebuilds only touched index entries.
* **full rebuild** — otherwise (cold cache, log truncation, or a delta too
  large for patching to win), the classic freeze + CSR decomposition runs.

Both paths produce identical snapshots — the property suite
(``tests/trusses/test_delta_equivalence.py``) enforces bit-for-bit
equality — so the policy is purely a performance decision, exposed through
the ``delta_threshold`` / ``delta_log_limit`` / ``cache_size`` knobs (CLI:
``--delta-threshold`` / ``--cache-size``).

Time-travel reads
-----------------
The delta log is bidirectional: every logged
:class:`~repro.graph.delta.GraphDelta` has an exact
:meth:`~repro.graph.delta.GraphDelta.inverted` counterpart, so any version
the log still covers can be re-materialized — not just the current one.
:meth:`CTCEngine.snapshot_at` (and ``query(..., at_version=v)``) resolves a
pinned historical version ``v`` against the **nearest cached snapshot on
either side**: an older cached version replays the log *forward* through
composed deltas, a newer one unwinds it *backward* through composed
inverses, and when no cached base is within the ``delta_threshold`` budget
the store itself is unwound to the version-``v`` graph and rebuilt from
scratch.  All three paths produce bit-identical snapshots
(``tests/engine/test_time_travel.py``).  Versions trimmed past
``delta_log_limit`` are unrecoverable and raise
:class:`~repro.exceptions.VersionEvictedError` naming the retained range
(:meth:`CTCEngine.retained_versions`) — never a silent rebuild of some
other version.

Caching / invalidation contract
-------------------------------
* The store carries a monotonically increasing **version**; every mutation
  that actually changes the graph bumps it (no-ops such as re-adding an
  existing edge do not) and logs its delta.
* Snapshots are memoized in an LRU keyed by version, so a burst of queries
  against an unchanging graph builds exactly one snapshot, and an
  alternating read/write workload can still hit older cached versions while
  a handle to them is useful.
* Mutations routed through a :class:`KTrussMaintainer` obtained from
  :meth:`CTCEngine.maintainer` enter the pipeline through the maintainer's
  mutation hooks, which deliver the cascade's ``GraphDelta``; hook dispatch
  is exception-safe, so the version bump and log append happen even if
  another hook raises mid-batch.
* A snapshot, once built, is immutable: it holds a private frozen copy of
  the store, so in-flight results never see later mutations.

Concurrency: epoch-pinned snapshots
-----------------------------------
The engine is safe to share between one writer and many reader threads.  A
single re-entrant mutex guards every *bookkeeping* step — version bump +
delta-log append, LRU lookup/insert/evict, build planning — but never the
heavy work: snapshot builds (CSR decomposition, delta application) run
outside the lock, coordinated per version so concurrent misses on one
version build it exactly once, and query execution touches no engine state
at all (snapshots are immutable).  Readers therefore never block the
writer for longer than a dict update, and the writer never blocks readers
mid-query.

:meth:`CTCEngine.lease` returns a :class:`SnapshotLease` — a context
manager pinning one version against reclamation.  The LRU defers eviction
of pinned versions (skipping them during over-capacity sweeps, counted in
:attr:`EngineStats.deferred_reclamations`) and reclaims them when the last
lease releases, so a reader holding a lease can keep issuing
:meth:`snapshot_at` reads of its version even after the delta log has
trimmed past it — the epoch-reclamation scheme the serving layer
(:mod:`repro.engine.serving`) builds its batched front-end on.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.ctc.result import CommunityResult
from repro.engine.persistence import (
    DurabilityConfig,
    DurabilityManager,
    RecoveryReport,
)
from repro.exceptions import (
    ConfigurationError,
    QueryTimeoutError,
    StaleMaintainerError,
    VersionEvictedError,
    WalCorruptionError,
)
from repro.graph.csr import CSRGraph
from repro.graph.csr_triangles import TriangleIncidence, patch_incidence
from repro.graph.delta import GraphDelta
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.csr_decomposition import csr_decompose, csr_edge_supports
from repro.trusses.incremental import incremental_truss_update
from repro.trusses.index import TrussIndex
from repro.trusses.maintenance import KTrussMaintainer

if TYPE_CHECKING:
    from repro.ctc.kernels import QueryKernel

__all__ = ["CTCEngine", "EngineSnapshot", "EngineStats", "SnapshotLease"]

#: Default number of graph versions whose snapshots stay cached.
DEFAULT_CACHE_SIZE = 4

#: Default rebuild-policy threshold: delta-apply while the composed delta's
#: size is at most this fraction of the base snapshot's edge count.
DEFAULT_DELTA_THRESHOLD = 0.25

#: Default number of per-mutation deltas retained in the log.
DEFAULT_DELTA_LOG_LIMIT = 128


def _apply_delta_to_graph(graph: UndirectedGraph, delta: GraphDelta) -> None:
    """Mutate ``graph`` in place per ``delta`` (normalized against ``graph``)."""
    for node in delta.added_nodes:
        graph.add_node(node)
    for u, v in delta.added_edges:
        graph.add_edge(u, v)
    for u, v in delta.removed_edges:
        graph.remove_edge(u, v)
    for node in delta.removed_nodes:
        graph.remove_node(node)


class EngineSnapshot:
    """One frozen version of the engine's store, indexed on demand.

    The eagerly built attributes are the array replica — ``csr`` (the
    frozen CSR form) and ``trussness`` (the per-edge-id trussness array
    the incremental maintenance of the *next* delta apply consumes).
    ``graph`` (a private frozen dict-form copy, never mutated) is eager on
    the ordinary build paths but lazily thawed from ``csr`` when the
    snapshot was seeded straight from frozen arrays (``graph=None``).
    Everything derived for query execution is **lazy**:

    * :attr:`kernel` — the :class:`~repro.ctc.kernels.QueryKernel` the
      CSR-native query path runs on, memoized so its sorted-adjacency
      arrays amortize across every query on this version;
    * :attr:`index` — the dict-path :class:`TrussIndex`, built (together
      with its O(m) canonical-edge-key trussness dict) only when a
      dict-path consumer first asks for it.  A snapshot serving only
      CSR-native queries never pays for it;
    * :attr:`supports` — the per-edge-id triangle counts; a full rebuild
      hands them over from the decomposition (which computes them anyway)
      and a delta apply from the patched incidence, so consumers no longer
      re-count supports a second time.

    ``incidence`` is the triangle-incidence structure of this snapshot: a
    vector-strategy full rebuild enumerates it, a delta apply *patches* the
    base snapshot's forward via
    :func:`~repro.graph.csr_triangles.patch_incidence`, and a kernel that
    had to enumerate one lazily (bucket-path snapshots) adopts it back onto
    the snapshot — so once any snapshot in a delta chain holds an
    incidence, every patched descendant inherits it without re-enumerating.
    The CSR-native LCTC kernel re-decomposes its local expansions on
    restrictions of it, and the next delta apply seeds its deletion pass
    from it and reads it for triangle lookups.

    Once built, every lazy structure is cached and — like the snapshot
    itself — immutable by contract.  ``on_enumerate`` is the engine's
    observability hook: called (with no arguments) whenever a full triangle
    enumeration ran on behalf of this snapshot, so
    :attr:`EngineStats.incidence_enumerations` stays exact even for lazy
    kernel-side enumerations.
    """

    __slots__ = (
        "version",
        "_graph",
        "csr",
        "trussness",
        "incidence",
        "_supports",
        "_index",
        "_kernel",
        "_on_enumerate",
        "_lazy_lock",
    )

    def __init__(
        self,
        version: int,
        graph: UndirectedGraph | None,
        csr: CSRGraph,
        trussness: np.ndarray,
        index: TrussIndex | None = None,
        *,
        supports: np.ndarray | None = None,
        incidence: TriangleIncidence | None = None,
        on_enumerate=None,
    ) -> None:
        self.version = version
        self._graph = graph
        self.csr = csr
        self.trussness = trussness
        self.incidence = incidence
        self._supports = supports
        self._index = index
        self._kernel: "QueryKernel | None" = None
        self._on_enumerate = on_enumerate
        #: Serializes the lazy builds below so concurrent readers of one
        #: snapshot memoize each derived structure exactly once.
        self._lazy_lock = threading.RLock()

    @property
    def graph(self) -> UndirectedGraph:
        """The snapshot's frozen dict-form store (never mutated).

        Snapshots seeded straight from frozen arrays — a recovered
        checkpoint, a serving worker's shared-memory baseline — are built
        with ``graph=None`` and thaw the dict form from :attr:`csr` on
        first access, so array-kernel consumers never pay the O(m) Python
        reconstruction.
        """
        if self._graph is None:
            with self._lazy_lock:
                if self._graph is None:
                    self._graph = self.csr.to_graph()
        return self._graph

    def _adopt_incidence(self, incidence: TriangleIncidence) -> None:
        """Adopt a kernel's lazily enumerated incidence and report the cost.

        Called by the snapshot's :class:`~repro.ctc.kernels.QueryKernel`
        when :meth:`~repro.ctc.kernels.QueryKernel.ensure_incidence` had to
        enumerate from scratch; keeping the artifact on the snapshot lets
        the next delta apply patch it forward instead of enumerating again.
        """
        with self._lazy_lock:
            if self.incidence is None:
                self.incidence = incidence
                if self._supports is None:
                    self._supports = incidence.supports
        if self._on_enumerate is not None:
            self._on_enumerate()

    @property
    def supports(self) -> np.ndarray:
        """Per-edge-id triangle counts, shared from the build when available."""
        if self._supports is None:
            with self._lazy_lock:
                if self._supports is None:
                    if self.incidence is not None:
                        self._supports = self.incidence.supports
                    else:
                        self._supports = csr_edge_supports(self.csr)
        return self._supports

    @property
    def index(self) -> TrussIndex:
        """The dict-path :class:`TrussIndex`, built lazily on first access."""
        if self._index is None:
            with self._lazy_lock:
                if self._index is None:
                    edge_trussness = {
                        self.csr.edge_key_of(edge): int(self.trussness[edge])
                        for edge in range(self.csr.number_of_edges())
                    }
                    self._index = TrussIndex(self.graph, edge_trussness=edge_trussness)
        return self._index

    def has_index(self) -> bool:
        """Return ``True`` if the dict-path index has already been built."""
        return self._index is not None

    @property
    def kernel(self) -> "QueryKernel":
        """The CSR-native :class:`QueryKernel`, built lazily on first access."""
        if self._kernel is None:
            with self._lazy_lock:
                if self._kernel is None:
                    from repro.ctc.kernels import QueryKernel

                    self._kernel = QueryKernel(
                        self.csr,
                        self.trussness,
                        incidence=self.incidence,
                        on_enumerate=self._adopt_incidence,
                    )
        return self._kernel

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(version={self.version}, "
            f"nodes={self.csr.number_of_nodes()}, "
            f"edges={self.csr.number_of_edges()})"
        )


@dataclass
class EngineStats:
    """Cache and build counters (cumulative over the engine's lifetime).

    ``misses == delta_applies + full_rebuilds``: every miss is served by
    exactly one of the two build paths.

    ``incidence_patches`` counts snapshots whose triangle incidence was
    carried forward by :func:`~repro.graph.csr_triangles.patch_incidence`
    on the delta path; ``incidence_enumerations`` counts *full* triangle
    enumerations run on the engine's behalf — by a vector-strategy full
    rebuild or by a kernel's lazy
    :meth:`~repro.ctc.kernels.QueryKernel.ensure_incidence`.  A healthy
    delta-path workload shows ``incidence_enumerations`` frozen after
    warm-up while ``incidence_patches`` tracks ``delta_applies`` — the
    property the windowed-churn bench asserts instead of timing it.

    ``leases`` counts snapshot pins handed out via :meth:`CTCEngine.lease`;
    ``deferred_reclamations`` counts the times an over-capacity LRU sweep
    had to skip a pinned version (its eviction runs when the last lease
    releases instead).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    delta_applies: int = 0
    full_rebuilds: int = 0
    time_travel_reads: int = 0
    incidence_patches: int = 0
    incidence_enumerations: int = 0
    leases: int = 0
    deferred_reclamations: int = 0
    build_seconds: float = field(default=0.0)

    def as_dict(self) -> dict[str, float]:
        """Return the counters as a plain dict (for CLI/benchmark reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "delta_applies": self.delta_applies,
            "full_rebuilds": self.full_rebuilds,
            "time_travel_reads": self.time_travel_reads,
            "incidence_patches": self.incidence_patches,
            "incidence_enumerations": self.incidence_enumerations,
            "leases": self.leases,
            "deferred_reclamations": self.deferred_reclamations,
            "build_seconds": self.build_seconds,
        }


class SnapshotLease:
    """A pin on one snapshot version, released via ``with`` or :meth:`release`.

    While any lease on a version is outstanding the engine's LRU will not
    reclaim that version's snapshot, and :meth:`CTCEngine.snapshot_at` keeps
    serving it even after the delta log has trimmed past it.  Leases are
    obtained from :meth:`CTCEngine.lease`; :meth:`release` is idempotent and
    runs the deferred reclamation sweep when the last pin on the version
    drops.
    """

    __slots__ = ("_engine", "snapshot", "_released")

    def __init__(self, engine: "CTCEngine", snapshot: EngineSnapshot) -> None:
        self._engine = engine
        self.snapshot = snapshot
        self._released = False

    @property
    def version(self) -> int:
        """The pinned store version."""
        return self.snapshot.version

    @property
    def released(self) -> bool:
        """Whether this lease has already been released."""
        return self._released

    def query(
        self, query: Sequence[Hashable], method: str = "lctc", *, kernel: str = "csr", **kwargs
    ) -> CommunityResult:
        """Answer one query against the pinned snapshot (never a newer one)."""
        from repro.ctc.api import search

        return search(self.snapshot, query, method=method, kernel=kernel, **kwargs)

    def release(self) -> None:
        """Drop the pin (idempotent); reclamation may then evict the version."""
        if self._released:
            return
        self._released = True
        self._engine._unpin(self.snapshot.version)

    def __enter__(self) -> "SnapshotLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "held"
        return f"{type(self).__name__}(version={self.snapshot.version}, {state})"


class CTCEngine:
    """Query engine owning one mutable store and an LRU of frozen snapshots.

    Parameters
    ----------
    graph:
        Initial graph content.  Copied by default so later engine mutations
        never surprise the caller; pass ``copy=False`` to adopt the graph as
        the store (the caller must then mutate it only through the engine).
    cache_size:
        How many distinct graph versions keep their snapshot cached
        (``>= 1``).
    copy:
        Whether to copy ``graph`` on construction.
    delta_threshold:
        Rebuild-policy knob: delta-apply while the composed delta's size is
        at most this fraction of the base snapshot's edge count
        (``math.inf`` = always prefer delta apply, ``0`` = always rebuild
        from scratch).
    delta_log_limit:
        How many per-mutation deltas the log retains (``0`` disables the
        log and with it the delta path).
    decomp:
        Decomposition strategy for full rebuilds (CLI: ``--decomp``):
        ``"auto"`` (default) picks the level-synchronous vector peel or the
        sequential bucket queue by snapshot size, ``"vector"`` / ``"bucket"``
        pin one — see :mod:`repro.trusses.csr_decomposition`.  Both produce
        bit-identical trussness; the knob is purely a performance decision.
    durability:
        ``None`` (default) keeps the engine RAM-only.  A
        :class:`~repro.engine.persistence.DurabilityConfig` (or a bare
        data-directory path) makes the engine crash-safe: every mutation's
        delta is appended to the directory's write-ahead log *before* the
        version bump, :meth:`checkpoint` publishes atomic snapshot
        checkpoints (auto-triggered by the config's delta-count/size
        policy, trimming the WAL behind them), and
        :meth:`CTCEngine.recover` restores the whole store after a crash.
        The data directory must be fresh — adopting one with existing
        state raises :class:`~repro.exceptions.ConfigurationError`
        (recover it instead).  Call :meth:`close` to flush the WAL on
        clean shutdown.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> engine = CTCEngine(complete_graph(5))
    >>> engine.query([0, 1]).trussness
    5
    >>> engine.add_edge(0, 5)                 # logged as a GraphDelta
    >>> _ = engine.snapshot()                 # patched, not rebuilt
    >>> engine.stats.delta_applies
    1
    """

    def __init__(
        self,
        graph: UndirectedGraph | None = None,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        copy: bool = True,
        delta_threshold: float = DEFAULT_DELTA_THRESHOLD,
        delta_log_limit: int = DEFAULT_DELTA_LOG_LIMIT,
        decomp: str = "auto",
        durability: DurabilityConfig | str | os.PathLike | None = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if delta_threshold < 0:
            raise ValueError(f"delta_threshold must be >= 0, got {delta_threshold}")
        if delta_log_limit < 0:
            raise ValueError(f"delta_log_limit must be >= 0, got {delta_log_limit}")
        if decomp not in ("auto", "vector", "bucket"):
            raise ValueError(
                f"decomp must be 'auto', 'vector' or 'bucket', got {decomp!r}"
            )
        if graph is None:
            self._graph = UndirectedGraph()
        else:
            self._graph = graph.copy() if copy else graph
        self._version = 0
        self._cache_size = cache_size
        self._delta_threshold = delta_threshold
        self._delta_log_limit = delta_log_limit
        self._decomp = decomp
        self._cache: OrderedDict[int, EngineSnapshot] = OrderedDict()
        #: version -> delta that produced it (contiguous, bounded window).
        self._delta_log: OrderedDict[int, GraphDelta] = OrderedDict()
        #: Guards every bookkeeping step (version/log/cache/stats/pins);
        #: re-entrant so mutations may nest (maintainer cascades, window
        #: expiry inside add_edge).  Heavy builds run outside it.
        self._mutex = threading.RLock()
        #: version -> outstanding lease count (epoch pins).
        self._pins: dict[int, int] = {}
        #: versions whose reclamation was deferred by a pin; evicted late
        #: (on last unpin) rather than never.
        self._deferred: set[int] = set()
        #: version -> completion event of an in-flight snapshot build, so
        #: concurrent misses on one version build it exactly once.
        self._building: dict[int, threading.Event] = {}
        self.stats = EngineStats()
        #: A frozen CSR the mutable store can be thawed from on demand;
        #: set by :meth:`recover`/:meth:`from_arrays` so cold starts skip
        #: the O(m) Python graph reconstruction until a mutation (or a
        #: direct store read) actually needs it.
        self._lazy_csr: CSRGraph | None = None
        #: Durability layer (``None`` = RAM-only); set by ``durability=``
        #: on a fresh directory or adopted by :meth:`recover`.
        self._durability: DurabilityManager | None = None
        #: What the last :meth:`recover` did (``None`` on fresh engines).
        self.last_recovery: RecoveryReport | None = None
        if durability is not None:
            manager = DurabilityManager.create(DurabilityConfig.coerce(durability))
            # Bootstrap record: the initial graph as a version-0 delta, so
            # WAL-only recovery (no checkpoint yet) starts from the right
            # store instead of an empty one.
            bootstrap = GraphDelta(
                added_nodes=self._graph.nodes(), added_edges=self._graph.edges()
            )
            if not bootstrap.is_empty():
                manager.append(0, bootstrap)
            self._durability = manager

    @classmethod
    def from_arrays(
        cls,
        csr: CSRGraph,
        trussness: np.ndarray | None = None,
        *,
        supports: np.ndarray | None = None,
        incidence: TriangleIncidence | None = None,
        **kwargs,
    ) -> "CTCEngine":
        """Build an engine whose store is thawed from frozen snapshot arrays.

        This is the worker-process entry point of the serving layer: a shard
        worker attaches the parent's shared-memory CSR buffers
        (:meth:`CSRGraph.from_shared`) and hands them here.  The mutable
        store is thawed via :meth:`CSRGraph.to_graph`; when ``trussness`` is
        given, the already-decomposed artifacts seed the version-0 snapshot
        so the worker's first queries skip the from-scratch decomposition
        entirely.  The arrays may be read-only (shared) views — snapshots
        never mutate them.

        On :class:`CTCEngine` itself (not subclasses, whose constructors
        derive bookkeeping from the store) the mutable dict-form store is
        additionally thawed *lazily*: a worker serving only array-kernel
        queries never pays the O(m) Python graph reconstruction.
        """
        # Subclasses derive constructor-time bookkeeping from the store,
        # and a durable engine's bootstrap WAL record snapshots it — both
        # need the dict form eagerly.
        lazy = (
            cls is CTCEngine
            and trussness is not None
            and kwargs.get("durability") is None
        )
        if lazy:
            engine = cls(UndirectedGraph(), copy=False, **kwargs)
            engine._lazy_csr = csr
        else:
            engine = cls(csr.to_graph(), copy=False, **kwargs)
        if trussness is not None:
            seeded = EngineSnapshot(
                version=0,
                graph=None if lazy else engine._graph.copy(),
                csr=csr,
                trussness=trussness,
                supports=supports,
                incidence=incidence,
                on_enumerate=engine._note_enumeration,
            )
            engine._store(seeded)
        return engine

    # ------------------------------------------------------------------
    # store access
    # ------------------------------------------------------------------
    def _ensure_store(self) -> None:
        """Thaw the mutable store from a lazily held CSR (no-op otherwise)."""
        if self._lazy_csr is None:
            return
        with self._mutex:
            if self._lazy_csr is None:
                return
            self._graph = self._lazy_csr.to_graph()
            self._lazy_csr = None

    @property
    def graph(self) -> UndirectedGraph:
        """The live mutable store.

        Mutate it only through the engine's mutation methods (or a
        :meth:`maintainer`); direct mutation bypasses version tracking and
        leaves stale snapshots in the cache.
        """
        self._ensure_store()
        return self._graph

    @property
    def version(self) -> int:
        """The current store version (bumped by every effective mutation)."""
        return self._version

    @property
    def delta_threshold(self) -> float:
        """The rebuild-policy threshold (see the class docstring)."""
        return self._delta_threshold

    @property
    def cache_size(self) -> int:
        """How many snapshot versions the LRU retains."""
        return self._cache_size

    @property
    def decomp(self) -> str:
        """The full-rebuild decomposition strategy (see the class docstring)."""
        return self._decomp

    def _record(self, delta: GraphDelta) -> None:
        """Log one effective mutation: bump the version and append its delta.

        With durability on, the delta hits the write-ahead log *before*
        the version bump (classic WAL ordering: the store never
        acknowledges a version whose delta is not on disk), and the
        checkpoint policy runs after — still under the re-entrant mutex,
        so the auto-checkpoint's snapshot build is ordinary re-entry.
        """
        if delta.is_empty():
            return
        with self._mutex:
            if self._durability is not None:
                self._durability.append(self._version + 1, delta)
            self._version += 1
            self.stats.invalidations += 1
            if self._delta_log_limit:
                self._delta_log[self._version] = delta
                while len(self._delta_log) > self._delta_log_limit:
                    self._delta_log.popitem(last=False)
            if self._durability is not None and self._durability.checkpoint_due():
                self.checkpoint()

    # ------------------------------------------------------------------
    # mutations (every effective one bumps the version and logs a delta)
    # ------------------------------------------------------------------
    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add edge ``(u, v)`` to the store; a no-op if already present."""
        with self._mutex:
            self._ensure_store()
            if self._graph.has_edge(u, v):
                return
            added_nodes = [node for node in (u, v) if not self._graph.has_node(node)]
            self._graph.add_edge(u, v)
            self._record(GraphDelta(added_nodes=added_nodes, added_edges=[(u, v)]))

    def add_edges_from(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Add every edge in ``edges``; bumps the version once if anything changed.

        The bump (and the logged delta covering everything added so far)
        happens even if the iterable fails part-way (bad tuple, self-loop):
        edges added before the failure are in the store, so the cache must
        not keep serving the pre-mutation snapshot.
        """
        added_nodes: set[Hashable] = set()
        added_edges: list[tuple[Hashable, Hashable]] = []
        with self._mutex:
            self._ensure_store()
            try:
                for u, v in edges:
                    if self._graph.has_edge(u, v):
                        continue
                    fresh = [node for node in (u, v) if not self._graph.has_node(node)]
                    self._graph.add_edge(u, v)
                    added_nodes.update(fresh)
                    added_edges.append((u, v))
            finally:
                self._record(GraphDelta(added_nodes=added_nodes, added_edges=added_edges))

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove edge ``(u, v)`` from the store.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        with self._mutex:
            self._ensure_store()
            self._graph.remove_edge(u, v)
            self._record(GraphDelta(removed_edges=[(u, v)]))

    def add_node(self, node: Hashable) -> None:
        """Add ``node`` to the store; a no-op if already present."""
        with self._mutex:
            self._ensure_store()
            if self._graph.has_node(node):
                return
            self._graph.add_node(node)
            self._record(GraphDelta(added_nodes=[node]))

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and its incident edges from the store.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the store.
        """
        with self._mutex:
            self._ensure_store()
            neighbors = list(self._graph.neighbors(node))  # raises NodeNotFoundError
            self._graph.remove_node(node)
            self._record(
                GraphDelta(
                    removed_nodes=[node],
                    removed_edges=[(node, other) for other in neighbors],
                )
            )

    # ------------------------------------------------------------------
    # maintenance integration (Algorithm 3 hooks)
    # ------------------------------------------------------------------
    def maintainer(self, k: int) -> KTrussMaintainer:
        """Return a :class:`KTrussMaintainer` bound **in place** to the store.

        Deletion cascades run through the returned maintainer mutate the
        store directly and feed the engine's delta log via the maintainer's
        mutation hooks — this is the supported way to apply Algorithm 3
        deletions to an engine-owned graph.

        The maintainer's edge-support table is computed at creation time,
        so it is only valid while it is the sole mutation channel: if the
        store is mutated through anything else afterwards (``add_edge``,
        ``remove_node``, another maintainer, ...), further cascades raise
        :class:`~repro.exceptions.StaleMaintainerError` — obtain a fresh
        maintainer instead.
        """
        return _EngineMaintainer(self, k)

    def delete_vertices(self, vertices: Iterable[Hashable], k: int) -> tuple[set, set]:
        """Delete ``vertices`` from the store, restoring the k-truss property.

        Convenience wrapper over :meth:`maintainer`; returns the
        ``(removed_vertices, removed_edges)`` pair of
        :meth:`KTrussMaintainer.delete_vertices`.
        """
        return self.maintainer(k).delete_vertices(vertices)

    # ------------------------------------------------------------------
    # durability (WAL + checkpoints; see repro.engine.persistence)
    # ------------------------------------------------------------------
    @property
    def durability(self) -> DurabilityManager | None:
        """The durability layer, or ``None`` for a RAM-only engine."""
        return self._durability

    def durability_stats(self) -> dict | None:
        """WAL/checkpoint counters (``None`` for a RAM-only engine)."""
        if self._durability is None:
            return None
        return self._durability.stats()

    def checkpoint(self) -> str:
        """Publish an atomic checkpoint of the current version; return its path.

        Resolves the current snapshot (delta apply or rebuild as usual),
        writes its arrays plus a checksummed manifest into the data
        directory via the stage-rename protocol, then trims the WAL
        records the checkpoint now covers.  Also invoked automatically by
        the config's ``checkpoint_every`` / ``checkpoint_bytes`` policy.

        Raises
        ------
        ConfigurationError
            If the engine was built without ``durability=``.
        """
        if self._durability is None:
            raise ConfigurationError(
                "checkpoint() requires a durable engine; pass durability= "
                "to CTCEngine"
            )
        snapshot = self.snapshot()
        with self._mutex:
            return self._durability.write_checkpoint(snapshot)

    def close(self) -> None:
        """Flush and close the durability layer (no-op for RAM-only engines).

        Only buffered-WAL state is at stake: every append is flushed to
        the OS immediately, so even without :meth:`close` a killed process
        loses nothing — the final fsync here only hardens against the
        machine itself dying right after shutdown.
        """
        if self._durability is not None:
            self._durability.close()

    @classmethod
    def recover(
        cls,
        durability: DurabilityConfig | str | os.PathLike,
        **engine_kwargs,
    ) -> "CTCEngine":
        """Restore an engine from a data directory: checkpoint + WAL replay.

        The newest verifiable checkpoint seeds the store (arrays reopened
        with ``np.load(mmap_mode="r")`` — no decomposition, and the
        mutable dict-form store is thawed lazily on first mutation) and
        the WAL records past its version are replayed through the normal
        delta machinery, so the recovered engine's snapshots are
        bit-identical to an uninterrupted run's.  A torn WAL tail (crash mid-append) is
        truncated silently; mid-log damage raises
        :class:`~repro.exceptions.WalCorruptionError`.  The WAL stays
        attached: the recovered engine keeps logging (and checkpointing)
        into the same directory.

        ``engine_kwargs`` are the usual constructor knobs (``cache_size``,
        ``delta_threshold``, ``decomp``, ...; subclasses add their own,
        e.g. ``window=``).  The recovery details land on
        :attr:`last_recovery`.

        Raises
        ------
        ConfigurationError
            If the directory holds no durable state.
        WalCorruptionError
            On mid-log WAL damage or a checkpoint/WAL version gap.
        """
        for reserved in ("copy", "durability", "graph"):
            if reserved in engine_kwargs:
                raise ValueError(f"recover() manages {reserved!r} itself")
        started = time.perf_counter()
        config = DurabilityConfig.coerce(durability)
        manager, checkpoint, records, truncated = DurabilityManager.open_existing(
            config
        )
        try:
            engine = cls(UndirectedGraph(), copy=False, **engine_kwargs)
            base_version = 0
            if checkpoint is not None:
                # The mutable dict-form store is NOT rebuilt here: the
                # checkpoint's CSR is held lazily and thawed only when a
                # mutation (or direct store read) needs it, so a cold
                # start is queryable in O(mmap) rather than O(m) time.
                engine._lazy_csr = checkpoint.csr
                engine._version = checkpoint.version
                base_version = checkpoint.version
                seeded = EngineSnapshot(
                    version=checkpoint.version,
                    graph=None,  # thawed from csr on demand
                    csr=checkpoint.csr,
                    trussness=checkpoint.trussness,
                    supports=checkpoint.supports,
                    incidence=checkpoint.incidence,
                    on_enumerate=engine._note_enumeration,
                )
                engine._store(seeded)
            replayed = 0
            for version, delta in records:
                if checkpoint is not None and version <= base_version:
                    continue  # checkpointed before the trim landed; covered
                if version == 0:
                    # Bootstrap record: the initial store content.  Not a
                    # delta-log entry (version 0 has no producing delta).
                    _apply_delta_to_graph(engine._graph, delta)
                    continue
                if version != engine._version + 1:
                    raise WalCorruptionError(
                        f"WAL resumes at version {version} but the recovered "
                        f"state is at version {engine._version} — the log "
                        "was trimmed without its covering checkpoint",
                        path=config.wal_path,
                    )
                engine._ensure_store()
                _apply_delta_to_graph(engine._graph, delta)
                engine._version = version
                if engine._delta_log_limit:
                    engine._delta_log[version] = delta
                    while len(engine._delta_log) > engine._delta_log_limit:
                        engine._delta_log.popitem(last=False)
                replayed += 1
        except BaseException:
            manager.close()
            raise
        engine._durability = manager
        engine._post_recover()
        engine.last_recovery = RecoveryReport(
            checkpoint_version=(
                checkpoint.version if checkpoint is not None else None
            ),
            checkpoint_path=checkpoint.path if checkpoint is not None else None,
            wal_records=len(records),
            replayed_deltas=replayed,
            truncated_bytes=truncated,
            recovered_version=engine._version,
            seconds=time.perf_counter() - started,
        )
        return engine

    def _post_recover(self) -> None:
        """Subclass hook: rebuild derived bookkeeping after a recovery replay.

        Runs with the durability manager attached, so any mutations it
        issues (e.g. window expiry) are logged like live ones.
        """

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Return the snapshot for the current version, building it on a miss.

        A miss is served by the cheapest eligible path — delta apply from
        the newest cached snapshot the log can reach, or a full rebuild
        (see the module docstring's rebuild policy).
        """
        return self.snapshot_at(None)

    def retained_versions(self) -> tuple[int, int]:
        """Return the inclusive ``(oldest, newest)`` version range still readable.

        The newest retained version is the current one; the oldest is one
        *before* the oldest logged delta (unwinding the log backwards from
        the live store stops there).  With the delta log disabled only the
        current version is readable.  A pinned version older than the window
        additionally stays readable while its lease is held (its snapshot is
        served straight from the cache — see :meth:`lease`).
        """
        with self._mutex:
            if self._delta_log:
                return next(iter(self._delta_log)) - 1, self._version
            return self._version, self._version

    def snapshot_at(
        self, version: int | None = None, *, timeout: float | None = None
    ) -> EngineSnapshot:
        """Return the snapshot pinned at ``version`` (a time-travel read).

        ``None`` reads the current version.  A historical version is
        materialized from the nearest cached snapshot on either side of it —
        forward through composed log deltas, or backward through their
        composed inverses — falling back to unwinding the live store and
        decomposing from scratch when no cached base is within the
        ``delta_threshold`` budget.  The result is cached like any other
        snapshot, so repeated reads at one pinned version build it once.

        Thread-safe: bookkeeping runs under the engine mutex, the build
        itself outside it.  Concurrent misses on one version are coalesced —
        the first caller builds, the rest wait on its completion event and
        re-read the cache — and a cache hit never takes more than the mutex.

        ``timeout`` bounds the *coalesced wait*: a caller that would block
        on another thread's in-flight build gives up after ``timeout``
        seconds with :class:`~repro.exceptions.QueryTimeoutError` instead of
        stalling past its deadline (the serving layer's deadline
        propagation).  A caller that builds the snapshot itself is not
        interrupted — builds are not cancellable — so the bound applies to
        waiting, not to building.

        Raises
        ------
        VersionEvictedError
            If ``version`` predates the retained log window (see
            :meth:`retained_versions`) and no lease keeps it cached.
        ValueError
            If ``version`` is negative or has not been produced yet.
        QueryTimeoutError
            If ``timeout`` expired while waiting on another thread's build.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._mutex:
                target = self._version if version is None else version
                if target < 0 or target > self._version:
                    raise ValueError(
                        f"version {version} does not exist; the store is at "
                        f"version {self._version}"
                    )
                cached = self._cache.get(target)
                if cached is not None:
                    # Cache before eviction check: a pinned version stays
                    # readable even after the log trimmed past it.
                    self.stats.hits += 1
                    self._cache.move_to_end(target)
                    return cached
                if target != self._version:
                    if self._delta_log:
                        oldest = next(iter(self._delta_log)) - 1
                    else:
                        oldest = self._version
                    if target < oldest:
                        raise VersionEvictedError(target, (oldest, self._version))
                event = self._building.get(target)
                builder = event is None
                if builder:
                    event = threading.Event()
                    self._building[target] = event
                    self.stats.misses += 1
                    current = target == self._version
                    frozen: UndirectedGraph | None = None
                    if current:
                        base = self._delta_base(target)
                    else:
                        self.stats.time_travel_reads += 1
                        base = self._temporal_base(target)
                    if base is None:
                        # Freeze the store under the mutex; decompose outside.
                        self._ensure_store()
                        frozen = (
                            self._graph.copy() if current else self._graph_at(target)
                        )
            if not builder:
                # Another thread is already building this version: wait for
                # it to publish, then re-read the cache.  (The mutex is not
                # held here, so the builder can finish.)
                if deadline is None:
                    event.wait()
                elif not event.wait(max(0.0, deadline - time.monotonic())):
                    raise QueryTimeoutError(
                        f"snapshot build for version {target} did not complete "
                        f"within the {timeout}s deadline",
                        timeout=timeout,
                    )
                continue
            try:
                started = time.perf_counter()
                if base is not None:
                    built = self._build_from_delta(*base, target)
                else:
                    built = self._build_full(frozen, target)
                elapsed = time.perf_counter() - started
            except BaseException:
                with self._mutex:
                    self._building.pop(target, None)
                event.set()
                raise
            with self._mutex:
                if base is not None:
                    self.stats.delta_applies += 1
                else:
                    self.stats.full_rebuilds += 1
                self.stats.build_seconds += elapsed
                self._store(built)
                self._building.pop(target, None)
            event.set()
            return built

    # ------------------------------------------------------------------
    # epoch-pinned leases
    # ------------------------------------------------------------------
    def lease(
        self, version: int | None = None, *, timeout: float | None = None
    ) -> SnapshotLease:
        """Pin the snapshot at ``version`` (default: current) and return a lease.

        While the lease is held the LRU defers reclaiming the version, so
        the holder can keep resolving it via :meth:`snapshot_at` (or query
        the pinned :attr:`SnapshotLease.snapshot` directly) no matter how
        far the writer advances.  Release promptly — every deferred version
        is cache memory the sweep cannot reclaim.  ``timeout`` bounds the
        snapshot resolution exactly as in :meth:`snapshot_at`.
        """
        snapshot = self.snapshot_at(version, timeout=timeout)
        with self._mutex:
            # The snapshot may have been evicted between the resolve and the
            # pin (another thread's build overflowed the LRU): re-adopt it.
            if snapshot.version not in self._cache:
                self._cache[snapshot.version] = snapshot
            self._pins[snapshot.version] = self._pins.get(snapshot.version, 0) + 1
            self.stats.leases += 1
        return SnapshotLease(self, snapshot)

    def _unpin(self, version: int) -> None:
        """Drop one pin on ``version``; run the deferred sweep on the last.

        A version whose reclamation was deferred while pinned is evicted
        here (unless it is the current head): the eviction it dodged is
        merely late, not cancelled.
        """
        with self._mutex:
            count = self._pins.get(version, 0) - 1
            if count > 0:
                self._pins[version] = count
                return
            self._pins.pop(version, None)
            if (
                version in self._deferred
                and version != self._version
                and version in self._cache
            ):
                del self._cache[version]
                self.stats.evictions += 1
            self._deferred.discard(version)
            self._reclaim()

    def pinned_versions(self) -> list[int]:
        """Return the versions currently pinned by outstanding leases."""
        with self._mutex:
            return sorted(self._pins)

    def _store(self, built: EngineSnapshot) -> None:
        """Insert ``built`` into the LRU and reclaim any unpinned overflow."""
        self._cache[built.version] = built
        self._reclaim()

    def _reclaim(self) -> None:
        """Evict the stalest unpinned snapshots beyond capacity.

        Pinned versions are skipped (deferred reclamation, counted in
        :attr:`EngineStats.deferred_reclamations`); :meth:`_unpin` re-runs
        the sweep when the last lease on a version releases, so the cache
        shrinks back to capacity as soon as the pins allow.
        """
        overflow = len(self._cache) - self._cache_size
        if overflow <= 0:
            return
        for version in list(self._cache):
            if overflow <= 0:
                break
            if self._pins.get(version):
                self.stats.deferred_reclamations += 1
                self._deferred.add(version)
                continue
            del self._cache[version]
            self._deferred.discard(version)
            self.stats.evictions += 1
            overflow -= 1

    def _delta_base(self, version: int) -> tuple[EngineSnapshot, GraphDelta] | None:
        """Return the newest cached snapshot the policy allows patching from.

        ``None`` means full rebuild: the cache is cold, the log no longer
        covers the gap, or the composed delta is too large relative to the
        base snapshot for patching to win.
        """
        if self._delta_threshold <= 0 or not self._delta_log_limit:
            return None
        for base_version in sorted(self._cache, reverse=True):
            if base_version >= version:
                continue
            deltas = []
            for step in range(base_version + 1, version + 1):
                delta = self._delta_log.get(step)
                if delta is None:
                    # The log window no longer reaches this base; older
                    # bases need strictly more entries, so stop looking.
                    return None
                deltas.append(delta)
            composed = GraphDelta.chain(deltas)
            base = self._cache[base_version]
            budget = self._delta_threshold * max(1, base.csr.number_of_edges())
            if composed.size() <= budget:
                return base, composed
            # Too large from this base; an older base composes strictly more
            # mutations, but cancellation (remove + re-add) can still shrink
            # the net delta, so keep looking.
        return None

    def _temporal_base(self, version: int) -> tuple[EngineSnapshot, GraphDelta] | None:
        """Return the cheapest cached snapshot a pinned read can replay from.

        Unlike :meth:`_delta_base`, bases on *both* sides of ``version``
        qualify: older ones compose log deltas forward, newer ones compose
        the inverted deltas newest-first (backward replay).  Among the bases
        whose composed delta fits the ``delta_threshold`` budget, the one
        with the smallest composed delta wins; ``None`` means no cached base
        qualifies and the caller must rebuild from the unwound store.
        """
        if self._delta_threshold <= 0 or not self._delta_log_limit:
            return None
        best: tuple[EngineSnapshot, GraphDelta] | None = None
        for base_version, base in self._cache.items():
            if base_version == version:
                continue
            older, newer = sorted((base_version, version))
            deltas = [self._delta_log.get(step) for step in range(older + 1, newer + 1)]
            if any(delta is None for delta in deltas):
                continue
            if base_version < version:
                composed = GraphDelta.chain(deltas)
            else:
                composed = GraphDelta.chain(delta.inverted() for delta in reversed(deltas))
            budget = self._delta_threshold * max(1, base.csr.number_of_edges())
            if composed.size() > budget:
                continue
            if best is None or composed.size() < best[1].size():
                best = (base, composed)
        return best

    def _graph_at(self, version: int) -> UndirectedGraph:
        """Return a private copy of the store's graph as of ``version``.

        Unwinds the live store backwards by applying the inverted log
        deltas newest-first; the caller guarantees ``version`` lies inside
        :meth:`retained_versions`.
        """
        frozen = self._graph.copy()
        for step in range(self._version, version, -1):
            _apply_delta_to_graph(frozen, self._delta_log[step].inverted())
        return frozen

    def _build_full(self, frozen: UndirectedGraph, version: int) -> EngineSnapshot:
        """Decompose the pre-frozen ``frozen`` graph (version ``version``) from scratch.

        The caller froze the store under the engine mutex (a plain copy for
        the current version, a :meth:`_graph_at` reconstruction for a
        historical one); the decomposition here runs without any lock.
        Runs triangle enumeration + decomposition once via
        :func:`~repro.trusses.csr_decomposition.csr_decompose` (strategy
        from the ``decomp`` knob) and hands every artifact of the pass —
        trussness, supports, and the triangle incidence when the vector
        strategy enumerated one — to the snapshot, so nothing is computed
        twice downstream.  The dict-path :class:`TrussIndex` (and its O(m)
        canonical-edge-key trussness dict) is *not* built here —
        :attr:`EngineSnapshot.index` materializes it on first dict-path
        access.
        """
        csr = CSRGraph.from_graph(frozen)
        result = csr_decompose(csr, method=self._decomp)
        if result.incidence is not None:
            self._note_enumeration()
        return EngineSnapshot(
            version=version,
            graph=frozen,
            csr=csr,
            trussness=result.trussness,
            supports=result.supports,
            incidence=result.incidence,
            on_enumerate=self._note_enumeration,
        )

    def _note_enumeration(self) -> None:
        """Count one full triangle enumeration (see :class:`EngineStats`)."""
        with self._mutex:
            self.stats.incidence_enumerations += 1

    def _build_from_delta(
        self, base: EngineSnapshot, delta: GraphDelta, version: int
    ) -> EngineSnapshot:
        """Patch ``base`` with ``delta``: the incremental leg of the pipeline."""
        if delta.is_empty():
            # Mutations cancelled out (e.g. an edge removed and re-added):
            # the base snapshot's content is exactly current, so every
            # derived structure (index, kernel) can be shared as-is.
            clone = EngineSnapshot(
                version=version,
                graph=base.graph,
                csr=base.csr,
                trussness=base.trussness,
                index=base._index,
                supports=base._supports,
                incidence=base.incidence,
                on_enumerate=self._note_enumeration,
            )
            clone._kernel = base._kernel
            return clone

        frozen = base.graph.copy()
        _apply_delta_to_graph(frozen, delta)

        patch = base.csr.apply_delta(delta)
        incidence: TriangleIncidence | None = None
        if base.incidence is not None:
            # Carry the triangle incidence across the patch so the csr
            # kernel of the new snapshot never re-enumerates (and the
            # maintenance below reads triangles straight off it).
            incidence = patch_incidence(base.incidence, patch)
            with self._mutex:
                self.stats.incidence_patches += 1
        trussness, changed = incremental_truss_update(
            base.csr,
            base.trussness,
            patch,
            incidence=base.incidence,
            new_incidence=incidence,
        )
        csr = patch.csr

        index: TrussIndex | None = None
        if base.has_index():
            # The base version served dict-path consumers, so keep the
            # patched index warm; otherwise stay lazy and skip the work.
            trussness_updates: dict = {}
            touched_nodes = delta.touched_labels() - delta.removed_nodes
            for edge in changed.tolist():
                trussness_updates[csr.edge_key_of(edge)] = int(trussness[edge])
                u, v = csr.edge_endpoint_ids(edge)
                touched_nodes.add(csr.node_label(u))
                touched_nodes.add(csr.node_label(v))
            index = base.index.patched(
                frozen,
                trussness_updates=trussness_updates,
                dropped_edges=delta.removed_edges,
                dropped_nodes=delta.removed_nodes,
                touched_nodes=touched_nodes,
            )
        return EngineSnapshot(
            version=version,
            graph=frozen,
            csr=csr,
            trussness=trussness,
            index=index,
            supports=incidence.supports if incidence is not None else None,
            incidence=incidence,
            on_enumerate=self._note_enumeration,
        )

    def cached_versions(self) -> list[int]:
        """Return the versions currently cached, oldest first."""
        with self._mutex:
            return list(self._cache)

    def logged_versions(self) -> list[int]:
        """Return the versions currently covered by the delta log, oldest first."""
        with self._mutex:
            return list(self._delta_log)

    def clear_cache(self) -> None:
        """Drop every cached snapshot except pinned ones (rebuilt on demand)."""
        with self._mutex:
            if self._pins:
                self._cache = OrderedDict(
                    (version, snapshot)
                    for version, snapshot in self._cache.items()
                    if self._pins.get(version)
                )
            else:
                self._cache.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        query: Sequence[Hashable],
        method: str = "lctc",
        *,
        kernel: str = "csr",
        at_version: int | None = None,
        **kwargs,
    ) -> CommunityResult:
        """Answer one CTC/baseline query from the current (or a pinned) snapshot.

        ``method`` and keyword arguments are those of
        :func:`repro.ctc.api.search`.  ``kernel`` selects the execution
        path: ``"csr"`` (default) runs the CTC methods on the snapshot's
        array kernels, ``"dict"`` forces the classic dict path through the
        snapshot's (lazily built) :class:`TrussIndex`.  ``at_version`` pins
        the read to a historical store version via :meth:`snapshot_at` (a
        time-travel read; ``None`` reads the current version).  Either way
        no per-query decomposition happens.
        """
        from repro.ctc.api import search

        return search(
            self.snapshot_at(at_version), query, method=method, kernel=kernel, **kwargs
        )

    def query_batch(
        self,
        queries: Iterable[Sequence[Hashable]],
        method: str = "lctc",
        *,
        kernel: str = "csr",
        at_version: int | None = None,
        **kwargs,
    ) -> list[CommunityResult]:
        """Answer many queries against one pinned snapshot.

        The snapshot is resolved once up front, so every query in the batch
        sees the same graph version even if another thread of control
        mutates the store mid-batch.  ``kernel`` and ``at_version`` are as
        in :meth:`query`.
        """
        from repro.ctc.api import search

        snapshot = self.snapshot_at(at_version)
        return [
            search(snapshot, query, method=method, kernel=kernel, **kwargs)
            for query in queries
        ]

    def __repr__(self) -> str:
        # A lazy (not-yet-thawed) store answers counts from the CSR so
        # repr never forces the O(m) reconstruction.
        store = self._lazy_csr if self._lazy_csr is not None else self._graph
        return (
            f"{type(self).__name__}(version={self._version}, "
            f"nodes={store.number_of_nodes()}, "
            f"edges={store.number_of_edges()}, "
            f"cached={len(self._cache)}/{self._cache_size})"
        )


class _EngineMaintainer(KTrussMaintainer):
    """A :class:`KTrussMaintainer` bound to an engine's live store.

    Adds two behaviours over the base class: every effective cascade feeds
    its :class:`GraphDelta` into the engine's log (version bump + cache
    invalidation), and cascades refuse to run if the store was mutated
    through any other channel since this maintainer was created (its
    support table would be stale — see
    :class:`~repro.exceptions.StaleMaintainerError`).
    """

    def __init__(self, engine: CTCEngine, k: int) -> None:
        super().__init__(engine.graph, k, copy_graph=False)
        self._engine = engine
        self._expected_version = engine.version
        self.register_mutation_hook(self._on_cascade)

    def _on_cascade(self, delta: GraphDelta) -> None:
        self._engine._record(delta)
        self._expected_version = self._engine.version

    def delete_vertices(self, vertices: Iterable[Hashable]) -> tuple[set, set]:
        with self._engine._mutex:
            if self._engine.version != self._expected_version:
                raise StaleMaintainerError(
                    f"the engine's store moved from version {self._expected_version} "
                    f"to {self._engine.version} since this maintainer was created; "
                    "its support table is stale — obtain a fresh maintainer via "
                    "CTCEngine.maintainer()"
                )
            return super().delete_vertices(vertices)
