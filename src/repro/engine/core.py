""":class:`CTCEngine`: serve many CTC queries from cached, read-optimized snapshots.

The paper assumes an offline-indexed setting: build the truss index once,
then answer queries against it (Table 3 prices index construction separately
from query time).  The seed implementation of :func:`repro.ctc.api.search`
nonetheless rebuilt a :class:`TrussIndex` per call whenever handed a plain
graph, so repeated queries paid the full O(rho * m) decomposition every
time.

``CTCEngine`` closes that gap with an HTAP-replica design (cf. Polynesia,
arXiv:2103.00798): one **mutable store** (an
:class:`~repro.graph.simple_graph.UndirectedGraph`) absorbs updates, while
every analytical query is served from a **frozen snapshot** of that store —
a :class:`~repro.graph.csr.CSRGraph` plus a :class:`TrussIndex` whose
decomposition ran on the CSR fast path.

Caching / invalidation contract
-------------------------------
* The store carries a monotonically increasing **version**; every mutation
  that actually changes the graph bumps it (no-ops such as re-adding an
  existing edge do not).
* Snapshots are memoized in an LRU keyed by version, so a burst of queries
  against an unchanging graph builds exactly one snapshot, and an
  alternating read/write workload can still hit older cached versions while
  a handle to them is useful.
* Mutations routed through a :class:`KTrussMaintainer` obtained from
  :meth:`CTCEngine.maintainer` invalidate the cache through the
  maintainer's mutation hooks: any cascade that removes something bumps the
  version.
* A snapshot, once built, is immutable: it holds a private frozen copy of
  the store, so in-flight results never see later mutations.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.ctc.result import CommunityResult
from repro.exceptions import StaleMaintainerError
from repro.graph.csr import CSRGraph
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.decomposition import truss_decomposition
from repro.trusses.index import TrussIndex
from repro.trusses.maintenance import KTrussMaintainer

__all__ = ["CTCEngine", "EngineSnapshot", "EngineStats"]

#: Default number of graph versions whose snapshots stay cached.
DEFAULT_CACHE_SIZE = 4


@dataclass(frozen=True)
class EngineSnapshot:
    """One frozen, fully-indexed version of the engine's store.

    Attributes
    ----------
    version:
        The store version this snapshot was built from.
    graph:
        A private frozen copy of the store at that version (never mutated).
    csr:
        The CSR form of ``graph`` (the read replica the decomposition ran on).
    index:
        A :class:`TrussIndex` over ``graph``, built from the CSR-path
        decomposition.
    """

    version: int
    graph: UndirectedGraph
    csr: CSRGraph
    index: TrussIndex


@dataclass
class EngineStats:
    """Cache and build counters (cumulative over the engine's lifetime)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    build_seconds: float = field(default=0.0)

    def as_dict(self) -> dict[str, float]:
        """Return the counters as a plain dict (for CLI/benchmark reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "build_seconds": self.build_seconds,
        }


class CTCEngine:
    """Query engine owning one mutable store and an LRU of frozen snapshots.

    Parameters
    ----------
    graph:
        Initial graph content.  Copied by default so later engine mutations
        never surprise the caller; pass ``copy=False`` to adopt the graph as
        the store (the caller must then mutate it only through the engine).
    cache_size:
        How many distinct graph versions keep their snapshot cached
        (``>= 1``).
    copy:
        Whether to copy ``graph`` on construction.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> engine = CTCEngine(complete_graph(5))
    >>> engine.query([0, 1]).trussness
    5
    >>> engine.stats.misses, engine.stats.hits
    (1, 0)
    >>> _ = engine.query([1, 2])          # same version: snapshot reused
    >>> engine.stats.misses, engine.stats.hits
    (1, 1)
    """

    def __init__(
        self,
        graph: UndirectedGraph | None = None,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        copy: bool = True,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if graph is None:
            self._graph = UndirectedGraph()
        else:
            self._graph = graph.copy() if copy else graph
        self._version = 0
        self._cache_size = cache_size
        self._cache: OrderedDict[int, EngineSnapshot] = OrderedDict()
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # store access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> UndirectedGraph:
        """The live mutable store.

        Mutate it only through the engine's mutation methods (or a
        :meth:`maintainer`); direct mutation bypasses version tracking and
        leaves stale snapshots in the cache.
        """
        return self._graph

    @property
    def version(self) -> int:
        """The current store version (bumped by every effective mutation)."""
        return self._version

    def _bump(self) -> None:
        self._version += 1
        self.stats.invalidations += 1

    # ------------------------------------------------------------------
    # mutations (every effective one bumps the version)
    # ------------------------------------------------------------------
    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add edge ``(u, v)`` to the store; a no-op if already present."""
        if not self._graph.has_edge(u, v):
            self._graph.add_edge(u, v)
            self._bump()

    def add_edges_from(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Add every edge in ``edges``; bumps the version once if anything changed.

        The bump happens even if the iterable fails part-way (bad tuple,
        self-loop): edges added before the failure are in the store, so the
        cache must not keep serving the pre-mutation snapshot.
        """
        changed = False
        try:
            for u, v in edges:
                if not self._graph.has_edge(u, v):
                    self._graph.add_edge(u, v)
                    changed = True
        finally:
            if changed:
                self._bump()

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove edge ``(u, v)`` from the store.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        self._graph.remove_edge(u, v)
        self._bump()

    def add_node(self, node: Hashable) -> None:
        """Add ``node`` to the store; a no-op if already present."""
        if not self._graph.has_node(node):
            self._graph.add_node(node)
            self._bump()

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and its incident edges from the store.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the store.
        """
        self._graph.remove_node(node)
        self._bump()

    # ------------------------------------------------------------------
    # maintenance integration (Algorithm 3 hooks)
    # ------------------------------------------------------------------
    def maintainer(self, k: int) -> KTrussMaintainer:
        """Return a :class:`KTrussMaintainer` bound **in place** to the store.

        Deletion cascades run through the returned maintainer mutate the
        store directly and invalidate cached snapshots via the maintainer's
        mutation hooks — this is the supported way to apply Algorithm 3
        deletions to an engine-owned graph.

        The maintainer's edge-support table is computed at creation time,
        so it is only valid while it is the sole mutation channel: if the
        store is mutated through anything else afterwards (``add_edge``,
        ``remove_node``, another maintainer, ...), further cascades raise
        :class:`~repro.exceptions.StaleMaintainerError` — obtain a fresh
        maintainer instead.
        """
        return _EngineMaintainer(self, k)

    def delete_vertices(self, vertices: Iterable[Hashable], k: int) -> tuple[set, set]:
        """Delete ``vertices`` from the store, restoring the k-truss property.

        Convenience wrapper over :meth:`maintainer`; returns the
        ``(removed_vertices, removed_edges)`` pair of
        :meth:`KTrussMaintainer.delete_vertices`.
        """
        return self.maintainer(k).delete_vertices(vertices)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Return the snapshot for the current version, building it on a miss.

        The build freezes the store, converts it to CSR, runs the array-path
        truss decomposition, and assembles a :class:`TrussIndex` from the
        precomputed trussness (so the index build skips its own
        decomposition).
        """
        version = self._version
        cached = self._cache.get(version)
        if cached is not None:
            self.stats.hits += 1
            self._cache.move_to_end(version)
            return cached

        self.stats.misses += 1
        started = time.perf_counter()
        frozen = self._graph.copy()
        csr = CSRGraph.from_graph(frozen)
        # Dispatches to the CSR array path and returns the edge-key dict.
        edge_trussness = truss_decomposition(csr)
        index = TrussIndex(frozen, edge_trussness=edge_trussness)
        built = EngineSnapshot(version=version, graph=frozen, csr=csr, index=index)
        self.stats.build_seconds += time.perf_counter() - started

        self._cache[version] = built
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return built

    def cached_versions(self) -> list[int]:
        """Return the versions currently cached, oldest first."""
        return list(self._cache)

    def clear_cache(self) -> None:
        """Drop every cached snapshot (they are rebuilt on demand)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        query: Sequence[Hashable],
        method: str = "lctc",
        **kwargs,
    ) -> CommunityResult:
        """Answer one CTC/baseline query from the current snapshot.

        ``method`` and keyword arguments are those of
        :func:`repro.ctc.api.search`; the snapshot's prebuilt index is
        passed, so no per-query decomposition happens.
        """
        from repro.ctc.api import search

        return search(self.snapshot().index, query, method=method, **kwargs)

    def query_batch(
        self,
        queries: Iterable[Sequence[Hashable]],
        method: str = "lctc",
        **kwargs,
    ) -> list[CommunityResult]:
        """Answer many queries against one pinned snapshot.

        The snapshot is resolved once up front, so every query in the batch
        sees the same graph version even if another thread of control
        mutates the store mid-batch.
        """
        from repro.ctc.api import search

        index = self.snapshot().index
        return [search(index, query, method=method, **kwargs) for query in queries]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(version={self._version}, "
            f"nodes={self._graph.number_of_nodes()}, "
            f"edges={self._graph.number_of_edges()}, "
            f"cached={len(self._cache)}/{self._cache_size})"
        )


class _EngineMaintainer(KTrussMaintainer):
    """A :class:`KTrussMaintainer` bound to an engine's live store.

    Adds two behaviours over the base class: every effective cascade bumps
    the engine version (cache invalidation), and cascades refuse to run if
    the store was mutated through any other channel since this maintainer
    was created (its support table would be stale — see
    :class:`~repro.exceptions.StaleMaintainerError`).
    """

    def __init__(self, engine: CTCEngine, k: int) -> None:
        super().__init__(engine.graph, k, copy_graph=False)
        self._engine = engine
        self._expected_version = engine.version
        self.register_mutation_hook(self._on_cascade)

    def _on_cascade(self, removed_vertices: set, removed_edges: set) -> None:
        self._engine._bump()
        self._expected_version = self._engine.version

    def delete_vertices(self, vertices: Iterable[Hashable]) -> tuple[set, set]:
        if self._engine.version != self._expected_version:
            raise StaleMaintainerError(
                f"the engine's store moved from version {self._expected_version} "
                f"to {self._engine.version} since this maintainer was created; "
                "its support table is stale — obtain a fresh maintainer via "
                "CTCEngine.maintainer()"
            )
        return super().delete_vertices(vertices)
