""":class:`SlidingWindowEngine`: community search over a sliding edge window.

The temporal scenario family the community-search literature benchmarks on
(Enron email streams, temporal SBMs) serves queries against the *recent*
graph: edges arrive as a stream and expire once they fall out of a sliding
window.  This module implements that mode on top of :class:`CTCEngine`'s
delta pipeline — the windowed engine is a drop-in engine whose store always
holds exactly the most recently inserted edges.

Window semantics
----------------
The window is measured in **retained edges**: after every mutation the
store contains at most ``window`` edges, and the live set is the most
recently inserted ones.  Precisely:

* every effective :meth:`add_edge` stamps the edge with a fresh insertion
  sequence number; re-inserting an edge that is still live *refreshes* its
  stamp (the stream touched it again) without mutating the store;
* whenever the live-edge count exceeds ``window``, the stalest edges are
  expired — removed from the store through the normal engine mutation
  path, so each expiry is logged as a :class:`~repro.graph.delta.GraphDelta`
  and the next snapshot is maintained *incrementally* by the batch-deletion
  pass of :mod:`repro.trusses.incremental` instead of a full rebuild —
  including its triangle incidence, which the engine path carries forward
  via :func:`~repro.graph.csr_triangles.patch_incidence`, so the csr
  kernel never re-enumerates per expiry (``delta_threshold=0`` turns that
  off and rebuilds per expiry — the comparison
  ``benchmarks/bench_windowed_churn.py`` gates on, for both kernels);
* an endpoint that loses its last live edge to expiry is dropped with it,
  so the windowed store always equals the graph induced by the live edge
  set — the invariant the equivalence suite
  (``tests/engine/test_sliding_window.py``) pins against from-scratch
  decompositions.  Nodes added explicitly via :meth:`add_node` are the one
  exception: they are caller-owned and never expired.

Explicit :meth:`remove_edge` / :meth:`remove_node` calls simply evict the
affected edges from the window early.  Algorithm-3 maintainer cascades are
refused (:class:`~repro.exceptions.ConfigurationError`): they would remove
edges behind the window bookkeeping's back, and the windowed engine already
maintains trussness on every expiry.

Because the windowed engine *is* a :class:`CTCEngine`, everything else —
snapshot caching, the delta log, time-travel reads via
``query(..., at_version=v)`` — works unchanged on the windowed store.

Durability: ``SlidingWindowEngine(durability=...)`` logs arrivals *and*
expirations through the normal :meth:`CTCEngine._record` path (expiry is
just ``remove_edge``), so the WAL replays the exact windowed stream.
:meth:`CTCEngine.recover` restores the live edge set bit-identically; only
the *relative insertion order* of the recovered edges is approximated — the
window bookkeeping is re-seeded in canonical (``repr``-sorted) order, the
same convention used for initial-graph edges at construction — because the
per-edge stamps are derived bookkeeping, not persisted state.  The live
edge set, the store, and every snapshot are exact either way.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.engine.core import CTCEngine
from repro.exceptions import ConfigurationError
from repro.graph.keys import EdgeKey, edge_key
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.maintenance import KTrussMaintainer

__all__ = ["SlidingWindowEngine"]


class SlidingWindowEngine(CTCEngine):
    """A :class:`CTCEngine` that expires edges falling out of a sliding window.

    Parameters
    ----------
    graph:
        Optional initial content; its edges enter the window in canonical
        sorted order (oldest first) and are immediately trimmed to the
        newest ``window`` of them.
    window:
        Maximum number of live edges (``>= 1``).
    **engine_kwargs:
        Forwarded to :class:`CTCEngine` (``cache_size``,
        ``delta_threshold``, ``delta_log_limit``, ``decomp``, ``copy``).

    Examples
    --------
    >>> engine = SlidingWindowEngine(window=2)
    >>> for edge in [(0, 1), (1, 2), (2, 0)]:
    ...     engine.add_edge(*edge)
    >>> sorted(engine.graph.edges())  # (0, 1) expired
    [(1, 2), (2, 0)]
    """

    def __init__(
        self,
        graph: UndirectedGraph | None = None,
        *,
        window: int,
        **engine_kwargs,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        super().__init__(graph, **engine_kwargs)
        self._window = window
        self._insert_seq = 0
        #: Live edge -> its latest insertion sequence number.
        self._live: dict[EdgeKey, int] = {}
        #: (sequence, edge) pairs oldest-first; entries whose sequence no
        #: longer matches ``_live`` are stale (refreshed or removed early)
        #: and are skipped on expiry.
        self._fifo: deque[tuple[int, EdgeKey]] = deque()
        for key in sorted(self._graph.edges(), key=repr):
            self._stamp(key)
        self._expire()

    # ------------------------------------------------------------------
    @property
    def window(self) -> int:
        """The maximum number of live edges."""
        return self._window

    def window_edges(self) -> set[EdgeKey]:
        """Return the current live edge set (canonical keys, a fresh set)."""
        return set(self._live)

    def _stamp(self, key: EdgeKey) -> None:
        """Mark ``key`` as the most recently inserted live edge."""
        self._insert_seq += 1
        self._live[key] = self._insert_seq
        self._fifo.append((self._insert_seq, key))

    def _expire(self) -> None:
        """Evict the stalest live edges until the window invariant holds."""
        expired: list[EdgeKey] = []
        while len(self._live) > self._window:
            sequence, key = self._fifo.popleft()
            if self._live.get(key) != sequence:
                continue  # stale entry: refreshed later or removed early
            del self._live[key]
            expired.append(key)
        for u, v in expired:
            super().remove_edge(u, v)
        for node in {endpoint for key in expired for endpoint in key}:
            if self._graph.has_node(node) and self._graph.degree(node) == 0:
                super().remove_node(node)

    # ------------------------------------------------------------------
    # mutations (window bookkeeping wraps the engine's delta logging)
    # ------------------------------------------------------------------
    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Insert edge ``(u, v)`` into the window, expiring the stalest overflow.

        Re-inserting a live edge refreshes its window position without
        mutating the store.
        """
        with self._mutex:
            key = edge_key(u, v)
            if self._graph.has_edge(u, v):
                self._stamp(key)
                return
            super().add_edge(u, v)
            self._stamp(key)
            self._expire()

    def add_edges_from(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Insert every edge in stream order (one window step per edge).

        Unlike the base engine this bumps the version per effective edge:
        window expiry is interleaved with the insertions, so batching them
        into one delta would reorder expirations against arrivals.
        """
        with self._mutex:
            for u, v in edges:
                self.add_edge(u, v)

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove edge ``(u, v)`` from the store and the window early."""
        with self._mutex:
            super().remove_edge(u, v)
            self._live.pop(edge_key(u, v), None)

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node``; its incident edges leave the window early."""
        with self._mutex:
            neighbors = list(self._graph.neighbors(node))  # raises NodeNotFoundError
            super().remove_node(node)
            for other in neighbors:
                self._live.pop(edge_key(node, other), None)

    def _post_recover(self) -> None:
        """Re-seed the window bookkeeping from the recovered store.

        :meth:`CTCEngine.recover` replays WAL deltas straight onto the
        graph, bypassing :meth:`add_edge` — so ``_live``/``_fifo`` are
        empty while the store holds the recovered window.  Stamp every
        live edge in canonical order (matching the initial-graph
        convention in ``__init__``) and expire any overflow — relevant
        when recovering under a *smaller* ``window=`` than the one that
        produced the log; those expirations are logged like live ones.
        """
        self._ensure_store()  # window bookkeeping reads the dict store
        for key in sorted(self._graph.edges(), key=repr):
            self._stamp(key)
        self._expire()

    def maintainer(self, k: int) -> KTrussMaintainer:
        """Unsupported: cascades would bypass the window's edge bookkeeping."""
        raise ConfigurationError(
            "SlidingWindowEngine does not support Algorithm-3 maintainers: "
            "cascade deletions would remove edges behind the window's "
            "bookkeeping; mutate through add_edge/remove_edge instead"
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(window={len(self._live)}/{self._window}, "
            f"version={self.version}, nodes={self._graph.number_of_nodes()}, "
            f"edges={self._graph.number_of_edges()})"
        )
