""":class:`FaultPlan`: deterministic fault injection for the serving layer.

Production-scale serving treats worker failure as routine, but failures
that only happen "sometimes, under load" cannot be regression-tested.  A
``FaultPlan`` is a *scripted, seeded* schedule of faults that the
:class:`~repro.engine.serving.ServingEngine` consults at well-defined
points of its dispatch loop, so every recovery path — crash detection,
respawn + delta replay, requeue, quarantine, deadline expiry — can be
exercised deterministically by the test suite and the fault-recovery
benchmark (``benchmarks/bench_fault_recovery.py``).

Fault vocabulary
----------------
Faults are addressed by ``(shard, batch)`` where ``batch`` is the shard's
0-indexed *dispatch sequence number*: the Nth ``query_batch`` message the
front-end dispatches to that shard (thread mode counts its batches as
shard 0).

* :meth:`kill_worker` — the parent SIGKILLs the shard worker immediately
  before dispatching that batch, simulating a crash: the batch's queries
  hit the dead pipe and take the crash → respawn → requeue path.
* :meth:`delay_reply` — the worker computes the batch, then sleeps before
  replying (thread mode: each query sleeps before executing), simulating
  a stalled worker; with a ``timeout=`` this deterministically exercises
  the deadline path.
* :meth:`poison_query` — the worker exits mid-batch *without* replying
  (``os._exit``), simulating a query that takes its executor down; thread
  mode (where a pool thread cannot vanish) raises a ``RuntimeError``
  instead, exercising the per-query error slot.
* :meth:`fail_attach` — the next ``times`` (re)spawns of that shard's
  worker abort before attaching the shared-memory bundle, simulating an
  shm attach failure; with ``times >= max_respawns`` this drives the
  shard into quarantine.

Every fault actually applied is journaled in :attr:`events` (the applied
schedule, in application order), so tests and benchmarks can assert the
script ran as written.  :meth:`scripted_random` derives a schedule from a
seed — same seed, same faults — for randomized-but-reproducible chaos
runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["FaultEvent", "FaultPlan"]


@dataclass(frozen=True)
class FaultEvent:
    """One applied fault: what happened, where, and any detail (seconds)."""

    kind: str
    shard: int
    batch: int | None = None
    detail: float | None = None


class FaultPlan:
    """A scripted schedule of serving-layer faults (see the module docstring).

    Builder methods return ``self`` so schedules chain::

        plan = FaultPlan().kill_worker(0, before_batch=2).delay_reply(1, 3, 0.5)

    The plan is consumed by the engine as it serves: each ``(shard, batch)``
    slot fires at most once.  Plans hold mutable bookkeeping (the
    ``fail_attach`` countdown, the event journal) and must not be shared
    between concurrently running engines.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._kills: set[tuple[int, int]] = set()
        self._delays: dict[tuple[int, int], float] = {}
        self._poisons: set[tuple[int, int]] = set()
        self._attach_failures: dict[int, int] = {}
        #: Applied faults, in application order (the engine journals here).
        self.events: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # schedule builders
    # ------------------------------------------------------------------
    def kill_worker(self, shard: int, before_batch: int) -> "FaultPlan":
        """SIGKILL ``shard``'s worker right before its ``before_batch``-th dispatch."""
        self._kills.add((shard, before_batch))
        return self

    def delay_reply(self, shard: int, batch: int, seconds: float) -> "FaultPlan":
        """Stall ``shard``'s reply to its ``batch``-th dispatch by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"delay must be >= 0, got {seconds}")
        self._delays[(shard, batch)] = float(seconds)
        return self

    def poison_query(self, shard: int, batch: int) -> "FaultPlan":
        """Make ``shard``'s ``batch``-th dispatch take its executor down mid-query."""
        self._poisons.add((shard, batch))
        return self

    def fail_attach(self, shard: int, times: int = 1) -> "FaultPlan":
        """Abort ``shard``'s next ``times`` worker (re)spawns before the shm attach."""
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self._attach_failures[shard] = self._attach_failures.get(shard, 0) + times
        return self

    @classmethod
    def kill_each_worker_once(
        cls, shards: int, *, first_batch: int = 1, stride: int = 1, seed: int = 0
    ) -> "FaultPlan":
        """One kill per shard, staggered: shard ``i`` dies before batch
        ``first_batch + i * stride``.  The schedule the acceptance stress
        test and the fault-recovery benchmark script their runs with."""
        plan = cls(seed)
        for shard in range(shards):
            plan.kill_worker(shard, first_batch + shard * stride)
        return plan

    @classmethod
    def scripted_random(
        cls,
        shards: int,
        batches: int,
        *,
        kills: int = 1,
        delays: int = 0,
        poisons: int = 0,
        delay_seconds: float = 0.2,
        seed: int = 0,
    ) -> "FaultPlan":
        """Derive a reproducible random schedule from ``seed``.

        Draws ``kills``/``delays``/``poisons`` distinct ``(shard, batch)``
        slots uniformly from ``shards x batches`` (batch 0 is exempt so the
        engine always serves one clean batch first).  Same arguments, same
        seed, same schedule — the point is chaos testing without flakes.
        """
        if batches < 2:
            raise ValueError("scripted_random needs batches >= 2 (batch 0 stays clean)")
        rng = random.Random(seed)
        slots = [(s, b) for s in range(shards) for b in range(1, batches)]
        total = kills + delays + poisons
        if total > len(slots):
            raise ValueError(
                f"{total} faults do not fit in {len(slots)} (shard, batch) slots"
            )
        drawn = rng.sample(slots, total)
        plan = cls(seed)
        for shard, batch in drawn[:kills]:
            plan.kill_worker(shard, batch)
        for shard, batch in drawn[kills : kills + delays]:
            plan.delay_reply(shard, batch, delay_seconds)
        for shard, batch in drawn[kills + delays :]:
            plan.poison_query(shard, batch)
        return plan

    # ------------------------------------------------------------------
    # consumption (called by the serving engine)
    # ------------------------------------------------------------------
    def directives_for(self, shard: int, batch: int) -> dict:
        """Pop the faults scheduled for this dispatch; journal what fired.

        Returns a (possibly empty) directive dict the engine acts on:
        ``{"kill": True}`` is handled parent-side, ``{"delay": s}`` and
        ``{"poison": True}`` ride the dispatch message to the worker.
        """
        slot = (shard, batch)
        directives: dict = {}
        if slot in self._kills:
            self._kills.discard(slot)
            directives["kill"] = True
            self.events.append(FaultEvent("kill", shard, batch))
        if slot in self._delays:
            seconds = self._delays.pop(slot)
            directives["delay"] = seconds
            self.events.append(FaultEvent("delay", shard, batch, seconds))
        if slot in self._poisons:
            self._poisons.discard(slot)
            directives["poison"] = True
            self.events.append(FaultEvent("poison", shard, batch))
        return directives

    def take_attach_failure(self, shard: int) -> bool:
        """Consume one scheduled attach failure for ``shard`` (if any)."""
        remaining = self._attach_failures.get(shard, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self._attach_failures[shard]
        else:
            self._attach_failures[shard] = remaining - 1
        self.events.append(FaultEvent("fail_attach", shard))
        return True

    def pending_faults(self) -> int:
        """Return how many scheduled faults have not fired yet."""
        return (
            len(self._kills)
            + len(self._delays)
            + len(self._poisons)
            + sum(self._attach_failures.values())
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(seed={self.seed}, "
            f"pending={self.pending_faults()}, applied={len(self.events)})"
        )
