"""Crash-safe durability: write-ahead delta log + atomic snapshot checkpoints.

Every layer below this one is RAM-only: the :class:`~repro.engine.CTCEngine`
store, its delta log, the serving shards — all gone on a restart.  This
module is the durable spine ROADMAP item 2 calls for, built from two
complementary artifacts that live together in one *data directory*:

``wal.log`` — the **write-ahead delta log**
    An append-only file of length-prefixed, CRC32-checksummed
    :class:`~repro.graph.delta.GraphDelta` records (framing in
    :mod:`repro.graph.disk`; canonical byte-stable payloads from
    :meth:`GraphDelta.to_bytes`).  The engine appends each mutation's delta
    *before* bumping its version, so every acknowledged version is on disk
    (modulo the fsync policy below).  A fresh durable engine first logs a
    version-0 **bootstrap record** holding its initial graph, so recovery
    never depends on a checkpoint existing.
``checkpoint-<version>/`` — **atomic snapshot checkpoints**
    A directory of ``np.save`` arrays (CSR buffers, trussness, supports,
    triangle incidence), the pickled node labels, and a checksummed
    manifest, staged in a temp directory and published by a single
    ``os.rename`` (:func:`repro.graph.disk.publish_dir`).  Recovery reopens
    the arrays with ``np.load(mmap_mode="r")`` — the cold-start path skips
    the whole triangle-enumeration + peeling decomposition, which is what
    ``benchmarks/bench_recovery.py`` gates at >= 10x over a full rebuild.

fsync policy
------------
``always`` fsyncs after every append (no acknowledged delta is ever lost,
even to a kernel panic), ``batch`` fsyncs every ``fsync_batch`` appends and
at checkpoints (bounded loss on *OS* crash), ``off`` never fsyncs
explicitly.  All three policies ``flush`` per append, so a killed *process*
(``kill -9``) loses nothing under any of them — the OS still holds the
bytes; fsync only buys durability against the machine itself dying.

Recovery state machine
----------------------
:meth:`DurabilityManager.open_existing` drives recovery:

1. sweep orphaned ``tmp-*`` staging directories (a crash mid-checkpoint
   before the rename);
2. load the newest checkpoint whose manifest verifies — a damaged or
   half-renamed one is skipped, falling back to the next older (or none);
3. read the WAL: a **torn tail** (last record cut short or failing its
   CRC) is truncated off the file silently, while damage anywhere earlier
   raises :class:`~repro.exceptions.WalCorruptionError` (see
   :func:`repro.graph.disk.scan_records` for why the distinction is safe);
4. the engine replays the WAL records *after* the checkpoint version onto
   the checkpoint graph — the checkpoint-then-crash-before-trim overlap is
   filtered by version, and any version gap raises
   :class:`WalCorruptionError` rather than silently resurrecting a
   different store.

Because replay reconstructs the exact mutation sequence and every snapshot
build path is property-tested bit-identical to a from-scratch freeze, a
recovered engine's snapshots (CSR arrays, trussness, incidence) equal an
uninterrupted run's — the acceptance property
``tests/engine/test_crash_recovery.py`` enforces, including under
``kill -9`` mid-append.
"""

from __future__ import annotations

import os
import pickle
import shutil
import struct
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, WalCorruptionError
from repro.graph.csr import CSRGraph
from repro.graph.csr_triangles import TriangleIncidence
from repro.graph.delta import GraphDelta
from repro.graph.disk import (
    append_record,
    file_crc32,
    fsync_dir,
    publish_dir,
    read_manifest,
    scan_records,
    write_manifest,
)

__all__ = [
    "DEFAULT_CHECKPOINT_BYTES",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_FSYNC_BATCH",
    "CheckpointStore",
    "DurabilityConfig",
    "DurabilityManager",
    "LoadedCheckpoint",
    "RecoveryReport",
    "WriteAheadLog",
]

#: Default delta-count checkpoint trigger (appends since the last one).
DEFAULT_CHECKPOINT_EVERY = 256

#: Default WAL-size checkpoint trigger, in bytes.
DEFAULT_CHECKPOINT_BYTES = 64 * 1024 * 1024

#: Default appends between fsyncs under the ``batch`` policy.
DEFAULT_FSYNC_BATCH = 32

#: On-disk checkpoint layout version (manifests carrying another are skipped).
CHECKPOINT_FORMAT_VERSION = 1

#: File name of the write-ahead log inside a data directory.
WAL_FILENAME = "wal.log"

_FSYNC_POLICIES = ("always", "batch", "off")
_CKPT_PREFIX = "checkpoint-"
_TMP_PREFIX = "tmp-"
_VERSION_PREFIX = struct.Struct("<Q")


@dataclass(frozen=True)
class DurabilityConfig:
    """Everything :class:`CTCEngine` needs to know to persist itself.

    Parameters
    ----------
    path:
        The data directory (created on first use).  Holds ``wal.log`` and
        the ``checkpoint-*`` directories.
    fsync:
        ``"always"`` / ``"batch"`` / ``"off"`` — see the module docstring's
        trade-off discussion.
    checkpoint_every:
        Auto-checkpoint after this many WAL appends since the last
        checkpoint (``None`` disables the count trigger).
    checkpoint_bytes:
        Auto-checkpoint once the WAL exceeds this many bytes (``None``
        disables the size trigger).
    fsync_batch:
        Appends between fsyncs under the ``batch`` policy.
    verify_checkpoints:
        Re-hash every array file against the manifest when loading a
        checkpoint.  Costs a full sequential read (defeating the memmap
        cold-start), so it is off by default and turned on by tests and
        ``--recover`` diagnostics.
    """

    path: str
    fsync: str = "batch"
    checkpoint_every: int | None = DEFAULT_CHECKPOINT_EVERY
    checkpoint_bytes: int | None = DEFAULT_CHECKPOINT_BYTES
    fsync_batch: int = DEFAULT_FSYNC_BATCH
    verify_checkpoints: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "path", os.fspath(self.path))
        if self.fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1 or None, got {self.checkpoint_every}"
            )
        if self.checkpoint_bytes is not None and self.checkpoint_bytes < 1:
            raise ValueError(
                f"checkpoint_bytes must be >= 1 or None, got {self.checkpoint_bytes}"
            )
        if self.fsync_batch < 1:
            raise ValueError(f"fsync_batch must be >= 1, got {self.fsync_batch}")

    @classmethod
    def coerce(
        cls, value: "DurabilityConfig | str | os.PathLike"
    ) -> "DurabilityConfig":
        """Accept a ready config or a bare data-directory path."""
        if isinstance(value, cls):
            return value
        return cls(path=os.fspath(value))

    @property
    def wal_path(self) -> str:
        """The WAL file inside the data directory."""
        return os.path.join(self.path, WAL_FILENAME)


class WriteAheadLog:
    """The append-only, checksummed delta log (one per data directory).

    Record payloads are ``u64 version`` (little-endian) followed by the
    delta's canonical bytes; the framing (length + CRC32 prefix, magic
    header) lives in :mod:`repro.graph.disk`.  Instances append; the
    classmethods :meth:`read` and :meth:`repair` are the recovery side.
    """

    MAGIC = b"CTCWAL01"

    def __init__(
        self,
        path: str,
        *,
        fsync: str = "batch",
        fsync_batch: int = DEFAULT_FSYNC_BATCH,
    ) -> None:
        self._path = path
        self._fsync = fsync
        self._fsync_batch = fsync_batch
        self._unsynced = 0
        self.appends = 0
        self.syncs = 0
        self._handle = open(path, "ab")
        if self._handle.tell() == 0:
            self._handle.write(self.MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            fsync_dir(os.path.dirname(os.path.abspath(path)))
        self._size = self._handle.tell()

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return self._path

    @property
    def size_bytes(self) -> int:
        """Current WAL length, including the header."""
        return self._size

    def append(self, version: int, delta: GraphDelta) -> None:
        """Append one version's delta; flush always, fsync per policy."""
        payload = _VERSION_PREFIX.pack(version) + delta.to_bytes()
        self._size += append_record(self._handle, payload)
        self._handle.flush()
        self.appends += 1
        if self._fsync == "always":
            self._sync()
        elif self._fsync == "batch":
            self._unsynced += 1
            if self._unsynced >= self._fsync_batch:
                self._sync()

    def _sync(self) -> None:
        os.fsync(self._handle.fileno())
        self._unsynced = 0
        self.syncs += 1

    def sync(self) -> None:
        """Force an fsync regardless of policy (checkpoint/close path)."""
        self._handle.flush()
        self._sync()

    def trim_through(self, version: int) -> int:
        """Drop records with versions <= ``version``; return the retained count.

        The retained tail is rewritten to a temp file and renamed over the
        log (atomic), so a crash mid-trim leaves either the old full log or
        the new trimmed one — both replay to the same store on top of the
        checkpoint that triggered the trim.
        """
        self._handle.flush()
        records, _, _ = self.read(self._path)
        retained = [(v, delta) for v, delta in records if v > version]
        tmp = self._path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(self.MAGIC)
            for v, delta in retained:
                append_record(handle, _VERSION_PREFIX.pack(v) + delta.to_bytes())
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.rename(tmp, self._path)
        fsync_dir(os.path.dirname(os.path.abspath(self._path)))
        self._handle = open(self._path, "ab")
        self._size = self._handle.tell()
        self._unsynced = 0
        return len(retained)

    def close(self) -> None:
        """Flush, fsync (unless ``off``) and close the log (idempotent)."""
        if self._handle.closed:
            return
        self._handle.flush()
        if self._fsync != "off":
            os.fsync(self._handle.fileno())
        self._handle.close()

    # ------------------------------------------------------------------
    # recovery side
    # ------------------------------------------------------------------
    @classmethod
    def read(cls, path: str) -> tuple[list[tuple[int, GraphDelta]], int, int]:
        """Parse the log; return ``(records, valid_length, file_length)``.

        ``records`` is ``(version, delta)`` pairs from the longest
        well-formed prefix; ``valid_length < file_length`` means a torn
        tail that :meth:`repair` should truncate.

        Raises
        ------
        WalCorruptionError
            On mid-log damage (bad header, mid-log checksum failure, a
            payload the framing accepted but the delta codec rejects, or a
            version sequence that is not contiguous).
        """
        with open(path, "rb") as handle:
            data = handle.read()
        payloads, valid = scan_records(data, magic=cls.MAGIC, path=path)
        records: list[tuple[int, GraphDelta]] = []
        previous: int | None = None
        for payload in payloads:
            if len(payload) < _VERSION_PREFIX.size:
                raise WalCorruptionError(
                    f"record payload too short ({len(payload)} bytes) for a "
                    "version prefix",
                    path=path,
                )
            (version,) = _VERSION_PREFIX.unpack_from(payload)
            try:
                delta = GraphDelta.from_bytes(payload[_VERSION_PREFIX.size :])
            except ValueError as exc:
                raise WalCorruptionError(
                    f"record for version {version} passed its checksum but "
                    f"does not decode: {exc}",
                    path=path,
                ) from exc
            if previous is not None and version != previous + 1:
                raise WalCorruptionError(
                    f"non-contiguous WAL versions: {previous} followed by "
                    f"{version}",
                    path=path,
                )
            previous = version
            records.append((version, delta))
        return records, valid, len(data)

    @classmethod
    def repair(cls, path: str) -> tuple[list[tuple[int, GraphDelta]], int]:
        """Read the log, truncating any torn tail off the file on disk.

        Returns ``(records, truncated_bytes)``.  Truncation is the silent,
        expected repair of a crash mid-append; mid-log damage still raises
        :class:`WalCorruptionError` (from :meth:`read`).
        """
        records, valid, total = cls.read(path)
        truncated = total - valid
        if truncated:
            with open(path, "rb+") as handle:
                handle.truncate(valid)
                handle.flush()
                os.fsync(handle.fileno())
        return records, truncated


@dataclass
class LoadedCheckpoint:
    """One verified checkpoint's artifacts, arrays memory-mapped read-only."""

    version: int
    path: str
    csr: CSRGraph
    trussness: np.ndarray
    supports: np.ndarray
    incidence: TriangleIncidence | None


class CheckpointStore:
    """The ``checkpoint-<version>/`` directories inside one data directory."""

    def __init__(self, root: str) -> None:
        self._root = os.fspath(root)

    # ------------------------------------------------------------------
    def sweep_tmp(self) -> int:
        """Remove orphaned staging directories (crash before the rename)."""
        removed = 0
        if not os.path.isdir(self._root):
            return removed
        for name in os.listdir(self._root):
            if name.startswith(_TMP_PREFIX):
                shutil.rmtree(os.path.join(self._root, name), ignore_errors=True)
                removed += 1
        return removed

    def versions(self) -> list[int]:
        """Checkpoint versions present on disk (unverified), ascending."""
        found = []
        if not os.path.isdir(self._root):
            return found
        for name in os.listdir(self._root):
            if name.startswith(_CKPT_PREFIX):
                try:
                    found.append(int(name[len(_CKPT_PREFIX) :]))
                except ValueError:
                    continue
        return sorted(found)

    def _dir(self, version: int) -> str:
        return os.path.join(self._root, f"{_CKPT_PREFIX}{version:012d}")

    # ------------------------------------------------------------------
    def write(self, snapshot) -> str:
        """Checkpoint ``snapshot`` (an :class:`EngineSnapshot`) atomically.

        Arrays are staged with ``np.save`` into a ``tmp-*`` directory next
        to their checksummed manifest, then published by one ``os.rename``.
        Idempotent per version: an already-published checkpoint for the
        snapshot's version is returned as-is.
        """
        final = self._dir(snapshot.version)
        if os.path.isdir(final):
            return final
        os.makedirs(self._root, exist_ok=True)
        tmp = os.path.join(
            self._root, f"{_TMP_PREFIX}{snapshot.version}-{os.getpid()}"
        )
        shutil.rmtree(tmp, ignore_errors=True)
        os.makedirs(tmp)
        csr = snapshot.csr
        arrays = {name: getattr(csr, name) for name in CSRGraph._SHARED_ARRAYS}
        arrays["trussness"] = snapshot.trussness
        arrays["supports"] = snapshot.supports
        if snapshot.incidence is not None:
            arrays["tri_edges"] = snapshot.incidence.edges
            arrays["inc_indptr"] = snapshot.incidence.inc_indptr
            arrays["inc_triangles"] = snapshot.incidence.inc_triangles
        manifest: dict = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "version": snapshot.version,
            "nodes": csr.number_of_nodes(),
            "edges": csr.number_of_edges(),
            "arrays": {},
        }
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            filename = f"{name}.npy"
            np.save(os.path.join(tmp, filename), array)
            manifest["arrays"][name] = {
                "file": filename,
                "crc32": file_crc32(os.path.join(tmp, filename)),
                "shape": list(array.shape),
                "dtype": array.dtype.str,
            }
        labels_file = "labels.pkl"
        with open(os.path.join(tmp, labels_file), "wb") as handle:
            pickle.dump(csr.labels(), handle, protocol=pickle.HIGHEST_PROTOCOL)
        manifest["labels"] = {
            "file": labels_file,
            "crc32": file_crc32(os.path.join(tmp, labels_file)),
        }
        write_manifest(os.path.join(tmp, "manifest.json"), manifest)
        publish_dir(tmp, final)
        return final

    def remove_older_than(self, version: int) -> None:
        """Delete published checkpoints older than ``version``."""
        for old in self.versions():
            if old < version:
                shutil.rmtree(self._dir(old), ignore_errors=True)

    # ------------------------------------------------------------------
    def load_latest(self, *, verify: bool = False) -> LoadedCheckpoint | None:
        """Load the newest checkpoint that verifies; ``None`` when there is none.

        A checkpoint whose manifest is missing/damaged, whose files are
        absent or mis-shaped, or (with ``verify=True``) whose array bytes
        fail their CRC is *skipped* — recovery falls back to the next older
        checkpoint and, past the oldest, to WAL-only replay.
        """
        for version in reversed(self.versions()):
            loaded = self._load(version, verify=verify)
            if loaded is not None:
                return loaded
        return None

    def _load(self, version: int, *, verify: bool) -> LoadedCheckpoint | None:
        directory = self._dir(version)
        try:
            manifest = read_manifest(os.path.join(directory, "manifest.json"))
        except (OSError, ValueError):
            return None
        if manifest.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            return None
        arrays: dict[str, np.ndarray] = {}
        try:
            for name, entry in manifest["arrays"].items():
                file = os.path.join(directory, entry["file"])
                if verify and file_crc32(file) != entry["crc32"]:
                    return None
                array = np.load(file, mmap_mode="r", allow_pickle=False)
                if list(array.shape) != entry["shape"]:
                    return None
                if array.dtype.str != entry["dtype"]:
                    return None
                arrays[name] = array
            labels_path = os.path.join(directory, manifest["labels"]["file"])
            if verify and file_crc32(labels_path) != manifest["labels"]["crc32"]:
                return None
            with open(labels_path, "rb") as handle:
                labels = pickle.load(handle)
        except (OSError, KeyError, ValueError, pickle.UnpicklingError):
            return None
        csr = CSRGraph(
            indptr=arrays["indptr"],
            indices=arrays["indices"],
            slot_edge=arrays["slot_edge"],
            edge_u=arrays["edge_u"],
            edge_v=arrays["edge_v"],
            labels=labels,
            ids={label: position for position, label in enumerate(labels)},
        )
        incidence = None
        if "tri_edges" in arrays:
            incidence = TriangleIncidence(
                edges=arrays["tri_edges"],
                supports=arrays["supports"],
                inc_indptr=arrays["inc_indptr"],
                inc_triangles=arrays["inc_triangles"],
            )
        return LoadedCheckpoint(
            version=int(manifest["version"]),
            path=directory,
            csr=csr,
            trussness=arrays["trussness"],
            supports=arrays["supports"],
            incidence=incidence,
        )


@dataclass
class RecoveryReport:
    """What :meth:`CTCEngine.recover` did, for stats printing and tests."""

    checkpoint_version: int | None
    checkpoint_path: str | None
    wal_records: int
    replayed_deltas: int
    truncated_bytes: int
    recovered_version: int
    seconds: float

    def as_dict(self) -> dict:
        """Plain-dict form for CLI/benchmark reporting."""
        return {
            "checkpoint_version": self.checkpoint_version,
            "checkpoint_path": self.checkpoint_path,
            "wal_records": self.wal_records,
            "replayed_deltas": self.replayed_deltas,
            "truncated_bytes": self.truncated_bytes,
            "recovered_version": self.recovered_version,
            "seconds": self.seconds,
        }


class DurabilityManager:
    """One engine's durable state: the open WAL plus its checkpoint store.

    Construct via :meth:`create` (fresh directory — refuses to adopt
    existing state) or :meth:`open_existing` (the recovery entry point).
    The engine serializes every call through its own mutex, so the manager
    itself carries no locking.
    """

    def __init__(
        self,
        config: DurabilityConfig,
        wal: WriteAheadLog,
        store: CheckpointStore,
    ) -> None:
        self.config = config
        self._wal = wal
        self._store = store
        self._since_checkpoint = 0
        self._last_checkpoint_version = 0
        self.checkpoints = 0

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, config: DurabilityConfig) -> "DurabilityManager":
        """Initialize a *fresh* data directory for a new durable engine.

        Raises
        ------
        ConfigurationError
            If the directory already holds a WAL or checkpoints — a fresh
            engine silently shadowing recoverable state would be data
            loss; use :meth:`CTCEngine.recover` instead.
        """
        os.makedirs(config.path, exist_ok=True)
        store = CheckpointStore(config.path)
        if os.path.exists(config.wal_path) or store.versions():
            raise ConfigurationError(
                f"data directory {config.path!r} already contains durable "
                "state; recover it with CTCEngine.recover(...) instead of "
                "creating a fresh engine over it"
            )
        wal = WriteAheadLog(
            config.wal_path, fsync=config.fsync, fsync_batch=config.fsync_batch
        )
        return cls(config, wal, store)

    @classmethod
    def open_existing(
        cls, config: DurabilityConfig
    ) -> tuple[
        "DurabilityManager",
        LoadedCheckpoint | None,
        list[tuple[int, GraphDelta]],
        int,
    ]:
        """Recovery: sweep staging orphans, load a checkpoint, repair the WAL.

        Returns ``(manager, checkpoint, wal_records, truncated_bytes)``;
        the caller (``CTCEngine.recover``) replays the records onto the
        checkpoint state.

        Raises
        ------
        ConfigurationError
            If the directory holds no durable state at all.
        WalCorruptionError
            On mid-log WAL damage (torn tails are repaired silently).
        """
        store = CheckpointStore(config.path)
        store.sweep_tmp()
        checkpoint = store.load_latest(verify=config.verify_checkpoints)
        wal_exists = os.path.exists(config.wal_path)
        if not wal_exists and checkpoint is None:
            raise ConfigurationError(
                f"no durable state found in {config.path!r} (neither "
                f"{WAL_FILENAME} nor a readable checkpoint)"
            )
        records: list[tuple[int, GraphDelta]] = []
        truncated = 0
        if wal_exists:
            records, truncated = WriteAheadLog.repair(config.wal_path)
        wal = WriteAheadLog(
            config.wal_path, fsync=config.fsync, fsync_batch=config.fsync_batch
        )
        manager = cls(config, wal, store)
        base = checkpoint.version if checkpoint is not None else 0
        manager._last_checkpoint_version = base
        manager._since_checkpoint = sum(1 for v, _ in records if v > base)
        return manager, checkpoint, records, truncated

    # ------------------------------------------------------------------
    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def checkpoint_store(self) -> CheckpointStore:
        return self._store

    def append(self, version: int, delta: GraphDelta) -> None:
        """Log one version's delta (called under the engine mutex)."""
        self._wal.append(version, delta)
        self._since_checkpoint += 1

    def checkpoint_due(self) -> bool:
        """Whether the delta-count or WAL-size policy asks for a checkpoint."""
        every = self.config.checkpoint_every
        if every is not None and self._since_checkpoint >= every:
            return True
        limit = self.config.checkpoint_bytes
        return limit is not None and self._wal.size_bytes >= limit

    def write_checkpoint(self, snapshot) -> str:
        """Publish ``snapshot`` as a checkpoint and trim the WAL behind it."""
        self._wal.sync()
        path = self._store.write(snapshot)
        self.checkpoints += 1
        # Publish first, trim second: a crash in between leaves the full
        # WAL alongside the new checkpoint, and replay filters the overlap
        # by version.  The reverse order could lose the trimmed deltas.
        self._since_checkpoint = self._wal.trim_through(snapshot.version)
        self._last_checkpoint_version = max(
            self._last_checkpoint_version, snapshot.version
        )
        self._store.remove_older_than(snapshot.version)
        return path

    def stats(self) -> dict:
        """Durability counters for CLI/benchmark reporting."""
        return {
            "fsync_policy": self.config.fsync,
            "wal_appends": self._wal.appends,
            "wal_fsyncs": self._wal.syncs,
            "wal_bytes": self._wal.size_bytes,
            "checkpoints": self.checkpoints,
            "deltas_since_checkpoint": self._since_checkpoint,
            "last_checkpoint_version": self._last_checkpoint_version,
        }

    def close(self) -> None:
        """Flush and close the WAL (idempotent)."""
        self._wal.close()
