"""Read-optimized query engine: mutable store + cached CSR/index snapshots.

See :mod:`repro.engine.core` for the design discussion and
``docs/ARCHITECTURE.md`` for the layer diagram and the caching/invalidation
contract.
"""

from repro.engine.core import CTCEngine, EngineSnapshot, EngineStats

__all__ = ["CTCEngine", "EngineSnapshot", "EngineStats"]
