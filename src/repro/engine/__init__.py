"""Read-optimized query engine: mutable store + cached CSR/index snapshots.

Mutations propagate to the cached read replicas through structured
:class:`~repro.graph.delta.GraphDelta` batches and an incremental rebuild
policy; see :mod:`repro.engine.core` for the design discussion and
``docs/ARCHITECTURE.md`` for the layer diagram and the caching/rebuild
contract.  :mod:`repro.engine.serving` layers a concurrent front-end on
top: epoch-pinned snapshot leases, batched thread-pool serving, and
shard-parallel worker processes over shared-memory snapshot buffers.
"""

from repro.engine.core import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_DELTA_LOG_LIMIT,
    DEFAULT_DELTA_THRESHOLD,
    CTCEngine,
    EngineSnapshot,
    EngineStats,
    SnapshotLease,
)
from repro.engine.faults import FaultEvent, FaultPlan
from repro.engine.persistence import (
    DEFAULT_CHECKPOINT_BYTES,
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_FSYNC_BATCH,
    CheckpointStore,
    DurabilityConfig,
    DurabilityManager,
    RecoveryReport,
    WriteAheadLog,
)
from repro.engine.serving import ServingEngine, ServingStats
from repro.engine.window import SlidingWindowEngine

__all__ = [
    "CTCEngine",
    "CheckpointStore",
    "DurabilityConfig",
    "DurabilityManager",
    "EngineSnapshot",
    "EngineStats",
    "FaultEvent",
    "FaultPlan",
    "RecoveryReport",
    "ServingEngine",
    "ServingStats",
    "SlidingWindowEngine",
    "SnapshotLease",
    "WriteAheadLog",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_CHECKPOINT_BYTES",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_DELTA_THRESHOLD",
    "DEFAULT_DELTA_LOG_LIMIT",
    "DEFAULT_FSYNC_BATCH",
]
