""":class:`ServingEngine`: a concurrent, batched front-end over :class:`CTCEngine`.

The engine core is an MVCC design — immutable version-keyed snapshots over
a delta log — but by itself it serves one query at a time.  This module
adds the serving layer the ROADMAP's "millions of users" track calls for:

* **Thread mode** (``mode="thread"``): one shared :class:`CTCEngine`
  behind a thread pool.  :meth:`ServingEngine.query_batch` takes a single
  epoch-pinned :class:`~repro.engine.core.SnapshotLease`, warms the
  snapshot's lazy kernel once, and fans the batch out across the pool —
  so ``B`` concurrently-arriving queries pay **one** snapshot resolution
  (delta apply or rebuild) and **one** kernel setup instead of ``B``.
  The writer keeps mutating underneath; the lease guarantees every query
  in the batch reads one consistent version.
* **Process mode** (``mode="process"``): the store is sharded by connected
  component (:func:`~repro.graph.components.balanced_shards`; nodes first
  seen on a new edge fall back to a stable hash of the canonical edge
  key), and each shard is served by a worker process.  The parent exports
  every shard's frozen CSR buffers — adjacency, per-edge trussness,
  supports, triangle incidence — into ``multiprocessing.shared_memory``
  (:meth:`~repro.graph.csr.CSRGraph.to_shared`), so workers map their
  snapshots zero-copy and skip the from-scratch decomposition entirely
  (:meth:`CTCEngine.from_arrays`).  Mutations are routed to the owning
  shard fire-and-forget (the writer never blocks on a worker), which
  means a mutation dirties **one shard's** snapshot instead of the whole
  store — on a multi-community graph that is the dominant win, on top of
  whatever hardware parallelism the host offers.
* **Async facade**: :meth:`ServingEngine.aquery` queues concurrently
  arriving ``asyncio`` queries and drains them in grouped
  :meth:`query_batch` calls, so independent coroutines coalesce onto one
  pinned snapshot without coordinating with each other.

Fault tolerance (process mode)
------------------------------
Worker failure is treated as routine, not fatal.  The front-end never
issues a blocking ``recv``: every reply wait is a poll loop that watches
the worker's liveness, so a crashed worker (``EOFError`` /
``BrokenPipeError`` / a dead ``Process.is_alive()``) is *detected* rather
than hung on.  Recovery is a supervision state machine per shard:

1. **Respawn** — the parent still owns the shard's
   :class:`~repro.graph.shm.SharedArrayBundle` (the frozen baseline
   snapshot), and it journals every mutation routed to the shard since
   that baseline in an oplog.  A replacement worker re-attaches the same
   buffers and replays the oplog, deterministically reconstructing the
   crashed worker's store — regardless of which pipe messages the dead
   worker had or had not consumed.  The replacement confirms with a
   ``("ready", version)`` handshake before serving.
2. **Requeue** — the in-flight batch positions of the crashed worker are
   re-dispatched to the replacement, with exponential backoff between
   attempts (``respawn_backoff * 2**n``).
3. **Quarantine** — after ``max_respawns`` failed recoveries the shard is
   quarantined: its queries and mutations fail fast with
   :class:`~repro.exceptions.ShardUnavailableError` while the remaining
   shards keep serving.  Graceful degradation, not a poisoned engine.

**Deadlines**: ``query_batch(..., timeout=)`` takes a scalar or a
per-query sequence of second budgets.  Thread mode bounds each future's
``result()`` wait (and forwards the budget to the cooperative
``time_budget_seconds`` machinery of the global methods); process mode
bounds the reply poll.  An overdue query's slot becomes a
:class:`~repro.exceptions.QueryTimeoutError` — the batch never stalls on
one slow query, and an abandoned reply is discarded when it eventually
arrives.  :meth:`aquery` carries the timeout into its coalesced groups.

**Fault injection**: a seeded :class:`~repro.engine.faults.FaultPlan`
passed as ``fault_plan=`` scripts kills, delayed replies, poisoned
queries, and shm attach failures at exact ``(shard, batch)`` dispatch
points, so every recovery path above is exercised deterministically by
the test suite and ``benchmarks/bench_fault_recovery.py``.

Shard semantics (process mode)
------------------------------
Truss communities never span connected components, so any query whose
nodes live in one shard gets exactly the same answer as on the unsharded
store (the equivalence the test suite pins).  Queries spanning shards
raise :class:`~repro.exceptions.NoCommunityFoundError` — on the unsharded
store they would raise that or :class:`~repro.exceptions.QueryError`
("terminals are not mutually connected"), depending on the method; the
router cannot tell which without running the query, so it reports the
model-level truth (no connected community exists).  Mutations that would
*merge* two shards raise
:class:`~repro.exceptions.CrossShardMutationError`.

Shared-memory ownership: the parent creates each shard's buffers, keeps
them alive for the worker's lifetime, and unlinks them in :meth:`close`
(also run by ``__exit__`` and at interpreter exit via ``atexit``).  A
parent killed by ``SIGTERM``/``SIGINT`` still unlinks: the module
installs signal handlers (preserving and re-raising into any prior
handler) that emergency-unlink every live engine's segments.  Workers
merely attach and drop their mapping on shutdown.
"""

from __future__ import annotations

import atexit
import asyncio
import itertools
import os
import pickle
import signal
import threading
import time
import weakref
import zlib
from collections import defaultdict
from collections.abc import Hashable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from functools import partial

import multiprocessing

import numpy as np

from repro.ctc.result import CommunityResult
from repro.engine.core import CTCEngine
from repro.exceptions import (
    ConfigurationError,
    CrossShardMutationError,
    EdgeNotFoundError,
    NoCommunityFoundError,
    QueryError,
    QueryTimeoutError,
    ShardUnavailableError,
)
from repro.graph.components import balanced_shards
from repro.graph.csr import CSRGraph
from repro.graph.csr_triangles import TriangleIncidence, subset_incidence
from repro.graph.keys import edge_key
from repro.graph.shm import SharedArrayBundle
from repro.graph.simple_graph import UndirectedGraph

__all__ = ["ServingEngine", "ServingStats"]

#: Worker shutdown grace period before the parent terminates the process.
_JOIN_TIMEOUT_SECONDS = 5.0
#: Reply-wait poll granularity: crash detection latency is bounded by this.
_POLL_INTERVAL_SECONDS = 0.05
#: How long a (re)spawned worker gets to attach + replay + report ready.
_READY_TIMEOUT_SECONDS = 30.0
#: Bound on the internal stats round-trip (not a user-visible deadline).
_STATS_TIMEOUT_SECONDS = 10.0
#: Methods whose kernels honor a cooperative wall-clock budget.
_BUDGETED_METHODS = frozenset({"basic", "bulk-delete"})


class _WorkerCrashed(Exception):
    """Internal: the shard worker died (pipe broke or process exited)."""


class _DeadlineExpired(Exception):
    """Internal: the reply wait ran past the batch deadline."""


# ----------------------------------------------------------------------
# SIGTERM/SIGINT shared-memory cleanup
#
# ``bundle.unlink()`` normally runs via close()/atexit, but a parent killed
# by a signal skips atexit and would leak every shard's /dev/shm segments.
# The first process-mode engine installs handlers (main thread only —
# ``signal.signal`` raises elsewhere); the handler emergency-unlinks every
# live engine's bundles, restores the prior handler, and re-raises so the
# prior disposition (usually: die) still happens.
# ----------------------------------------------------------------------
_signal_lock = threading.Lock()
_signal_engines: "weakref.WeakSet[ServingEngine]" = weakref.WeakSet()
_prior_handlers: dict[int, object] = {}


def _signal_cleanup(signum, frame) -> None:
    # Restore the prior disposition *first*: a second delivery of the same
    # signal mid-cleanup then goes straight to the original handler instead
    # of re-entering this one — that ordering is what makes the handler
    # idempotent under signal storms.
    prior = _prior_handlers.pop(signum, None)
    if prior is None:
        prior = signal.SIG_DFL
    try:
        signal.signal(signum, prior)
    except (ValueError, OSError, TypeError):  # pragma: no cover - exotic prior
        signal.signal(signum, signal.SIG_DFL)
    for engine in list(_signal_engines):
        try:
            engine._emergency_unlink()
        except Exception:
            pass
    # Re-raise into the restored handler so the prior disposition (a chained
    # application handler, or the default: die) still runs.
    signal.raise_signal(signum)


def _register_signal_cleanup(engine: "ServingEngine") -> None:
    with _signal_lock:
        _signal_engines.add(engine)
        if threading.current_thread() is not threading.main_thread():
            return  # signal.signal only works from the main thread
        # (Re-)chain per signum: if the application installed its own handler
        # after ours (replacing it), capture that handler as the new prior so
        # cleanup still forwards to it; if ours is already installed, leave
        # the recorded prior alone.
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                if signal.getsignal(signum) is _signal_cleanup:
                    continue
                _prior_handlers[signum] = signal.signal(signum, _signal_cleanup)
            except (ValueError, OSError):  # pragma: no cover - restricted host
                _prior_handlers.pop(signum, None)


def _unregister_signal_cleanup(engine: "ServingEngine") -> None:
    with _signal_lock:
        _signal_engines.discard(engine)
        if _signal_engines or not _prior_handlers:
            return
        for signum, prior in list(_prior_handlers.items()):
            if signal.getsignal(signum) is _signal_cleanup:
                try:
                    signal.signal(signum, prior)  # type: ignore[arg-type]
                except (ValueError, OSError, TypeError):  # pragma: no cover
                    pass
        _prior_handlers.clear()


@dataclass
class ServingStats:
    """Per-front-end counters (cumulative over the serving engine's lifetime).

    ``coalesced_queries`` counts queries that rode along on another query's
    snapshot resolution — ``queries`` minus the number of snapshot
    resolutions actually performed (leases in thread mode, shard-batch
    messages in process mode).  ``snapshot_reuses`` counts resolutions that
    landed on the same version as the previous one on that
    engine/shard — i.e. the store had not moved, so even the delta apply
    was skipped.  ``cross_shard_rejects`` counts queries refused because
    their nodes span shards (process mode only).

    The fault-tolerance counters: ``worker_crashes`` is shard worker deaths
    detected (however discovered), ``respawns`` is successful replacements,
    ``requeued_queries`` counts query positions re-dispatched after a
    crash, ``timeouts`` counts queries whose slot became a
    :class:`~repro.exceptions.QueryTimeoutError`,
    ``bundle_rebuilds`` counts shard snapshot bundles republished into
    fresh shared-memory segments because the originals had been unlinked
    (e.g. by an emergency signal cleanup that the process then survived),
    and ``quarantined_shards`` is the *current* number of shards failed
    out of service (a level, not a cumulative count).
    """

    mode: str = "thread"
    workers: int = 0
    batches: int = 0
    queries: int = 0
    coalesced_queries: int = 0
    leases: int = 0
    snapshot_reuses: int = 0
    cross_shard_rejects: int = 0
    worker_crashes: int = 0
    respawns: int = 0
    requeued_queries: int = 0
    timeouts: int = 0
    bundle_rebuilds: int = 0
    quarantined_shards: int = 0

    def as_dict(self) -> dict[str, float]:
        """Return the counters as a plain dict (for CLI/benchmark reporting)."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "batches": self.batches,
            "queries": self.queries,
            "coalesced_queries": self.coalesced_queries,
            "leases": self.leases,
            "snapshot_reuses": self.snapshot_reuses,
            "cross_shard_rejects": self.cross_shard_rejects,
            "worker_crashes": self.worker_crashes,
            "respawns": self.respawns,
            "requeued_queries": self.requeued_queries,
            "timeouts": self.timeouts,
            "bundle_rebuilds": self.bundle_rebuilds,
            "quarantined_shards": self.quarantined_shards,
        }


def _picklable_exception(exc: Exception) -> Exception:
    """Return ``exc`` if it survives a pickle round-trip, else a plain stand-in.

    Library exceptions with custom constructor signatures (e.g.
    ``VersionEvictedError``) do not all reconstruct from ``exc.args``; the
    stand-in keeps the message and original type name so the parent still
    reports something actionable.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return QueryError(f"{type(exc).__name__}: {exc}")


def _kwargs_group_key(kwargs: dict) -> str:
    """Canonical coalescing key for an ``aquery`` kwargs dict.

    ``repr``-based so unhashable or mutually-unorderable values (lists,
    dicts, mixed types) still group; equal-``repr``-but-unequal kwargs are
    split again by the drainer's equality sub-bucketing.
    """
    return repr(sorted(kwargs.items(), key=lambda item: item[0]))


def _resolve_deadlines(
    timeout, count: int
) -> tuple[list[float | None], list[float | None]]:
    """Expand a ``timeout=`` argument into per-query deadlines and budgets.

    ``timeout`` may be ``None`` (no deadline), a positive number applied to
    every query, or a sequence of per-query values (``None`` entries allowed).
    Returns ``(deadlines, budgets)``: absolute ``time.monotonic()`` deadlines
    and the raw second budgets (for cooperative kernel budgets and error
    attribution).
    """
    if timeout is None:
        return [None] * count, [None] * count
    now = time.monotonic()
    if isinstance(timeout, (int, float)):
        budget = float(timeout)
        if budget <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        return [now + budget] * count, [budget] * count
    budgets_in = list(timeout)
    if len(budgets_in) != count:
        raise ValueError(
            f"per-query timeout sequence has {len(budgets_in)} entries "
            f"for {count} queries"
        )
    deadlines: list[float | None] = []
    budgets: list[float | None] = []
    for value in budgets_in:
        if value is None:
            deadlines.append(None)
            budgets.append(None)
            continue
        budget = float(value)
        if budget <= 0:
            raise ValueError(f"timeout must be > 0, got {value}")
        deadlines.append(now + budget)
        budgets.append(budget)
    return deadlines, budgets


def _shard_worker(
    conn,
    meta,
    engine_kwargs: dict,
    untrack: bool,
    replay_ops: Sequence[tuple] = (),
    fail_attach: bool = False,
) -> None:
    """Serve one shard from shared-memory snapshot buffers (worker main).

    Attaches the parent's bundle zero-copy, seeds a shard-local
    :class:`CTCEngine` from the already-decomposed arrays, replays
    ``replay_ops`` (the parent's oplog — mutations routed to this shard
    since the bundle was frozen, so a respawned worker reconstructs the
    crashed worker's store), confirms with ``("ready", version)``, then
    answers ordered messages on ``conn``:

    * ``("mutate", op_name, args)`` — apply a store mutation; no reply
      (fire-and-forget keeps the parent's writer non-blocking).
    * ``("query_batch", rid, queries, method, kernel, kwargs, directives)``
      — answer every query against one snapshot; replies
      ``("result", rid, [("ok", result) | ("err", exc), ...], version)``.
      ``directives`` carries fault-injection orders: ``poison`` exits the
      process mid-batch without replying, ``delay`` stalls the reply.
    * ``("stats", rid)`` — replies with the shard engine's counter dict.
    * ``("stop",)`` — exit.

    ``fail_attach=True`` (fault injection) aborts before the shm attach,
    simulating a worker that cannot map its snapshot buffers.
    """
    import gc

    from repro.ctc.api import search

    if fail_attach:
        conn.close()
        os._exit(3)

    # Fork-server hygiene: move the inherited parent heap into the permanent
    # generation so worker GC cycles never traverse (and copy-on-write
    # unshare) it — otherwise periodic gen-2 collections inside a worker
    # stall whole query batches.
    gc.collect()
    gc.freeze()

    bundle = SharedArrayBundle.attach(meta, untrack=untrack)
    try:
        csr = CSRGraph.from_shared(bundle)
        supports = bundle["supports"]
        incidence = None
        if "inc_indptr" in bundle:
            incidence = TriangleIncidence(
                edges=bundle["tri_edges"],
                supports=supports,
                inc_indptr=bundle["inc_indptr"],
                inc_triangles=bundle["inc_triangles"],
            )
        engine = CTCEngine.from_arrays(
            csr,
            bundle["trussness"],
            supports=supports,
            incidence=incidence,
            **engine_kwargs,
        )
        for op_name, args in replay_ops:
            try:
                getattr(engine, op_name)(*args)
            except Exception:
                # The parent validated each op against its mirror when it
                # was first routed; replay failures mean the op cancelled
                # against a neighbor in the log and are safe to drop.
                pass
        conn.send(("ready", engine.version))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "stop":
                break
            if op == "mutate":
                _, op_name, args = message
                try:
                    getattr(engine, op_name)(*args)
                except Exception:
                    # The parent validated against its authoritative mirror
                    # before routing; a failure here means the op raced a
                    # semantically equivalent one (e.g. re-adding an edge)
                    # and is safe to drop.
                    pass
            elif op == "query_batch":
                _, rid, queries, method, kernel, kwargs, directives = message
                if directives.get("poison"):
                    # Simulate a query taking its executor down mid-batch:
                    # no reply, no cleanup — the parent must recover.
                    os._exit(1)
                snapshot = engine.snapshot()
                replies = []
                for query in queries:
                    try:
                        result = search(
                            snapshot, query, method=method, kernel=kernel, **kwargs
                        )
                        replies.append(("ok", result))
                    except Exception as exc:
                        replies.append(("err", _picklable_exception(exc)))
                delay = directives.get("delay")
                if delay:
                    time.sleep(delay)
                conn.send(("result", rid, replies, engine.version))
            elif op == "stats":
                _, rid = message
                conn.send(("result", rid, engine.stats.as_dict(), engine.version))
    finally:
        conn.close()
        bundle.close()


class ServingEngine:
    """Batched, concurrent query serving over one logical graph store.

    Parameters
    ----------
    source:
        The graph to serve: an :class:`UndirectedGraph` (copied), an
        existing :class:`CTCEngine` — thread mode serves the engine
        *in place* (sharing its store and cache), process mode freezes its
        current snapshot as the shard baseline — or a durability data
        directory (``str`` / ``os.PathLike``), which is cold-started via
        :meth:`CTCEngine.recover` first.  A path source in thread mode
        keeps logging served mutations to the recovered WAL (and closes it
        with the front-end); in process mode the recovered store is only
        the *frozen baseline* — mutations routed to workers afterwards are
        **not** written back to the data directory.
    workers:
        Thread-pool width (thread mode) / maximum shard worker processes
        (process mode; capped by the number of connected components).
    mode:
        ``"thread"`` (default) or ``"process"`` — see the module docstring.
    fault_plan:
        Optional :class:`~repro.engine.faults.FaultPlan` consulted at every
        dispatch — deterministic fault injection for tests and the
        fault-recovery benchmark.  ``None`` (the default) injects nothing.
    max_respawns:
        Crash-recovery budget per shard per incident: how many failed
        respawn attempts (or repeated crashes while serving one batch)
        quarantine the shard.
    respawn_backoff:
        Base of the exponential backoff between recovery attempts, in
        seconds (attempt ``n`` sleeps ``respawn_backoff * 2**(n-1)``).
    **engine_kwargs:
        Forwarded to every internally created :class:`CTCEngine`
        (``cache_size``, ``delta_threshold``, ``delta_log_limit``,
        ``decomp``).

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> with ServingEngine(complete_graph(5), workers=2) as serving:
    ...     [r.trussness for r in serving.query_batch([[0, 1], [2, 3]])]
    [5, 5]
    """

    def __init__(
        self,
        source: UndirectedGraph | CTCEngine | str | os.PathLike,
        *,
        workers: int = 4,
        mode: str = "thread",
        fault_plan=None,
        max_respawns: int = 3,
        respawn_backoff: float = 0.05,
        **engine_kwargs,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        if max_respawns < 1:
            raise ValueError(f"max_respawns must be >= 1, got {max_respawns}")
        if respawn_backoff < 0:
            raise ValueError(f"respawn_backoff must be >= 0, got {respawn_backoff}")
        self._mode = mode
        self._workers = workers
        self._engine_kwargs = dict(engine_kwargs)
        self._fault_plan = fault_plan
        self._max_respawns = int(max_respawns)
        self._respawn_backoff = float(respawn_backoff)
        self._closed = False
        self._lock = threading.RLock()
        self._rid = itertools.count()
        #: Per-shard dispatch sequence numbers — the ``batch`` coordinate a
        #: FaultPlan addresses (thread mode counts its batches as shard 0).
        self._dispatch_seq: dict[int, int] = defaultdict(int)
        self.stats = ServingStats(mode=mode, workers=workers)

        # Async facade state (lazy; only touched from the event loop thread).
        self._pending: list = []
        self._drain_task: asyncio.Task | None = None

        #: A CTCEngine this front-end cold-started from a durability data
        #: directory; its WAL handle is ours to close.
        self._recovered: CTCEngine | None = None
        if isinstance(source, (str, os.PathLike)):
            source = CTCEngine.recover(source, **engine_kwargs)
            self._recovered = source

        try:
            if mode == "thread":
                if isinstance(source, CTCEngine):
                    self._engine = source
                else:
                    self._engine = CTCEngine(source, **engine_kwargs)
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-serving"
                )
                self._last_version: int | None = None
            else:
                self._start_process_workers(source)
                if self._recovered is not None:
                    # The baseline is frozen into the shard bundles; routed
                    # mutations are not logged, so release the WAL now.
                    self._recovered.close()
                    self._recovered = None
                _register_signal_cleanup(self)
        except BaseException:
            if self._recovered is not None:
                self._recovered.close()
            raise
        atexit.register(self.close)

    # ------------------------------------------------------------------
    # process-mode setup
    # ------------------------------------------------------------------
    def _start_process_workers(self, source: UndirectedGraph | CTCEngine) -> None:
        """Shard the store, export shm snapshot buffers, fork the workers."""
        if isinstance(source, CTCEngine):
            baseline = source
        else:
            baseline = CTCEngine(source, **self._engine_kwargs)
        snapshot = baseline.snapshot()
        csr = snapshot.csr
        #: Authoritative routing mirror: same content as the union of all
        #: shard stores, mutated in lock-step with the routed mutations.
        self._mirror = snapshot.graph.copy()

        shards = balanced_shards(self._mirror, self._workers)
        if not shards:
            shards = [set()]  # empty store: one idle worker keeps the API total
        self._node_shard: dict[Hashable, int] = {
            node: index for index, nodes in enumerate(shards) for node in nodes
        }
        self._shard_versions: list[int] = [0] * len(shards)

        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._context = multiprocessing.get_context("spawn")

        count = len(shards)
        node_is_sharded = np.zeros(csr.number_of_nodes(), dtype=bool)
        self._bundles: list[SharedArrayBundle] = []
        self._conns: list = [None] * count
        self._procs: list = [None] * count
        #: Mutations routed per shard since its bundle was frozen; a
        #: respawned worker replays this on top of the bundle baseline.
        self._oplogs: list[list[tuple]] = [[] for _ in range(count)]
        self._dead: list[bool] = [False] * count
        self._quarantined: set[int] = set()
        #: rids whose replies were abandoned (deadline expiry); discarded
        #: if the worker eventually answers them.
        self._abandoned: list[set[int]] = [set() for _ in range(count)]
        try:
            for index, nodes in enumerate(shards):
                node_ids = np.asarray(
                    sorted(csr.node_id(node) for node in nodes), dtype=np.int64
                )
                node_is_sharded[:] = False
                node_is_sharded[node_ids] = True
                # Shards are unions of components: an edge's lower endpoint
                # being in the shard implies the upper one is too.
                shard_edges = np.nonzero(node_is_sharded[csr.edge_u])[0]
                sub = csr.edge_subgraph(shard_edges, include_node_ids=node_ids)
                extra = {
                    "trussness": snapshot.trussness[sub.edge_origin],
                    "supports": snapshot.supports[sub.edge_origin],
                }
                if snapshot.incidence is not None:
                    shard_incidence = subset_incidence(
                        snapshot.incidence, sub.edge_origin
                    )
                    extra["tri_edges"] = shard_incidence.edges
                    extra["inc_indptr"] = shard_incidence.inc_indptr
                    extra["inc_triangles"] = shard_incidence.inc_triangles
                bundle = sub.csr.to_shared(f"repro_s{index}", extra_arrays=extra)
                self._bundles.append(bundle)
                self._spawn_worker(index)
            for index in range(count):
                try:
                    self._await_ready(index)
                except _WorkerCrashed:
                    if self._fault_plan is None:
                        raise RuntimeError(
                            f"shard worker {index} failed to start"
                        ) from None
                    # A scripted attach failure: leave the shard dead and
                    # let the first query drive the respawn/quarantine path.
                    self._mark_dead(index)
        except BaseException:
            self._shutdown_process_workers()
            raise

    def _spawn_worker(self, shard: int) -> None:
        """Start (or restart) ``shard``'s worker process; no ready-wait."""
        fail_attach = bool(
            self._fault_plan is not None
            and self._fault_plan.take_attach_failure(shard)
        )
        parent_conn, child_conn = self._context.Pipe()
        # Spawn-started workers run their own resource tracker and must
        # untrack; fork-started workers share the parent's.
        process = self._context.Process(
            target=_shard_worker,
            args=(
                child_conn,
                self._bundles[shard].meta,
                self._engine_kwargs,
                self._context.get_start_method() != "fork",
                tuple(self._oplogs[shard]),
                fail_attach,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._conns[shard] = parent_conn
        self._procs[shard] = process

    def _await_ready(self, shard: int) -> None:
        """Block until ``shard``'s worker reports ``("ready", version)``."""
        conn = self._conns[shard]
        process = self._procs[shard]
        deadline = time.monotonic() + _READY_TIMEOUT_SECONDS
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:  # pragma: no cover - pathological host
                raise _WorkerCrashed(f"shard {shard} ready handshake timed out")
            try:
                if conn.poll(min(_POLL_INTERVAL_SECONDS, remaining)):
                    tag, version = conn.recv()
                    if tag != "ready":  # pragma: no cover - protocol error
                        raise _WorkerCrashed(f"shard {shard} sent {tag!r} before ready")
                    self._shard_versions[shard] = version
                    return
            except (EOFError, BrokenPipeError, OSError):
                raise _WorkerCrashed(f"shard {shard} died during startup") from None
            if not process.is_alive():
                try:
                    if conn.poll(0):
                        continue  # the ready message raced the exit; read it
                except (BrokenPipeError, OSError):
                    pass
                raise _WorkerCrashed(f"shard {shard} died during startup")

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _mark_dead(self, shard: int) -> None:
        """Record a newly-discovered worker death (idempotent per death)."""
        if not self._dead[shard]:
            self._dead[shard] = True
            self.stats.worker_crashes += 1

    def _segments_missing(self, shard: int) -> bool:
        """Probe whether any of ``shard``'s shm segments has been unlinked.

        Each segment name is opened and immediately closed; the resource
        tracker's registration set already holds one entry per name for the
        owner, and re-registering a member of a set is a no-op, so probing
        never disturbs the ownership bookkeeping.
        """
        from multiprocessing import shared_memory

        meta = self._bundles[shard].meta
        names = [segment_name for segment_name, _, _ in meta.arrays.values()]
        if meta.objects_segment is not None:
            names.append(meta.objects_segment)
        for name in names:
            try:
                probe = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                return True
            probe.close()
        return False

    def _rebuild_bundle(self, shard: int) -> None:
        """Republish ``shard``'s snapshot bundle into fresh shm segments.

        The parent's own mapped views of the old bundle stay valid even
        after the segment *names* are gone (the pages live until the last
        mapping drops), so the frozen baseline can be copied wholesale into
        a brand-new bundle.  Replacement workers attach the new segments;
        the oplog replay path is unchanged.
        """
        old = self._bundles[shard]
        replacement = SharedArrayBundle.create(
            f"repro_s{shard}",
            {name: old[name] for name in old.array_names()},
            objects=old.objects,
        )
        self._bundles[shard] = replacement
        self.stats.bundle_rebuilds += 1
        try:
            old.unlink()  # releases any segments that *do* still exist
        except Exception:  # pragma: no cover - best-effort cleanup
            pass

    def _respawn(self, shard: int) -> bool:
        """Replace a dead worker: bundle re-attach + oplog replay.

        Returns ``True`` once the replacement's ready handshake lands;
        exhausting ``max_respawns`` attempts quarantines the shard and
        returns ``False``.  A shard whose shm segments were unlinked under
        it (an emergency signal cleanup the process then survived) gets its
        bundle republished from the parent's still-mapped views first.
        """
        if shard in self._quarantined:
            return False
        old_proc = self._procs[shard]
        if old_proc is not None and old_proc.is_alive():
            old_proc.kill()
            old_proc.join(timeout=_JOIN_TIMEOUT_SECONDS)
        old_conn = self._conns[shard]
        if old_conn is not None:
            try:
                old_conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        # Replies in flight on the old pipe are gone with it.
        self._abandoned[shard].clear()
        if self._segments_missing(shard):
            self._rebuild_bundle(shard)
        for attempt in range(1, self._max_respawns + 1):
            try:
                self._spawn_worker(shard)
                self._await_ready(shard)
            except _WorkerCrashed:
                proc = self._procs[shard]
                if proc is not None and proc.is_alive():  # pragma: no cover
                    proc.kill()
                    proc.join(timeout=_JOIN_TIMEOUT_SECONDS)
                conn = self._conns[shard]
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass
                if self._segments_missing(shard):
                    self._rebuild_bundle(shard)
                if attempt < self._max_respawns:
                    time.sleep(self._respawn_backoff * 2 ** (attempt - 1))
                continue
            self._dead[shard] = False
            self.stats.respawns += 1
            return True
        self._quarantine(shard)
        return False

    def _quarantine(self, shard: int) -> None:
        """Fail ``shard`` out of service permanently (idempotent)."""
        if shard in self._quarantined:
            return
        self._quarantined.add(shard)
        self._dead[shard] = True
        self.stats.quarantined_shards = len(self._quarantined)
        proc = self._procs[shard]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=_JOIN_TIMEOUT_SECONDS)
        conn = self._conns[shard]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _ensure_worker(self, shard: int) -> bool:
        """Make ``shard`` serviceable, respawning if needed.

        Returns ``False`` when the shard is (or just became) quarantined.
        """
        if shard in self._quarantined:
            return False
        proc = self._procs[shard]
        if not self._dead[shard] and proc is not None and proc.is_alive():
            return True
        self._mark_dead(shard)
        return self._respawn(shard)

    def _dispatch(
        self, shard: int, queries: list, method: str, kernel: str, kwargs: dict,
        shard_budget: float | None,
    ) -> int:
        """Send one query batch to ``shard``; returns the reply rid.

        Consumes the fault plan's directives for this dispatch slot (a
        scripted ``kill`` takes the worker down right here, before the
        send, so the batch exercises the crash path) and forwards the
        tightest member budget to the cooperative kernel machinery.
        """
        seq = self._dispatch_seq[shard]
        self._dispatch_seq[shard] = seq + 1
        directives: dict = {}
        if self._fault_plan is not None:
            directives = self._fault_plan.directives_for(shard, seq)
            if directives.pop("kill", False):
                proc = self._procs[shard]
                if proc is not None and proc.is_alive():
                    proc.kill()
                    proc.join(timeout=_JOIN_TIMEOUT_SECONDS)
        send_kwargs = kwargs
        if (
            shard_budget is not None
            and method in _BUDGETED_METHODS
            and "time_budget_seconds" not in kwargs
        ):
            send_kwargs = dict(kwargs, time_budget_seconds=shard_budget)
        rid = next(self._rid)
        try:
            self._conns[shard].send(
                ("query_batch", rid, queries, method, kernel, send_kwargs, directives)
            )
        except (BrokenPipeError, OSError):
            raise _WorkerCrashed(f"shard {shard} pipe broke on dispatch") from None
        return rid

    def _collect(self, shard: int, rid: int, deadline: float | None):
        """Poll for the reply to ``rid``; never blocks past crash or deadline.

        Returns ``(payload, version)``.  Raises :class:`_DeadlineExpired`
        when ``deadline`` passes first, :class:`_WorkerCrashed` when the
        pipe breaks or the worker exits without replying.  Replies to
        abandoned or superseded rids are discarded.
        """
        conn = self._conns[shard]
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise _DeadlineExpired
            wait = (
                _POLL_INTERVAL_SECONDS
                if remaining is None
                else min(_POLL_INTERVAL_SECONDS, remaining)
            )
            try:
                if conn.poll(wait):
                    _, got_rid, payload, version = conn.recv()
                    if got_rid == rid:
                        return payload, version
                    self._abandoned[shard].discard(got_rid)
                    continue  # stale/abandoned reply — drop it
            except (EOFError, BrokenPipeError, OSError):
                raise _WorkerCrashed(f"shard {shard} pipe broke") from None
            proc = self._procs[shard]
            if proc is None or not proc.is_alive():
                # One last zero-wait poll: the reply may have been written
                # just before the exit and still sit in the pipe buffer.
                try:
                    if conn.poll(0):
                        continue
                except (BrokenPipeError, OSError):
                    pass
                raise _WorkerCrashed(f"shard {shard} exited without replying")

    def _serve_shard(
        self,
        shard: int,
        positions: list[int],
        batch: list,
        method: str,
        kernel: str,
        kwargs: dict,
        deadlines: list,
        budgets: list,
        results: list,
        rid: int | None = None,
    ) -> None:
        """Drive ``shard``'s share of a batch to completion, whatever fails.

        The supervision loop: (re)dispatch → collect; a crash requeues the
        pending positions on a respawned worker with exponential backoff,
        repeated crashes quarantine the shard, a deadline expiry abandons
        the reply and fills the slots with ``QueryTimeoutError``.  Every
        position in ``positions`` ends with a result or a typed error —
        never a hang.  ``rid`` carries an already-dispatched request id
        (the batched front-end pre-dispatches to all shards for pipelining).
        """
        pending = positions
        member_deadlines = [deadlines[p] for p in pending]
        deadline = (
            max(member_deadlines)
            if member_deadlines and all(d is not None for d in member_deadlines)
            else None
        )
        member_budgets = [budgets[p] for p in pending if budgets[p] is not None]
        shard_budget = min(member_budgets) if member_budgets else None
        crashes = 0
        while True:
            if shard in self._quarantined:
                for position in pending:
                    results[position] = ShardUnavailableError(
                        f"shard {shard} is quarantined after repeated worker "
                        "failures; its queries fail fast while other shards "
                        "keep serving",
                        shard=shard,
                    )
                return
            if deadline is not None and time.monotonic() >= deadline:
                self._fill_timeouts(pending, budgets, results)
                return
            try:
                if rid is None:
                    if not self._ensure_worker(shard):
                        continue  # quarantined: loop fills the error slots
                    rid = self._dispatch(
                        shard,
                        [batch[p] for p in pending],
                        method,
                        kernel,
                        kwargs,
                        shard_budget,
                    )
                replies, version = self._collect(shard, rid, deadline)
            except _DeadlineExpired:
                if rid is not None:
                    self._abandoned[shard].add(rid)
                self._fill_timeouts(pending, budgets, results)
                return
            except _WorkerCrashed:
                rid = None
                self._mark_dead(shard)
                crashes += 1
                if crashes > self._max_respawns:
                    self._quarantine(shard)
                    continue
                self.stats.requeued_queries += len(pending)
                # First recovery is immediate; only repeated crashes while
                # serving this batch back off (exponentially).
                if crashes > 1:
                    backoff = self._respawn_backoff * 2 ** (crashes - 2)
                    if deadline is not None:
                        backoff = min(backoff, max(0.0, deadline - time.monotonic()))
                    if backoff:
                        time.sleep(backoff)
                continue
            if version == self._shard_versions[shard]:
                self.stats.snapshot_reuses += 1
            self._shard_versions[shard] = version
            now = time.monotonic()
            for position, (_, payload) in zip(pending, replies):
                if deadlines[position] is not None and now >= deadlines[position]:
                    # The shard waited to the batch's latest member deadline;
                    # members with earlier deadlines are individually overdue.
                    self._fill_timeouts([position], budgets, results)
                else:
                    results[position] = payload
            return

    def _fill_timeouts(self, positions: list[int], budgets: list, results: list) -> None:
        """Resolve ``positions`` as deadline misses (typed error per slot)."""
        for position in positions:
            self.stats.timeouts += 1
            budget = budgets[position]
            results[position] = QueryTimeoutError(
                f"query did not complete within its {budget}s deadline",
                timeout=budget,
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """``"thread"`` or ``"process"``."""
        return self._mode

    @property
    def workers(self) -> int:
        """The configured worker count (process mode may run fewer shards)."""
        return self._workers

    @property
    def shard_count(self) -> int:
        """The number of shard workers (1 in thread mode)."""
        return len(self._conns) if self._mode == "process" else 1

    @property
    def quarantined_shards(self) -> frozenset[int]:
        """Shards currently failed out of service (empty in thread mode)."""
        if self._mode == "thread":
            return frozenset()
        with self._lock:
            return frozenset(self._quarantined)

    @property
    def fault_plan(self):
        """The attached :class:`~repro.engine.faults.FaultPlan` (or ``None``)."""
        return self._fault_plan

    @property
    def graph(self) -> UndirectedGraph:
        """The logical store: the engine's store, or the routing mirror.

        Mutate only through :meth:`add_edge` / :meth:`remove_edge` — in
        process mode this is the parent's mirror, and direct mutation would
        desynchronize it from the shard workers.
        """
        if self._mode == "thread":
            return self._engine.graph
        return self._mirror

    def shard_of(self, node: Hashable) -> int | None:
        """Return the shard index owning ``node`` (``None`` if unknown)."""
        if self._mode == "thread":
            return 0 if self._engine.graph.has_node(node) else None
        return self._node_shard.get(node)

    def engine_stats(self) -> dict[str, float]:
        """Return the underlying engine counters, summed across live shards.

        Quarantined shards are skipped; a dead-but-recoverable shard is
        respawned first.  A shard that cannot answer within an internal
        bound is skipped rather than stalling the caller.
        """
        if self._mode == "thread":
            return self._engine.stats.as_dict()
        with self._lock:
            totals: dict[str, float] = {}
            for shard in range(len(self._conns)):
                if not self._ensure_worker(shard):
                    continue
                rid = next(self._rid)
                try:
                    self._conns[shard].send(("stats", rid))
                    counters, _ = self._collect(
                        shard, rid, time.monotonic() + _STATS_TIMEOUT_SECONDS
                    )
                except (_WorkerCrashed, _DeadlineExpired):
                    self._mark_dead(shard)
                    continue
                for key, value in counters.items():
                    totals[key] = totals.get(key, 0) + value
            return totals

    # ------------------------------------------------------------------
    # mutations (routed; the writer never blocks on a reader or a worker)
    # ------------------------------------------------------------------
    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add edge ``(u, v)``; in process mode it is routed to its shard.

        A brand-new edge (neither endpoint seen before) is assigned by a
        stable hash of its canonical edge key; an edge whose endpoints live
        on *different* shards raises
        :class:`~repro.exceptions.CrossShardMutationError` (it would merge
        two components across worker processes).  A quarantined owning
        shard raises :class:`~repro.exceptions.ShardUnavailableError`
        before the mirror is touched.
        """
        if self._mode == "thread":
            self._engine.add_edge(u, v)
            return
        with self._lock:
            if self._mirror.has_edge(u, v):
                return
            shard_u = self._node_shard.get(u)
            shard_v = self._node_shard.get(v)
            if shard_u is not None and shard_v is not None and shard_u != shard_v:
                raise CrossShardMutationError(
                    f"edge ({u!r}, {v!r}) would span shards {shard_u} and "
                    f"{shard_v}; the process-mode serving engine cannot merge "
                    "components across worker processes"
                )
            shard = shard_u if shard_u is not None else shard_v
            if shard is None:
                shard = self._hash_shard(u, v)
            self._check_shard_available(shard)
            self._mirror.add_edge(u, v)
            self._node_shard[u] = shard
            self._node_shard[v] = shard
            self._send_mutation(shard, "add_edge", (u, v))

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove edge ``(u, v)`` (raises ``EdgeNotFoundError`` if absent)."""
        if self._mode == "thread":
            self._engine.remove_edge(u, v)
            return
        with self._lock:
            if not self._mirror.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            shard = self._node_shard[u]
            self._check_shard_available(shard)
            self._mirror.remove_edge(u, v)
            self._send_mutation(shard, "remove_edge", (u, v))

    def _check_shard_available(self, shard: int) -> None:
        if shard in self._quarantined:
            raise ShardUnavailableError(
                f"shard {shard} is quarantined after repeated worker failures; "
                "mutations routed to it are refused",
                shard=shard,
            )

    def _send_mutation(self, shard: int, op_name: str, args: tuple) -> None:
        """Journal + forward one mutation; a send failure just marks the
        worker dead — the oplog replay on respawn delivers the op anyway."""
        self._oplogs[shard].append((op_name, args))
        if self._dead[shard]:
            return
        try:
            self._conns[shard].send(("mutate", op_name, args))
        except (BrokenPipeError, OSError):
            self._mark_dead(shard)

    def _hash_shard(self, u: Hashable, v: Hashable) -> int:
        """Stable fallback shard for an edge between two brand-new nodes.

        ``zlib.crc32`` of the canonical edge key's ``repr`` — deterministic
        across processes and runs, unlike the salted built-in ``hash``.
        """
        key = edge_key(u, v)
        return zlib.crc32(repr(key).encode("utf-8")) % len(self._conns)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        query: Sequence[Hashable],
        method: str = "lctc",
        *,
        kernel: str = "csr",
        at_version: int | None = None,
        timeout: float | None = None,
        **kwargs,
    ) -> CommunityResult:
        """Answer one query (a batch of one; prefer :meth:`query_batch`)."""
        return self.query_batch(
            [query], method, kernel=kernel, at_version=at_version, timeout=timeout,
            **kwargs,
        )[0]

    def query_batch(
        self,
        queries: Iterable[Sequence[Hashable]],
        method: str = "lctc",
        *,
        kernel: str = "csr",
        at_version: int | None = None,
        timeout=None,
        return_exceptions: bool = False,
        **kwargs,
    ) -> list:
        """Answer many concurrently-arriving queries, amortizing setup.

        The whole batch reads one consistent store version per shard: thread
        mode pins a single :class:`SnapshotLease` for the batch, process
        mode resolves one snapshot per shard touched.  With
        ``return_exceptions=True`` per-query failures come back as exception
        *objects* in their result slots instead of aborting the batch —
        the contract the async facade relies on.  ``at_version`` time-travel
        pinning is thread-mode only (shard workers hold independent version
        histories); process mode raises
        :class:`~repro.exceptions.ConfigurationError` for it.

        ``timeout`` is a per-query deadline in seconds: a positive scalar
        applied to every query, or a sequence of per-query values (``None``
        entries exempt).  An overdue query's slot resolves to
        :class:`~repro.exceptions.QueryTimeoutError` (raised, unless
        ``return_exceptions=True``) instead of stalling the batch; for the
        global methods the budget also rides into the kernels' cooperative
        ``time_budget_seconds`` machinery.  A query routed to a quarantined
        shard resolves to :class:`~repro.exceptions.ShardUnavailableError`.
        """
        batch = [list(query) for query in queries]
        deadlines, budgets = _resolve_deadlines(timeout, len(batch))
        if self._mode == "process":
            if at_version is not None:
                raise ConfigurationError(
                    "at_version is not supported in process serving mode: "
                    "shard workers hold independent version histories; use "
                    "thread mode (or a plain CTCEngine) for time-travel reads"
                )
            return self._query_batch_process(
                batch, method, kernel, kwargs, return_exceptions, deadlines, budgets
            )
        return self._query_batch_thread(
            batch, method, kernel, at_version, kwargs, return_exceptions,
            deadlines, budgets,
        )

    def _query_batch_thread(
        self, batch, method, kernel, at_version, kwargs, return_exceptions,
        deadlines, budgets,
    ) -> list:
        from repro.ctc.api import search

        # The lease resolution (delta apply / rebuild wait) honors the
        # batch's latest deadline; if every member has one, so does the wait.
        lease_timeout = None
        if batch and all(d is not None for d in deadlines):
            lease_timeout = max(0.0, max(deadlines) - time.monotonic())
        try:
            lease = self._engine.lease(at_version, timeout=lease_timeout)
        except QueryTimeoutError:
            with self._lock:
                self.stats.batches += 1
                self.stats.queries += len(batch)
                results = [None] * len(batch)
                self._fill_timeouts(list(range(len(batch))), budgets, results)
            if not return_exceptions:
                raise
            return results
        with lease:
            with self._lock:
                self.stats.batches += 1
                self.stats.queries += len(batch)
                self.stats.coalesced_queries += max(0, len(batch) - 1)
                self.stats.leases += 1
                if lease.version == self._last_version:
                    self.stats.snapshot_reuses += 1
                self._last_version = lease.version
            snapshot = lease.snapshot
            # Warm the lazy per-version structure once, before the fan-out,
            # so the workers never race to build it B times.
            if kernel == "dict":
                snapshot.index
            else:
                snapshot.kernel
            if not batch:
                return []

            # Thread mode is "shard 0" in fault-plan coordinates.  A
            # scripted kill is meaningless here (there is no process to
            # kill) and is consumed as a no-op; poison fails every query in
            # the batch; delay stalls each query's executor.
            delay = 0.0
            poison = False
            if self._fault_plan is not None:
                with self._lock:
                    seq = self._dispatch_seq[0]
                    self._dispatch_seq[0] = seq + 1
                directives = self._fault_plan.directives_for(0, seq)
                delay = directives.get("delay", 0.0)
                poison = bool(directives.get("poison"))

            def run(index, query):
                if delay:
                    time.sleep(delay)
                if poison:
                    return RuntimeError(
                        "fault injection: query poisoned by the fault plan"
                    )
                call_kwargs = kwargs
                if (
                    budgets[index] is not None
                    and method in _BUDGETED_METHODS
                    and "time_budget_seconds" not in kwargs
                ):
                    call_kwargs = dict(kwargs, time_budget_seconds=budgets[index])
                try:
                    return search(
                        snapshot, query, method=method, kernel=kernel, **call_kwargs
                    )
                except Exception as exc:
                    return exc

            futures = [
                self._pool.submit(run, index, query)
                for index, query in enumerate(batch)
            ]
            results = []
            for index, future in enumerate(futures):
                remaining = (
                    None
                    if deadlines[index] is None
                    else max(0.0, deadlines[index] - time.monotonic())
                )
                try:
                    results.append(future.result(timeout=remaining))
                except FutureTimeoutError:
                    future.cancel()
                    slot = [None]
                    with self._lock:
                        self._fill_timeouts([0], [budgets[index]], slot)
                    results.append(slot[0])
        if not return_exceptions:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results

    def _query_batch_process(
        self, batch, method, kernel, kwargs, return_exceptions, deadlines, budgets
    ) -> list:
        results: list = [None] * len(batch)
        per_shard: dict[int, list[int]] = defaultdict(list)
        for position, query in enumerate(batch):
            try:
                per_shard[self._route_query(query)].append(position)
            except Exception as exc:
                if not return_exceptions:
                    raise
                results[position] = exc
        with self._lock:
            self.stats.batches += 1
            self.stats.queries += len(batch)
            self.stats.coalesced_queries += len(batch) - len(per_shard)
            # Pre-dispatch to every healthy shard before collecting any
            # reply, so shard workers compute in parallel; the supervision
            # loop in _serve_shard handles everything that goes wrong.
            dispatched: dict[int, int | None] = {}
            for shard, positions in per_shard.items():
                rid = None
                proc = self._procs[shard]
                healthy = (
                    shard not in self._quarantined
                    and not self._dead[shard]
                    and proc is not None
                    and proc.is_alive()
                )
                if healthy:
                    member_budgets = [
                        budgets[p] for p in positions if budgets[p] is not None
                    ]
                    shard_budget = min(member_budgets) if member_budgets else None
                    try:
                        rid = self._dispatch(
                            shard,
                            [batch[p] for p in positions],
                            method,
                            kernel,
                            kwargs,
                            shard_budget,
                        )
                    except _WorkerCrashed:
                        self._mark_dead(shard)
                        self.stats.requeued_queries += len(positions)
                dispatched[shard] = rid
            for shard, positions in per_shard.items():
                self._serve_shard(
                    shard, positions, batch, method, kernel, kwargs,
                    deadlines, budgets, results, rid=dispatched[shard],
                )
        if not return_exceptions:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results

    def _route_query(self, query: list) -> int:
        """Return the shard answering ``query``; raise like the kernels would."""
        nodes = list(dict.fromkeys(query))
        if not nodes:
            raise QueryError("the query node set must not be empty")
        shards = set()
        missing = [node for node in nodes if node not in self._node_shard]
        if missing:
            raise QueryError(f"query nodes not present in the graph: {missing!r}")
        shards = {self._node_shard[node] for node in nodes}
        if len(shards) > 1:
            with self._lock:
                self.stats.cross_shard_rejects += 1
            raise NoCommunityFoundError(
                f"query nodes {nodes!r} lie in different serving shards "
                "(disconnected components); no connected community contains "
                "them all"
            )
        return next(iter(shards))

    # ------------------------------------------------------------------
    # async facade
    # ------------------------------------------------------------------
    async def aquery(
        self,
        query: Sequence[Hashable],
        method: str = "lctc",
        *,
        kernel: str = "csr",
        timeout: float | None = None,
        **kwargs,
    ) -> CommunityResult:
        """Answer one query, coalescing with concurrently-awaiting callers.

        Every ``aquery`` call enqueues; a single drainer task groups the
        backlog by ``(method, kernel, kwargs, timeout)`` and runs each group
        as one :meth:`query_batch` in a worker thread — so N coroutines
        gathered together resolve N queries against one pinned snapshot,
        without the callers knowing about each other.  ``timeout`` is this
        query's deadline in seconds; queries with different timeouts land in
        different groups so each batch carries one deadline.  Must run
        inside an event loop.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        group = (
            method,
            kernel,
            _kwargs_group_key(kwargs),
            None if timeout is None else float(timeout),
        )
        self._pending.append((group, list(query), kwargs, future))
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = loop.create_task(self._drain_pending())
        return await future

    async def _drain_pending(self) -> None:
        loop = asyncio.get_running_loop()
        while self._pending:
            # One tick lets every already-scheduled aquery coroutine enqueue
            # before the batch is cut — that is the whole coalescing trick.
            await asyncio.sleep(0)
            backlog, self._pending = self._pending, []
            groups: dict = defaultdict(list)
            for group, query, kwargs, future in backlog:
                groups[group].append((query, kwargs, future))
            for (method, kernel, _, timeout), items in groups.items():
                # The group key is repr-based; two kwargs dicts can collide
                # on repr without being equal (e.g. np.float64(1.0) vs 1.0).
                # Sub-bucket by actual equality so no member ever runs with
                # another member's kwargs.
                buckets: list[tuple[dict, list]] = []
                for item in items:
                    for bucket_kwargs, bucket_items in buckets:
                        if bucket_kwargs == item[1]:
                            bucket_items.append(item)
                            break
                    else:
                        buckets.append((item[1], [item]))
                for bucket_kwargs, bucket_items in buckets:
                    queries = [query for query, _, _ in bucket_items]
                    try:
                        results = await loop.run_in_executor(
                            None,
                            partial(
                                self.query_batch,
                                queries,
                                method,
                                kernel=kernel,
                                timeout=timeout,
                                return_exceptions=True,
                                **bucket_kwargs,
                            ),
                        )
                    except Exception as exc:  # batch-level failure (e.g. closed)
                        results = [exc] * len(bucket_items)
                    for (_, _, future), result in zip(bucket_items, results):
                        if future.cancelled():
                            continue
                        if isinstance(result, Exception):
                            future.set_exception(result)
                        else:
                            future.set_result(result)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers and release shared-memory segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        if self._mode == "thread":
            self._pool.shutdown(wait=True)
        else:
            self._shutdown_process_workers()
            _unregister_signal_cleanup(self)
        if self._recovered is not None:
            self._recovered.close()
            self._recovered = None

    def _emergency_unlink(self) -> None:
        """Shed shm segment names without joining workers (signal-handler path).

        Uses :meth:`SharedArrayBundle.release_names`, not ``unlink``: the
        names must not leak past the process, but the parent's own mapped
        views must stay valid — if a chained application handler elects to
        survive the signal, :meth:`_rebuild_bundle` republishes shards from
        exactly those views.
        """
        for bundle in getattr(self, "_bundles", None) or []:
            try:
                bundle.release_names()
            except Exception:
                pass

    def _shutdown_process_workers(self) -> None:
        """Tear the worker fleet down; every stage survives partial failure.

        A dead worker, a broken pipe, or a mid-teardown exception must not
        prevent the later stages — above all the bundle unlinks, which are
        what keep ``/dev/shm`` from leaking.
        """
        for conn in getattr(self, "_conns", []):
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for process in getattr(self, "_procs", []):
            if process is None:
                continue
            try:
                process.join(timeout=_JOIN_TIMEOUT_SECONDS)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=_JOIN_TIMEOUT_SECONDS)
            except Exception:  # pragma: no cover - already reaped
                pass
        for conn in getattr(self, "_conns", []):
            if conn is None:
                continue
            try:
                conn.close()
            except Exception:  # pragma: no cover - already closed
                pass
        for bundle in getattr(self, "_bundles", []):
            try:
                bundle.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
        self._conns, self._procs, self._bundles = [], [], []

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"{type(self).__name__}(mode={self._mode!r}, "
            f"workers={self._workers}, shards={self.shard_count}, {state})"
        )
