""":class:`ServingEngine`: a concurrent, batched front-end over :class:`CTCEngine`.

The engine core is an MVCC design — immutable version-keyed snapshots over
a delta log — but by itself it serves one query at a time.  This module
adds the serving layer the ROADMAP's "millions of users" track calls for:

* **Thread mode** (``mode="thread"``): one shared :class:`CTCEngine`
  behind a thread pool.  :meth:`ServingEngine.query_batch` takes a single
  epoch-pinned :class:`~repro.engine.core.SnapshotLease`, warms the
  snapshot's lazy kernel once, and fans the batch out across the pool —
  so ``B`` concurrently-arriving queries pay **one** snapshot resolution
  (delta apply or rebuild) and **one** kernel setup instead of ``B``.
  The writer keeps mutating underneath; the lease guarantees every query
  in the batch reads one consistent version.
* **Process mode** (``mode="process"``): the store is sharded by connected
  component (:func:`~repro.graph.components.balanced_shards`; nodes first
  seen on a new edge fall back to a stable hash of the canonical edge
  key), and each shard is served by a worker process.  The parent exports
  every shard's frozen CSR buffers — adjacency, per-edge trussness,
  supports, triangle incidence — into ``multiprocessing.shared_memory``
  (:meth:`~repro.graph.csr.CSRGraph.to_shared`), so workers map their
  snapshots zero-copy and skip the from-scratch decomposition entirely
  (:meth:`CTCEngine.from_arrays`).  Mutations are routed to the owning
  shard fire-and-forget (the writer never blocks on a worker), which
  means a mutation dirties **one shard's** snapshot instead of the whole
  store — on a multi-community graph that is the dominant win, on top of
  whatever hardware parallelism the host offers.
* **Async facade**: :meth:`ServingEngine.aquery` queues concurrently
  arriving ``asyncio`` queries and drains them in grouped
  :meth:`query_batch` calls, so independent coroutines coalesce onto one
  pinned snapshot without coordinating with each other.

Shard semantics (process mode)
------------------------------
Truss communities never span connected components, so any query whose
nodes live in one shard gets exactly the same answer as on the unsharded
store (the equivalence the test suite pins).  Queries spanning shards
raise :class:`~repro.exceptions.NoCommunityFoundError` — on the unsharded
store they would raise that or :class:`~repro.exceptions.QueryError`
("terminals are not mutually connected"), depending on the method; the
router cannot tell which without running the query, so it reports the
model-level truth (no connected community exists).  Mutations that would
*merge* two shards raise
:class:`~repro.exceptions.CrossShardMutationError`.

Shared-memory ownership: the parent creates each shard's buffers, keeps
them alive for the worker's lifetime, and unlinks them in :meth:`close`
(also run by ``__exit__`` and at interpreter exit via ``atexit``);
workers merely attach and drop their mapping on shutdown.
"""

from __future__ import annotations

import atexit
import asyncio
import itertools
import pickle
import threading
import zlib
from collections import defaultdict
from collections.abc import Hashable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

import multiprocessing

import numpy as np

from repro.ctc.result import CommunityResult
from repro.engine.core import CTCEngine
from repro.exceptions import (
    ConfigurationError,
    CrossShardMutationError,
    EdgeNotFoundError,
    NoCommunityFoundError,
    QueryError,
)
from repro.graph.components import balanced_shards
from repro.graph.csr import CSRGraph
from repro.graph.csr_triangles import TriangleIncidence, subset_incidence
from repro.graph.keys import edge_key
from repro.graph.shm import SharedArrayBundle
from repro.graph.simple_graph import UndirectedGraph

__all__ = ["ServingEngine", "ServingStats"]

#: Worker shutdown grace period before the parent terminates the process.
_JOIN_TIMEOUT_SECONDS = 5.0


@dataclass
class ServingStats:
    """Per-front-end counters (cumulative over the serving engine's lifetime).

    ``coalesced_queries`` counts queries that rode along on another query's
    snapshot resolution — ``queries`` minus the number of snapshot
    resolutions actually performed (leases in thread mode, shard-batch
    messages in process mode).  ``snapshot_reuses`` counts resolutions that
    landed on the same version as the previous one on that
    engine/shard — i.e. the store had not moved, so even the delta apply
    was skipped.  ``cross_shard_rejects`` counts queries refused because
    their nodes span shards (process mode only).
    """

    mode: str = "thread"
    workers: int = 0
    batches: int = 0
    queries: int = 0
    coalesced_queries: int = 0
    leases: int = 0
    snapshot_reuses: int = 0
    cross_shard_rejects: int = 0

    def as_dict(self) -> dict[str, float]:
        """Return the counters as a plain dict (for CLI/benchmark reporting)."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "batches": self.batches,
            "queries": self.queries,
            "coalesced_queries": self.coalesced_queries,
            "leases": self.leases,
            "snapshot_reuses": self.snapshot_reuses,
            "cross_shard_rejects": self.cross_shard_rejects,
        }


def _picklable_exception(exc: Exception) -> Exception:
    """Return ``exc`` if it survives a pickle round-trip, else a plain stand-in.

    Library exceptions with custom constructor signatures (e.g.
    ``VersionEvictedError``) do not all reconstruct from ``exc.args``; the
    stand-in keeps the message and original type name so the parent still
    reports something actionable.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return QueryError(f"{type(exc).__name__}: {exc}")


def _shard_worker(conn, meta, engine_kwargs: dict, untrack: bool) -> None:
    """Serve one shard from shared-memory snapshot buffers (worker main).

    Attaches the parent's bundle zero-copy, seeds a shard-local
    :class:`CTCEngine` from the already-decomposed arrays, then answers
    ordered messages on ``conn``:

    * ``("mutate", op_name, args)`` — apply a store mutation; no reply
      (fire-and-forget keeps the parent's writer non-blocking).
    * ``("query_batch", rid, queries, method, kernel, kwargs)`` — answer
      every query against one snapshot; replies
      ``("result", rid, [("ok", result) | ("err", exc), ...], version)``.
    * ``("stats", rid)`` — replies with the shard engine's counter dict.
    * ``("stop",)`` — exit.
    """
    import gc

    from repro.ctc.api import search

    # Fork-server hygiene: move the inherited parent heap into the permanent
    # generation so worker GC cycles never traverse (and copy-on-write
    # unshare) it — otherwise periodic gen-2 collections inside a worker
    # stall whole query batches.
    gc.collect()
    gc.freeze()

    bundle = SharedArrayBundle.attach(meta, untrack=untrack)
    try:
        csr = CSRGraph.from_shared(bundle)
        supports = bundle["supports"]
        incidence = None
        if "inc_indptr" in bundle:
            incidence = TriangleIncidence(
                edges=bundle["tri_edges"],
                supports=supports,
                inc_indptr=bundle["inc_indptr"],
                inc_triangles=bundle["inc_triangles"],
            )
        engine = CTCEngine.from_arrays(
            csr,
            bundle["trussness"],
            supports=supports,
            incidence=incidence,
            **engine_kwargs,
        )
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "stop":
                break
            if op == "mutate":
                _, op_name, args = message
                try:
                    getattr(engine, op_name)(*args)
                except Exception:
                    # The parent validated against its authoritative mirror
                    # before routing; a failure here means the op raced a
                    # semantically equivalent one (e.g. re-adding an edge)
                    # and is safe to drop.
                    pass
            elif op == "query_batch":
                _, rid, queries, method, kernel, kwargs = message
                snapshot = engine.snapshot()
                replies = []
                for query in queries:
                    try:
                        result = search(
                            snapshot, query, method=method, kernel=kernel, **kwargs
                        )
                        replies.append(("ok", result))
                    except Exception as exc:
                        replies.append(("err", _picklable_exception(exc)))
                conn.send(("result", rid, replies, engine.version))
            elif op == "stats":
                _, rid = message
                conn.send(("result", rid, engine.stats.as_dict(), engine.version))
    finally:
        conn.close()
        bundle.close()


class ServingEngine:
    """Batched, concurrent query serving over one logical graph store.

    Parameters
    ----------
    source:
        The graph to serve: an :class:`UndirectedGraph` (copied), or an
        existing :class:`CTCEngine` — thread mode serves the engine
        *in place* (sharing its store and cache), process mode freezes its
        current snapshot as the shard baseline.
    workers:
        Thread-pool width (thread mode) / maximum shard worker processes
        (process mode; capped by the number of connected components).
    mode:
        ``"thread"`` (default) or ``"process"`` — see the module docstring.
    **engine_kwargs:
        Forwarded to every internally created :class:`CTCEngine`
        (``cache_size``, ``delta_threshold``, ``delta_log_limit``,
        ``decomp``).

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> with ServingEngine(complete_graph(5), workers=2) as serving:
    ...     [r.trussness for r in serving.query_batch([[0, 1], [2, 3]])]
    [5, 5]
    """

    def __init__(
        self,
        source: UndirectedGraph | CTCEngine,
        *,
        workers: int = 4,
        mode: str = "thread",
        **engine_kwargs,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        self._mode = mode
        self._workers = workers
        self._engine_kwargs = dict(engine_kwargs)
        self._closed = False
        self._lock = threading.RLock()
        self._rid = itertools.count()
        self.stats = ServingStats(mode=mode, workers=workers)

        # Async facade state (lazy; only touched from the event loop thread).
        self._pending: list = []
        self._drain_task: asyncio.Task | None = None

        if mode == "thread":
            if isinstance(source, CTCEngine):
                self._engine = source
            else:
                self._engine = CTCEngine(source, **engine_kwargs)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serving"
            )
            self._last_version: int | None = None
        else:
            self._start_process_workers(source)
        atexit.register(self.close)

    # ------------------------------------------------------------------
    # process-mode setup
    # ------------------------------------------------------------------
    def _start_process_workers(self, source: UndirectedGraph | CTCEngine) -> None:
        """Shard the store, export shm snapshot buffers, fork the workers."""
        if isinstance(source, CTCEngine):
            baseline = source
        else:
            baseline = CTCEngine(source, **self._engine_kwargs)
        snapshot = baseline.snapshot()
        csr = snapshot.csr
        #: Authoritative routing mirror: same content as the union of all
        #: shard stores, mutated in lock-step with the routed mutations.
        self._mirror = snapshot.graph.copy()

        shards = balanced_shards(self._mirror, self._workers)
        if not shards:
            shards = [set()]  # empty store: one idle worker keeps the API total
        self._node_shard: dict[Hashable, int] = {
            node: index for index, nodes in enumerate(shards) for node in nodes
        }
        self._shard_versions: list[int] = [0] * len(shards)

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            context = multiprocessing.get_context("spawn")

        node_is_sharded = np.zeros(csr.number_of_nodes(), dtype=bool)
        self._bundles: list[SharedArrayBundle] = []
        self._conns = []
        self._procs = []
        try:
            for index, nodes in enumerate(shards):
                node_ids = np.asarray(
                    sorted(csr.node_id(node) for node in nodes), dtype=np.int64
                )
                node_is_sharded[:] = False
                node_is_sharded[node_ids] = True
                # Shards are unions of components: an edge's lower endpoint
                # being in the shard implies the upper one is too.
                shard_edges = np.nonzero(node_is_sharded[csr.edge_u])[0]
                sub = csr.edge_subgraph(shard_edges, include_node_ids=node_ids)
                extra = {
                    "trussness": snapshot.trussness[sub.edge_origin],
                    "supports": snapshot.supports[sub.edge_origin],
                }
                if snapshot.incidence is not None:
                    shard_incidence = subset_incidence(
                        snapshot.incidence, sub.edge_origin
                    )
                    extra["tri_edges"] = shard_incidence.edges
                    extra["inc_indptr"] = shard_incidence.inc_indptr
                    extra["inc_triangles"] = shard_incidence.inc_triangles
                bundle = sub.csr.to_shared(f"repro_s{index}", extra_arrays=extra)
                self._bundles.append(bundle)

                parent_conn, child_conn = context.Pipe()
                # Spawn-started workers run their own resource tracker and
                # must untrack; fork-started workers share the parent's.
                process = context.Process(
                    target=_shard_worker,
                    args=(
                        child_conn,
                        bundle.meta,
                        self._engine_kwargs,
                        context.get_start_method() != "fork",
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(process)
        except BaseException:
            self._shutdown_process_workers()
            raise

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """``"thread"`` or ``"process"``."""
        return self._mode

    @property
    def workers(self) -> int:
        """The configured worker count (process mode may run fewer shards)."""
        return self._workers

    @property
    def shard_count(self) -> int:
        """The number of shard workers (1 in thread mode)."""
        return len(self._conns) if self._mode == "process" else 1

    @property
    def graph(self) -> UndirectedGraph:
        """The logical store: the engine's store, or the routing mirror.

        Mutate only through :meth:`add_edge` / :meth:`remove_edge` — in
        process mode this is the parent's mirror, and direct mutation would
        desynchronize it from the shard workers.
        """
        if self._mode == "thread":
            return self._engine.graph
        return self._mirror

    def shard_of(self, node: Hashable) -> int | None:
        """Return the shard index owning ``node`` (``None`` if unknown)."""
        if self._mode == "thread":
            return 0 if self._engine.graph.has_node(node) else None
        return self._node_shard.get(node)

    def engine_stats(self) -> dict[str, float]:
        """Return the underlying engine counters, summed across shards."""
        if self._mode == "thread":
            return self._engine.stats.as_dict()
        with self._lock:
            totals: dict[str, float] = {}
            for conn in self._conns:
                rid = next(self._rid)
                conn.send(("stats", rid))
                _, _, counters, _ = conn.recv()
                for key, value in counters.items():
                    totals[key] = totals.get(key, 0) + value
            return totals

    # ------------------------------------------------------------------
    # mutations (routed; the writer never blocks on a reader or a worker)
    # ------------------------------------------------------------------
    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add edge ``(u, v)``; in process mode it is routed to its shard.

        A brand-new edge (neither endpoint seen before) is assigned by a
        stable hash of its canonical edge key; an edge whose endpoints live
        on *different* shards raises
        :class:`~repro.exceptions.CrossShardMutationError` (it would merge
        two components across worker processes).
        """
        if self._mode == "thread":
            self._engine.add_edge(u, v)
            return
        with self._lock:
            if self._mirror.has_edge(u, v):
                return
            shard_u = self._node_shard.get(u)
            shard_v = self._node_shard.get(v)
            if shard_u is not None and shard_v is not None and shard_u != shard_v:
                raise CrossShardMutationError(
                    f"edge ({u!r}, {v!r}) would span shards {shard_u} and "
                    f"{shard_v}; the process-mode serving engine cannot merge "
                    "components across worker processes"
                )
            shard = shard_u if shard_u is not None else shard_v
            if shard is None:
                shard = self._hash_shard(u, v)
            self._mirror.add_edge(u, v)
            self._node_shard[u] = shard
            self._node_shard[v] = shard
            self._conns[shard].send(("mutate", "add_edge", (u, v)))

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove edge ``(u, v)`` (raises ``EdgeNotFoundError`` if absent)."""
        if self._mode == "thread":
            self._engine.remove_edge(u, v)
            return
        with self._lock:
            self._mirror.remove_edge(u, v)  # authoritative membership check
            self._conns[self._node_shard[u]].send(("mutate", "remove_edge", (u, v)))

    def _hash_shard(self, u: Hashable, v: Hashable) -> int:
        """Stable fallback shard for an edge between two brand-new nodes.

        ``zlib.crc32`` of the canonical edge key's ``repr`` — deterministic
        across processes and runs, unlike the salted built-in ``hash``.
        """
        key = edge_key(u, v)
        return zlib.crc32(repr(key).encode("utf-8")) % len(self._conns)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        query: Sequence[Hashable],
        method: str = "lctc",
        *,
        kernel: str = "csr",
        at_version: int | None = None,
        **kwargs,
    ) -> CommunityResult:
        """Answer one query (a batch of one; prefer :meth:`query_batch`)."""
        return self.query_batch(
            [query], method, kernel=kernel, at_version=at_version, **kwargs
        )[0]

    def query_batch(
        self,
        queries: Iterable[Sequence[Hashable]],
        method: str = "lctc",
        *,
        kernel: str = "csr",
        at_version: int | None = None,
        return_exceptions: bool = False,
        **kwargs,
    ) -> list:
        """Answer many concurrently-arriving queries, amortizing setup.

        The whole batch reads one consistent store version per shard: thread
        mode pins a single :class:`SnapshotLease` for the batch, process
        mode resolves one snapshot per shard touched.  With
        ``return_exceptions=True`` per-query failures come back as exception
        *objects* in their result slots instead of aborting the batch —
        the contract the async facade relies on.  ``at_version`` time-travel
        pinning is thread-mode only (shard workers hold independent version
        histories); process mode raises
        :class:`~repro.exceptions.ConfigurationError` for it.
        """
        batch = [list(query) for query in queries]
        if self._mode == "process":
            if at_version is not None:
                raise ConfigurationError(
                    "at_version is not supported in process serving mode: "
                    "shard workers hold independent version histories; use "
                    "thread mode (or a plain CTCEngine) for time-travel reads"
                )
            return self._query_batch_process(
                batch, method, kernel, kwargs, return_exceptions
            )
        return self._query_batch_thread(
            batch, method, kernel, at_version, kwargs, return_exceptions
        )

    def _query_batch_thread(
        self, batch, method, kernel, at_version, kwargs, return_exceptions
    ) -> list:
        from repro.ctc.api import search

        with self._engine.lease(at_version) as lease:
            with self._lock:
                self.stats.batches += 1
                self.stats.queries += len(batch)
                self.stats.coalesced_queries += max(0, len(batch) - 1)
                self.stats.leases += 1
                if lease.version == self._last_version:
                    self.stats.snapshot_reuses += 1
                self._last_version = lease.version
            snapshot = lease.snapshot
            # Warm the lazy per-version structure once, before the fan-out,
            # so the workers never race to build it B times.
            if kernel == "dict":
                snapshot.index
            else:
                snapshot.kernel
            if not batch:
                return []

            def run(query):
                try:
                    return search(snapshot, query, method=method, kernel=kernel, **kwargs)
                except Exception as exc:
                    return exc

            results = list(self._pool.map(run, batch))
        if not return_exceptions:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results

    def _query_batch_process(
        self, batch, method, kernel, kwargs, return_exceptions
    ) -> list:
        results: list = [None] * len(batch)
        per_shard: dict[int, list[int]] = defaultdict(list)
        for position, query in enumerate(batch):
            try:
                per_shard[self._route_query(query)].append(position)
            except Exception as exc:
                if not return_exceptions:
                    raise
                results[position] = exc
        with self._lock:
            self.stats.batches += 1
            self.stats.queries += len(batch)
            self.stats.coalesced_queries += len(batch) - len(per_shard)
            for shard, positions in per_shard.items():
                self._conns[shard].send(
                    (
                        "query_batch",
                        next(self._rid),
                        [batch[position] for position in positions],
                        method,
                        kernel,
                        kwargs,
                    )
                )
            for shard, positions in per_shard.items():
                _, _, replies, version = self._conns[shard].recv()
                if version == self._shard_versions[shard]:
                    self.stats.snapshot_reuses += 1
                self._shard_versions[shard] = version
                for position, (_, payload) in zip(positions, replies):
                    results[position] = payload
        # Drain every shard's reply before raising, or the unread pipes
        # would desynchronize the next batch's request/reply pairing.
        if not return_exceptions:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results

    def _route_query(self, query: list) -> int:
        """Return the shard answering ``query``; raise like the kernels would."""
        nodes = list(dict.fromkeys(query))
        if not nodes:
            raise QueryError("the query node set must not be empty")
        shards = set()
        missing = [node for node in nodes if node not in self._node_shard]
        if missing:
            raise QueryError(f"query nodes not present in the graph: {missing!r}")
        shards = {self._node_shard[node] for node in nodes}
        if len(shards) > 1:
            with self._lock:
                self.stats.cross_shard_rejects += 1
            raise NoCommunityFoundError(
                f"query nodes {nodes!r} lie in different serving shards "
                "(disconnected components); no connected community contains "
                "them all"
            )
        return next(iter(shards))

    # ------------------------------------------------------------------
    # async facade
    # ------------------------------------------------------------------
    async def aquery(
        self,
        query: Sequence[Hashable],
        method: str = "lctc",
        *,
        kernel: str = "csr",
        **kwargs,
    ) -> CommunityResult:
        """Answer one query, coalescing with concurrently-awaiting callers.

        Every ``aquery`` call enqueues; a single drainer task groups the
        backlog by ``(method, kernel, kwargs)`` and runs each group as one
        :meth:`query_batch` in a worker thread — so N coroutines gathered
        together resolve N queries against one pinned snapshot, without the
        callers knowing about each other.  Must run inside an event loop.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        group = (method, kernel, tuple(sorted(kwargs.items())))
        self._pending.append((group, list(query), kwargs, future))
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = loop.create_task(self._drain_pending())
        return await future

    async def _drain_pending(self) -> None:
        loop = asyncio.get_running_loop()
        while self._pending:
            # One tick lets every already-scheduled aquery coroutine enqueue
            # before the batch is cut — that is the whole coalescing trick.
            await asyncio.sleep(0)
            backlog, self._pending = self._pending, []
            groups: dict = defaultdict(list)
            for group, query, kwargs, future in backlog:
                groups[group].append((query, kwargs, future))
            for (method, kernel, _), items in groups.items():
                queries = [query for query, _, _ in items]
                kwargs = items[0][1]
                try:
                    results = await loop.run_in_executor(
                        None,
                        partial(
                            self.query_batch,
                            queries,
                            method,
                            kernel=kernel,
                            return_exceptions=True,
                            **kwargs,
                        ),
                    )
                except Exception as exc:  # batch-level failure (e.g. closed)
                    results = [exc] * len(items)
                for (_, _, future), result in zip(items, results):
                    if future.cancelled():
                        continue
                    if isinstance(result, Exception):
                        future.set_exception(result)
                    else:
                        future.set_result(result)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers and release shared-memory segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        if self._mode == "thread":
            self._pool.shutdown(wait=True)
        else:
            self._shutdown_process_workers()

    def _shutdown_process_workers(self) -> None:
        for conn in getattr(self, "_conns", []):
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in getattr(self, "_procs", []):
            process.join(timeout=_JOIN_TIMEOUT_SECONDS)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_SECONDS)
        for conn in getattr(self, "_conns", []):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for bundle in getattr(self, "_bundles", []):
            bundle.unlink()
        self._conns, self._procs, self._bundles = [], [], []

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"{type(self).__name__}(mode={self._mode!r}, "
            f"workers={self._workers}, shards={self.shard_count}, {state})"
        )
