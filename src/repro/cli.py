"""Command-line interface: ``ctc-search``.

Two subcommands:

* ``search`` — load a graph from an edge-list file, run one of the community
  search methods for a set of query nodes, and print the community.
* ``experiment`` — run one of the paper's experiment drivers (tables and
  figures) on the built-in synthetic datasets and print the rows.

Examples
--------
::

    ctc-search search graph.txt --query q1 q2 q3 --method lctc
    ctc-search search graph.txt --query q1 q2 --engine --repeat 100
    ctc-search search graph.txt --query q1 q2 --engine --repeat 100 --kernel dict
    ctc-search search graph.txt --query q1 q2 --engine --repeat 100 --mutate-every 5
    ctc-search search graph.txt --query q1 q2 --engine --repeat 100 --mutate-every 5 --at-version 0
    ctc-search search graph.txt --query q1 q2 --engine --repeat 100 --window 500
    ctc-search search graph.txt --query q1 q2 --engine --repeat 100 --workers 4
    ctc-search search graph.txt --query q1 q2 --engine --repeat 100 --workers 4 --serving-mode process
    ctc-search search graph.txt --query q1 q2 --engine --data-dir ./store --fsync batch
    ctc-search search --query q1 q2 --engine --data-dir ./store --recover
    ctc-search experiment table2
    ctc-search experiment fig12 --queries 10

The ``--engine`` family of flags exposes the delta-propagation pipeline:
``--cache-size`` and ``--delta-threshold`` are the engine's snapshot-LRU
and rebuild-policy knobs, and ``--mutate-every N`` interleaves one edge
mutation every N queries (a mixed read/write workload served through the
delta path instead of full snapshot rebuilds).  The temporal layer rides
on the same log: ``--at-version V`` pins every query at historical store
version ``V`` (time-travel reads that stay put while ``--mutate-every``
advances the store), and ``--window W`` serves the queries from a
:class:`~repro.engine.SlidingWindowEngine` that retains only the ``W``
most recently inserted edges, expiring the rest through incremental truss
maintenance.  ``--kernel`` picks the
query execution path on engine snapshots: ``csr`` (the default with
``--engine``) runs the CTC methods on the array kernels of
:mod:`repro.ctc.kernels`, ``dict`` forces the classic dict path; results
are identical either way.  ``--decomp`` picks the full-rebuild
decomposition strategy (``auto``/``vector``/``bucket`` — the
level-synchronous vector peel or the sequential bucket queue; trussness is
bit-identical either way).  ``--workers N`` serves the ``--repeat`` loop
through the concurrent :class:`~repro.engine.ServingEngine` front-end in
batches (one pinned snapshot per batch); ``--serving-mode`` picks the
thread-pool (default) or the shard-per-process back end.
``--query-timeout S`` puts a per-query deadline on every served query:
an overdue query fails with a typed timeout instead of stalling its
batch (the serving layer's fault-tolerance machinery — crashed shard
workers are likewise respawned transparently, with the recovery counters
reported in the stats footer).

The durability layer (:mod:`repro.engine.persistence`) is exposed through
``--data-dir DIR``: every mutation is appended to a checksummed
write-ahead log under ``DIR`` before it is applied, and checkpoints are
published atomically every ``--checkpoint-every N`` mutations with the
``--fsync`` policy (``always``/``batch``/``off``) controlling how
aggressively the log is flushed to stable storage.  ``--recover``
cold-starts the engine from ``DIR`` instead of an edge-list file (the
graph argument is omitted) and prints the recovery statistics — the
checkpoint used, the WAL records replayed, and any torn tail truncated.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.ctc.api import available_methods, search
from repro.datasets.queries import EdgeChurn
from repro.engine import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_DELTA_THRESHOLD,
    CTCEngine,
    DurabilityConfig,
    EngineStats,
    ServingEngine,
    SlidingWindowEngine,
)
from repro.exceptions import (
    ConfigurationError,
    QueryTimeoutError,
    VersionEvictedError,
    WalCorruptionError,
)
from repro.experiments import figures, tables
from repro.experiments.config import QUICK_CONFIG
from repro.experiments.reporting import format_table
from repro.graph.io import read_edge_list

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table2": lambda config: tables.table2_network_statistics(),
    "table3": lambda config: tables.table3_index_statistics(),
    "fig5": lambda config: figures.vary_query_size("dblp-like", config),
    "fig6": lambda config: figures.vary_query_size("facebook-like", config),
    "fig7": lambda config: figures.vary_degree_rank("dblp-like", config),
    "fig8": lambda config: figures.vary_degree_rank("facebook-like", config),
    "fig9": lambda config: figures.vary_inter_distance("dblp-like", config),
    "fig10": lambda config: figures.vary_inter_distance("facebook-like", config),
    "fig11": lambda config: figures.case_study(config),
    "fig12": lambda config: figures.ground_truth_quality(config=config),
    "fig13": lambda config: figures.approximation_quality(config=config),
    "fig14": lambda config: figures.vary_trussness_k(config=config),
    "fig15": lambda config: figures.vary_eta(config=config),
    "fig16": lambda config: figures.vary_gamma(config=config),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ctc-search",
        description="Closest Truss Community search (reproduction of Huang et al., VLDB 2015)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    search_parser = subparsers.add_parser("search", help="search a community in an edge-list graph")
    search_parser.add_argument(
        "graph",
        nargs="?",
        default=None,
        help=(
            "path to a whitespace-separated edge-list file (omitted with "
            "--recover, which reads the store from --data-dir instead)"
        ),
    )
    search_parser.add_argument("--query", nargs="+", required=True, help="query node ids")
    search_parser.add_argument(
        "--method", default="lctc", choices=available_methods(), help="search algorithm"
    )
    search_parser.add_argument("--eta", type=int, default=1000, help="LCTC expansion budget")
    search_parser.add_argument("--gamma", type=float, default=3.0, help="LCTC trussness penalty")
    search_parser.add_argument(
        "--engine",
        action="store_true",
        help="serve the query through the cached CTCEngine (CSR snapshot + memoized truss index)",
    )
    search_parser.add_argument(
        "--kernel",
        choices=("csr", "dict"),
        default=None,
        help=(
            "query execution path with --engine: 'csr' (default) runs the CTC "
            "methods on the snapshot's array kernels, 'dict' forces the classic "
            "dict path through the lazily built truss index; both return "
            "identical communities"
        ),
    )
    search_parser.add_argument(
        "--decomp",
        choices=("auto", "vector", "bucket"),
        default=None,
        help=(
            "full-rebuild decomposition strategy with --engine: 'auto' (default) "
            "picks the level-synchronous vector peel or the sequential bucket "
            "queue by snapshot size, 'vector'/'bucket' pin one; trussness is "
            "bit-identical either way"
        ),
    )
    search_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the query N times and report throughput (pair with --engine to see caching win)",
    )
    search_parser.add_argument(
        "--cache-size",
        type=int,
        default=DEFAULT_CACHE_SIZE,
        help="engine snapshot-LRU capacity: how many graph versions stay cached",
    )
    search_parser.add_argument(
        "--delta-threshold",
        type=float,
        default=DEFAULT_DELTA_THRESHOLD,
        help=(
            "engine rebuild policy: patch cached snapshots while the accumulated "
            "delta is at most this fraction of the snapshot's edges (0 = always "
            "rebuild from scratch)"
        ),
    )
    search_parser.add_argument(
        "--mutate-every",
        type=int,
        default=0,
        metavar="N",
        help=(
            "mixed workload: apply one edge mutation every N queries of the "
            "--repeat loop (alternating removals and re-insertions; requires "
            "--engine)"
        ),
    )
    search_parser.add_argument(
        "--at-version",
        type=int,
        default=None,
        metavar="V",
        help=(
            "time-travel read: pin every query at historical store version V "
            "(resolved through the engine's delta log; evicted versions fail "
            "with the retained range; requires --engine)"
        ),
    )
    search_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "serve the --repeat loop through the concurrent ServingEngine "
            "front-end with N workers, batching queries against one pinned "
            "snapshot per batch (requires --engine; 0 disables)"
        ),
    )
    search_parser.add_argument(
        "--serving-mode",
        choices=("thread", "process"),
        default=None,
        help=(
            "ServingEngine back end with --workers: 'thread' (default) shares "
            "one engine behind a thread pool, 'process' shards the store by "
            "connected component across worker processes mapping shared-memory "
            "snapshot buffers"
        ),
    )
    search_parser.add_argument(
        "--query-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "per-query deadline in seconds for the serving layer: an overdue "
            "query fails with a typed timeout instead of stalling its batch "
            "(requires --workers)"
        ),
    )
    search_parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help=(
            "durable mode: append every mutation to a checksummed write-ahead "
            "log under DIR and publish atomic snapshot checkpoints there "
            "(requires --engine)"
        ),
    )
    search_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "checkpoint after every N logged mutations, trimming the replayed "
            f"WAL prefix (default {DEFAULT_CHECKPOINT_EVERY}; requires --data-dir)"
        ),
    )
    search_parser.add_argument(
        "--fsync",
        choices=("always", "batch", "off"),
        default=None,
        help=(
            "WAL flush policy with --data-dir: 'always' fsyncs per append, "
            "'batch' (default) fsyncs periodically and at checkpoints, 'off' "
            "leaves flushing to the OS (process crashes still lose nothing; "
            "only power loss is exposed)"
        ),
    )
    search_parser.add_argument(
        "--recover",
        action="store_true",
        help=(
            "cold-start the engine from --data-dir (latest checkpoint + WAL "
            "replay, truncating any torn tail) instead of loading an edge-list "
            "file, and print the recovery statistics"
        ),
    )
    search_parser.add_argument(
        "--window",
        type=int,
        default=0,
        metavar="W",
        help=(
            "sliding-window mode: retain only the W most recently inserted "
            "edges, expiring older ones through incremental truss maintenance "
            "(requires --engine; the loaded graph seeds the window)"
        ),
    )

    experiment_parser = subparsers.add_parser(
        "experiment", help="run one of the paper's tables/figures on the synthetic datasets"
    )
    experiment_parser.add_argument("name", choices=sorted(_EXPERIMENTS), help="experiment id")
    experiment_parser.add_argument(
        "--queries", type=int, default=None, help="override the per-point query count"
    )
    return parser


def _run_search(args: argparse.Namespace) -> int:
    if args.repeat < 1:
        raise SystemExit("--repeat must be >= 1")
    if args.mutate_every < 0:
        raise SystemExit("--mutate-every must be >= 0")
    if args.mutate_every and not args.engine:
        raise SystemExit("--mutate-every requires --engine (mutations go through the delta log)")
    if args.cache_size < 1:
        raise SystemExit("--cache-size must be >= 1")
    if args.delta_threshold < 0:
        raise SystemExit("--delta-threshold must be >= 0")
    if args.kernel == "csr" and not args.engine:
        raise SystemExit("--kernel csr requires --engine (the kernels run on engine snapshots)")
    if args.decomp and not args.engine:
        raise SystemExit("--decomp requires --engine (it picks the snapshot rebuild strategy)")
    if args.at_version is not None and not args.engine:
        raise SystemExit("--at-version requires --engine (only the delta log holds history)")
    if args.at_version is not None and args.at_version < 0:
        raise SystemExit("--at-version must be >= 0")
    if args.window < 0:
        raise SystemExit("--window must be >= 1 (0 disables windowing)")
    if args.window and not args.engine:
        raise SystemExit("--window requires --engine (expiry runs through the delta log)")
    if args.workers < 0:
        raise SystemExit("--workers must be >= 1 (0 disables the serving layer)")
    if args.workers and not args.engine:
        raise SystemExit("--workers requires --engine (the serving layer fronts the engine)")
    if args.serving_mode and not args.workers:
        raise SystemExit("--serving-mode requires --workers")
    if args.query_timeout is not None and not args.workers:
        raise SystemExit("--query-timeout requires --workers (deadlines live in the serving layer)")
    if args.query_timeout is not None and args.query_timeout <= 0:
        raise SystemExit("--query-timeout must be > 0")
    if args.workers and args.window:
        raise SystemExit(
            "--workers does not combine with --window (window expiry bookkeeping "
            "is not routed through the serving layer)"
        )
    if args.data_dir and not args.engine:
        raise SystemExit("--data-dir requires --engine (the WAL hangs off the delta log)")
    if args.checkpoint_every is not None and not args.data_dir:
        raise SystemExit("--checkpoint-every requires --data-dir")
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        raise SystemExit("--checkpoint-every must be >= 1")
    if args.fsync and not args.data_dir:
        raise SystemExit("--fsync requires --data-dir")
    if args.recover and not args.data_dir:
        raise SystemExit("--recover requires --data-dir (it names the store to recover)")
    if args.recover and args.graph is not None:
        raise SystemExit("--recover reads the store from --data-dir; omit the graph argument")
    if not args.recover and args.graph is None:
        raise SystemExit("a graph edge-list file is required unless --recover is given")
    serving_mode = args.serving_mode or "thread"
    if args.data_dir and args.workers and serving_mode == "process":
        raise SystemExit(
            "--data-dir does not combine with --serving-mode process (mutations "
            "routed to shard workers bypass the parent's write-ahead log)"
        )
    if args.workers and serving_mode == "process" and args.at_version is not None:
        raise SystemExit(
            "--at-version requires --serving-mode thread (shard workers hold "
            "independent version histories)"
        )
    kernel = args.kernel or ("csr" if args.engine else "dict")
    durability = None
    if args.data_dir:
        durability = DurabilityConfig(
            path=args.data_dir,
            fsync=args.fsync or "batch",
            checkpoint_every=args.checkpoint_every or DEFAULT_CHECKPOINT_EVERY,
        )
    if args.engine:
        engine_kwargs = dict(
            cache_size=args.cache_size,
            delta_threshold=args.delta_threshold,
            decomp=args.decomp or "auto",
        )
        if args.recover:
            try:
                if args.window:
                    target = SlidingWindowEngine.recover(
                        durability, window=args.window, **engine_kwargs
                    )
                else:
                    target = CTCEngine.recover(durability, **engine_kwargs)
            except (ConfigurationError, WalCorruptionError) as exc:
                raise SystemExit(f"--recover failed: {exc}") from exc
        else:
            graph = read_edge_list(args.graph)
            if args.window:
                target = SlidingWindowEngine(
                    graph,
                    window=args.window,
                    copy=False,
                    durability=durability,
                    **engine_kwargs,
                )
            else:
                target = CTCEngine(
                    graph, copy=False, durability=durability, **engine_kwargs
                )
    else:
        target = read_edge_list(args.graph)
    serving = None
    if args.workers:
        serving = ServingEngine(
            target,
            workers=args.workers,
            mode=serving_mode,
            cache_size=args.cache_size,
            delta_threshold=args.delta_threshold,
            decomp=args.decomp or "auto",
        )
    mutator = None
    if args.mutate_every:
        mutator = EdgeChurn(serving or target, seed=0, protect=args.query)
        if not mutator.mutable_edges:
            raise SystemExit(
                "--mutate-every has nothing to mutate: every edge is incident to a "
                "query node"
            )
    started = time.perf_counter()
    try:
        if serving is not None:
            # One pinned snapshot per batch: mutations land between batches,
            # so every batch boundary is also a consistency boundary.
            batch_size = args.mutate_every or max(2 * args.workers, 8)
            remaining = args.repeat
            while remaining:
                if mutator is not None and remaining != args.repeat:
                    mutator.step()
                size = min(batch_size, remaining)
                results = serving.query_batch(
                    [args.query] * size,
                    args.method,
                    kernel=kernel,
                    at_version=args.at_version,
                    timeout=args.query_timeout,
                    eta=args.eta,
                    gamma=args.gamma,
                )
                result = results[-1]
                remaining -= size
        else:
            for iteration in range(args.repeat):
                if mutator is not None and iteration and iteration % args.mutate_every == 0:
                    mutator.step()
                result = search(
                    target,
                    args.query,
                    method=args.method,
                    eta=args.eta,
                    gamma=args.gamma,
                    kernel=kernel,
                    at_version=args.at_version,
                )
    except QueryTimeoutError as error:
        if serving is not None:
            serving.close()
        raise SystemExit(f"--query-timeout: {error}") from None
    except VersionEvictedError as error:
        if serving is not None:
            serving.close()
        raise SystemExit(f"--at-version: {error}") from None
    except ValueError as error:
        if serving is not None:
            serving.close()
        if args.at_version is not None:
            raise SystemExit(f"--at-version: {error}") from None
        raise
    elapsed = time.perf_counter() - started
    print(f"method:        {result.method}")
    print(f"trussness:     {result.trussness}")
    print(f"nodes:         {result.num_nodes}")
    print(f"edges:         {result.num_edges}")
    print(f"density:       {result.density():.3f}")
    print(f"diameter:      {result.diameter()}")
    print(f"query distance:{result.query_distance}")
    print("members:")
    for node in sorted(result.nodes, key=repr):
        print(f"  {node}")
    if args.repeat > 1:
        print(f"throughput:    {args.repeat / elapsed:.1f} queries/sec ({args.repeat} runs)")
    if args.engine:
        if serving is not None and serving.mode == "process":
            stats = EngineStats(**serving.engine_stats())  # summed over shards
        else:
            stats = target.stats
    if serving is not None:
        serving.close()
    if args.engine:
        print(f"kernel:        {kernel}")
        print(f"decomp:        {target.decomp}")
        print(
            f"engine cache:  {stats.hits} hits, {stats.misses} misses "
            f"({stats.delta_applies} delta applies, {stats.full_rebuilds} full rebuilds)"
        )
        print(
            f"incidence:     {stats.incidence_patches} patches, "
            f"{stats.incidence_enumerations} full enumerations"
        )
        print(
            f"pins:          {stats.leases} leases, "
            f"{stats.deferred_reclamations} deferred reclamations"
        )
        if serving is not None:
            sstats = serving.stats
            print(
                f"serving:       mode={sstats.mode}, workers={sstats.workers}, "
                f"{sstats.batches} batches"
            )
            print(
                f"coalescing:    {sstats.coalesced_queries}/{sstats.queries} queries "
                f"coalesced, {sstats.snapshot_reuses} snapshot reuses, "
                f"{sstats.cross_shard_rejects} cross-shard rejects"
            )
            print(
                f"faults:        {sstats.worker_crashes} crashes, "
                f"{sstats.respawns} respawns, {sstats.requeued_queries} requeued, "
                f"{sstats.timeouts} timeouts, "
                f"{sstats.quarantined_shards} quarantined shards"
            )
        if args.at_version is not None or stats.time_travel_reads:
            retained = target.retained_versions()
            print(
                f"time travel:   {stats.time_travel_reads} pinned reads, "
                f"retained versions {retained[0]}..{retained[1]}"
            )
        if args.window:
            print(
                f"window:        {len(target.window_edges())}/{target.window} live edges "
                f"(version {target.version})"
            )
        if args.recover and target.last_recovery is not None:
            recovery = target.last_recovery
            checkpoint = (
                f"checkpoint v{recovery.checkpoint_version}"
                if recovery.checkpoint_version is not None
                else "no checkpoint (WAL only)"
            )
            print(
                f"recovery:      {checkpoint}, {recovery.replayed_deltas} deltas "
                f"replayed of {recovery.wal_records} WAL records, "
                f"{recovery.truncated_bytes} torn bytes truncated "
                f"-> version {recovery.recovered_version} "
                f"in {recovery.seconds:.3f}s"
            )
        if args.data_dir:
            dstats = target.durability_stats()
            print(
                f"durability:    fsync={dstats['fsync_policy']}, "
                f"{dstats['wal_appends']} WAL appends ({dstats['wal_fsyncs']} fsyncs, "
                f"{dstats['wal_bytes']} bytes), {dstats['checkpoints']} checkpoints "
                f"(last v{dstats['last_checkpoint_version']}, "
                f"{dstats['deltas_since_checkpoint']} deltas since)"
            )
            target.close()
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    config = QUICK_CONFIG
    if args.queries is not None:
        config = config.scaled(args.queries / max(1, config.queries_per_point))
    rows = _EXPERIMENTS[args.name](config)
    print(format_table(rows, title=f"Experiment {args.name}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "search":
        return _run_search(args)
    if args.command == "experiment":
        return _run_experiment(args)
    parser.error("unknown command")
    return 2


if __name__ == "__main__":
    sys.exit(main())
