"""Incremental truss maintenance on CSR snapshots (the dynamic-graph fast path).

The paper's system is explicitly dynamic: Section 4.2 maintains a k-truss
under deletions (Algorithm 3), and the authors' earlier maintenance work
(reference [20]) shows that under a single edge change the trussness of
every *other* edge moves by at most one, and only within a triangle-connected
neighbourhood of the change.  This module mirrors those insertion/deletion
algorithms on the array representation: given an old
:class:`~repro.graph.csr.CSRGraph` with its per-edge-id trussness array and
a :class:`~repro.graph.csr.CSRPatch`, it produces the new trussness array by
re-evaluating only the affected region instead of re-running the
O(rho * m) decomposition.

Algorithm
---------
The engine of the update is the *local fixpoint characterization* of
trussness: ``t(e)`` is the unique greatest function satisfying

    ``t(e) = 2 + H({ min(t(e1), t(e2)) - 2  for triangles (e, e1, e2) })``

where ``H`` is the h-index (the largest ``s`` such that at least ``s``
values are ``>= s``).  Starting from any pointwise *upper bound* of the true
trussness and repeatedly lowering edges to their operator value converges to
the exact trussness; edges whose triangle neighbourhood never changes are
never re-evaluated, which is what makes the update local.

* **Deletions** (batch): removing edges can only lower trussness, so the
  carried-over old values are already a valid upper bound.  The worklist is
  seeded with every surviving edge that lost a triangle and drained to the
  fixpoint.
* **Insertions** (one at a time, mirroring the single-edge maintenance
  theorem): inserting one edge raises any existing edge's trussness by at
  most one, and only edges level-``k`` triangle-connected to the new edge
  can rise.  A BFS collects that candidate region, candidates are raised by
  one (the new edge to its own upper bound), and the same downward fixpoint
  drain — restricted to the candidates — settles the exact values.

Each inserted edge is activated against the already-settled graph, so a
batch of insertions costs one local pass per edge, exactly like replaying
the paper's single-edge maintenance.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph, CSRPatch
from repro.graph.csr_triangles import TriangleIncidence

__all__ = ["incremental_truss_update"]


class _LazyAdjacency:
    """Per-node ``{neighbour id: edge id}`` maps, built from CSR rows on demand.

    Building every map up front costs O(m) per update; a local update only
    ever touches a handful of nodes, so maps are materialized lazily.
    """

    __slots__ = ("_csr", "_maps")

    def __init__(self, csr: CSRGraph) -> None:
        self._csr = csr
        self._maps: dict[int, dict[int, int]] = {}

    def __call__(self, node: int) -> dict[int, int]:
        cached = self._maps.get(node)
        if cached is None:
            start, stop = int(self._csr.indptr[node]), int(self._csr.indptr[node + 1])
            cached = dict(
                zip(
                    self._csr.indices[start:stop].tolist(),
                    self._csr.slot_edge[start:stop].tolist(),
                )
            )
            self._maps[node] = cached
        return cached


def _h_index_plus_two(values_desc: list[int]) -> int:
    """Return ``2 + H`` for trussness values sorted in decreasing order.

    ``H`` is the largest ``s`` with at least ``s`` values ``>= s + 2`` —
    the fixpoint operator's right-hand side.
    """
    h = 0
    for count, value in enumerate(values_desc, start=1):
        if value - 2 >= count:
            h = count
        else:
            break
    return 2 + h


def incremental_truss_update(
    old_csr: CSRGraph,
    old_trussness: np.ndarray,
    patch: CSRPatch,
    *,
    incidence: TriangleIncidence | None = None,
    new_incidence: TriangleIncidence | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(new_trussness, changed_edge_ids)`` for a patched snapshot.

    ``old_trussness`` is the per-edge-id trussness of ``old_csr``;
    ``patch`` is the output of ``old_csr.apply_delta(...)``.  The returned
    array is indexed by the **new** snapshot's edge ids and equals a full
    ``csr_truss_decomposition(patch.csr)`` recomputation; ``changed_edge_ids``
    lists the new edge ids whose value differs from the carried-over old
    value (inserted edges always count as changed).

    ``incidence`` is an optional
    :class:`~repro.graph.csr_triangles.TriangleIncidence` of **old_csr**
    (e.g. retained by the engine snapshot from its full rebuild): when
    present, the deletion pass seeds its worklist with one vectorized
    gather over the removed edges' incidence rows instead of intersecting
    adjacency maps edge by edge.

    ``new_incidence`` is the optional incidence of **patch.csr** (the
    engine produces it with
    :func:`~repro.graph.csr_triangles.patch_incidence` before maintaining
    trussness): when present, every triangle lookup of the update — the
    fixpoint operator, the drain's neighbour notification, and the
    insertion pass's candidate BFS — reads the edge's incidence row
    (length = its support) instead of intersecting endpoint adjacency maps
    (length = its smaller endpoint degree).
    """
    new_csr = patch.csr
    num_edges = new_csr.number_of_edges()
    origin = patch.edge_origin
    carried_mask = origin >= 0

    carried = np.full(num_edges, -1, dtype=np.int64)
    carried[carried_mask] = old_trussness[origin[carried_mask]]
    trussness = carried.tolist()
    inserted = np.nonzero(~carried_mask)[0]
    for edge in inserted.tolist():
        trussness[edge] = 2  # placeholder until the edge is activated

    active = carried_mask.copy()
    adjacency = _LazyAdjacency(new_csr)
    edge_u = new_csr.edge_u
    edge_v = new_csr.edge_v

    if new_incidence is not None:
        inc_indptr = new_incidence.inc_indptr
        inc_triangles = new_incidence.inc_triangles
        triangle_rows = new_incidence.edges

        def active_triangles(edge: int) -> list[tuple[int, int]]:
            """The other two corners of every active triangle through ``edge``."""
            row = inc_triangles[inc_indptr[edge]:inc_indptr[edge + 1]]
            pairs = []
            for first, second, third in triangle_rows[row].tolist():
                if first == edge:
                    one, two = second, third
                elif second == edge:
                    one, two = first, third
                else:
                    one, two = first, second
                if active[one] and active[two]:
                    pairs.append((one, two))
            return pairs
    else:

        def active_triangles(edge: int) -> list[tuple[int, int]]:
            """The other two corners of every active triangle through ``edge``."""
            first = adjacency(int(edge_u[edge]))
            second = adjacency(int(edge_v[edge]))
            if len(first) > len(second):
                first, second = second, first
            pairs = []
            for node, other_first in first.items():
                other_second = second.get(node)
                if other_second is None:
                    continue
                if active[other_first] and active[other_second]:
                    pairs.append((other_first, other_second))
            return pairs

    def operator_value(edge: int) -> int:
        """Evaluate the fixpoint operator at ``edge`` over *active* triangles."""
        values = []
        for one, two in active_triangles(edge):
            t1, t2 = trussness[one], trussness[two]
            values.append(t1 if t1 < t2 else t2)
        values.sort(reverse=True)
        return _h_index_plus_two(values)

    def drain(worklist: deque[int], members: set[int] | None) -> None:
        """Lower worklist edges to their operator value until the fixpoint.

        ``members`` restricts re-evaluation to a candidate set (insertion
        pass); ``None`` means every active edge may be re-evaluated
        (deletion pass).
        """
        queued = set(worklist)
        while worklist:
            edge = worklist.popleft()
            queued.discard(edge)
            value = operator_value(edge)
            before = trussness[edge]
            if value >= before:
                continue
            trussness[edge] = value
            # A neighbour's triangle count at its own level only drops if
            # this edge fell from >= that level to below it.
            for pair in active_triangles(edge):
                for neighbor in pair:
                    if (
                        value < trussness[neighbor] <= before
                        and neighbor not in queued
                        and (members is None or neighbor in members)
                    ):
                        queued.add(neighbor)
                        worklist.append(neighbor)

    # ------------------------------------------------------------------
    # Deletion pass: seed with surviving edges that lost a triangle.
    # ------------------------------------------------------------------
    if patch.removed_edge_ids.size:
        new_of_old = patch.new_ids_of_old(old_csr.number_of_edges())
        if incidence is not None:
            # Every triangle lost to the deletion batch is incident to some
            # removed edge; its (surviving) corner edges are the seeds.
            lost = np.unique(incidence.triangles_of_edges(patch.removed_edge_ids))
            survivors = new_of_old[incidence.edges[lost].ravel()] if lost.size else lost
            seeds = set(survivors[survivors >= 0].tolist())
        else:
            old_adjacency = _LazyAdjacency(old_csr)
            seeds = set()
            for old_edge in patch.removed_edge_ids.tolist():
                node_u = int(old_csr.edge_u[old_edge])
                node_v = int(old_csr.edge_v[old_edge])
                first = old_adjacency(node_u)
                second = old_adjacency(node_v)
                if len(first) > len(second):
                    first, second = second, first
                for node, other_first in first.items():
                    other_second = second.get(node)
                    if other_second is None:
                        continue
                    for old_neighbor in (other_first, other_second):
                        new_neighbor = int(new_of_old[old_neighbor])
                        if new_neighbor >= 0:
                            seeds.add(new_neighbor)
        if seeds:
            drain(deque(sorted(seeds)), None)

    # ------------------------------------------------------------------
    # Insertion pass: activate one edge at a time against settled values.
    # ------------------------------------------------------------------
    for new_edge in inserted.tolist():
        active[new_edge] = True
        triangles = active_triangles(new_edge)

        minima = sorted(
            (min(trussness[e1], trussness[e2]) for e1, e2 in triangles), reverse=True
        )
        # Existing edges can rise by at most one, so the new edge's final
        # trussness is bounded by the operator value over *raised* values —
        # itself at most one above the value over current ones — and by its
        # support.
        upper = min(_h_index_plus_two(minima) + 1, 2 + len(triangles))

        # Candidate region: edges level-k triangle-connected to the new edge.
        candidates: set[int] = set()
        frontier: deque[int] = deque()
        for e1, e2 in triangles:
            for edge, witness in ((e1, e2), (e2, e1)):
                if (
                    edge not in candidates
                    and trussness[edge] + 1 <= upper
                    and trussness[witness] >= trussness[edge]
                ):
                    candidates.add(edge)
                    frontier.append(edge)
        while frontier:
            edge = frontier.popleft()
            level = trussness[edge]
            for one, two in active_triangles(edge):
                for neighbor, witness in ((one, two), (two, one)):
                    if (
                        neighbor not in candidates
                        and trussness[neighbor] == level
                        and trussness[witness] >= level
                    ):
                        candidates.add(neighbor)
                        frontier.append(neighbor)

        for edge in candidates:
            trussness[edge] += 1
        trussness[new_edge] = upper
        members = candidates | {new_edge}
        drain(deque(sorted(members)), members)

    result = np.asarray(trussness, dtype=np.int64)
    changed = np.nonzero(result != carried)[0]
    return result, changed
