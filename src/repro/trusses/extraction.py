"""FindG0 (Algorithm 2): the maximal connected k-truss containing Q with the largest k.

Given a truss index, the procedure starts from the upper bound
``k = min_q tau(q)`` (Lemma 1) and explores edges in decreasing order of
trussness, BFS-style, until the query nodes become connected.  The connected
component of the query inside the explored edge set, restricted to edges of
trussness >= k, is the answer ``G0``.

Two entry points are provided:

* :func:`find_maximal_connected_truss` — the paper's FindG0: maximise k.
* :func:`find_connected_truss_at_k` — the "given k" variant (used by the
  trussness-as-a-constraint experiments of Figure 14 and Section 7.1).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence

from repro.exceptions import NoCommunityFoundError, QueryError
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.components import nodes_are_connected
from repro.trusses.index import TrussIndex

__all__ = [
    "find_maximal_connected_truss",
    "find_connected_truss_at_k",
    "validate_query",
]


def validate_query(index_graph: UndirectedGraph, query: Sequence[Hashable]) -> list[Hashable]:
    """Validate and normalise a query node sequence.

    Deduplicates while preserving order, and checks non-emptiness and
    membership in the graph.

    Raises
    ------
    QueryError
        If the query is empty or contains nodes missing from the graph.
    """
    normalized = list(dict.fromkeys(query))
    if not normalized:
        raise QueryError("the query node set must not be empty")
    missing = [node for node in normalized if not index_graph.has_node(node)]
    if missing:
        raise QueryError(f"query nodes not present in the graph: {missing!r}")
    return normalized


def find_maximal_connected_truss(
    index: TrussIndex, query: Sequence[Hashable]
) -> tuple[UndirectedGraph, int]:
    """Return ``(G0, k)``: the maximal connected k-truss containing ``query`` with largest k.

    Implements Algorithm 2 of the paper on top of :class:`TrussIndex`.  The
    exploration maintains, per trussness level, the set of frontier vertices
    whose incident edges at that level have not yet been scanned; levels are
    processed from ``min_q tau(q)`` downward until the query nodes fall into
    a single connected component of the explored subgraph.

    Raises
    ------
    QueryError
        If the query is invalid.
    NoCommunityFoundError
        If no connected k-truss (k >= 2) contains all query nodes (e.g. the
        query spans different connected components of the graph).
    """
    graph = index.graph
    query_nodes = validate_query(graph, query)

    upper_bound = min(index.vertex_trussness(node) for node in query_nodes)
    if upper_bound < 2:
        # Some query vertex is isolated; a single isolated query node is its
        # own trivial community only when |Q| == 1, which we represent as a
        # single-node graph of trussness 2 (no edges).
        if len(query_nodes) == 1:
            lonely = UndirectedGraph()
            lonely.add_node(query_nodes[0])
            return lonely, 2
        raise NoCommunityFoundError(
            "a query node is isolated; no connected truss contains the whole query"
        )

    explored = UndirectedGraph()
    explored.add_nodes_from(query_nodes)
    # pending[k] holds vertices to (re)visit when the exploration reaches level k.
    pending: dict[int, set[Hashable]] = {upper_bound: set(query_nodes)}
    visited_at: dict[Hashable, int] = {}
    k = upper_bound

    while k >= 2:
        frontier = deque(pending.pop(k, ()))
        processed_this_level: set[Hashable] = set()
        while frontier:
            node = frontier.popleft()
            if node in processed_this_level:
                continue
            processed_this_level.add(node)
            previously_seen_level = visited_at.get(node)
            if previously_seen_level is None:
                # First visit: take every incident edge with trussness >= k.
                low, high = k, float("inf")
            else:
                # Seen at a higher level before: only edges in [k, previous).
                low, high = k, previously_seen_level
            visited_at[node] = k
            explored.add_node(node)
            for neighbor, _trussness in index.incident_edges_in_range(node, low, high):
                explored.add_edge(node, neighbor)
                if neighbor not in processed_this_level:
                    frontier.append(neighbor)
            next_level = index.next_level_below(node, k)
            if next_level is not None:
                pending.setdefault(next_level, set()).add(node)

        if nodes_are_connected(explored, query_nodes):
            component = _component_with_trussness_at_least(index, explored, query_nodes, k)
            if component is not None:
                return component, k
        # Drop to the next level at which anything is pending (or k - 1 if
        # pending levels are sparse, to keep the scan bounded).
        lower_levels = [level for level in pending if level < k]
        if not lower_levels:
            break
        k = max(lower_levels)

    raise NoCommunityFoundError(
        f"no connected k-truss (k >= 2) contains all query nodes {query_nodes!r}"
    )


def _component_with_trussness_at_least(
    index: TrussIndex,
    explored: UndirectedGraph,
    query_nodes: Sequence[Hashable],
    k: int,
) -> UndirectedGraph | None:
    """Return the connected component of the level-k truss edges containing the query.

    The explored graph may contain edges of trussness above ``k`` from earlier
    levels plus the level-k edges; all of them have trussness >= k so the
    component containing the query is exactly the paper's ``G0``.  Returns
    ``None`` if the query nodes are not all inside one component.
    """
    if not nodes_are_connected(explored, query_nodes):
        return None
    component_nodes = _bfs_nodes(explored, query_nodes[0])
    if any(node not in component_nodes for node in query_nodes):
        return None
    component = explored.subgraph(component_nodes)
    # Defensive check: every retained edge must have trussness >= k.
    for u, v in component.edges():
        if index.edge_trussness(u, v) < k:
            component.remove_edge(u, v)
    return component


def _bfs_nodes(graph: UndirectedGraph, start: Hashable) -> set[Hashable]:
    seen = {start}
    queue: deque[Hashable] = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return seen


def find_connected_truss_at_k(
    index: TrussIndex, query: Sequence[Hashable], k: int
) -> UndirectedGraph:
    """Return the connected k-truss containing the query at the *given* level ``k``.

    This is the constrained variant discussed in Section 7.1 ("treat the
    desired trussness k as a constraint instead of maximizing trussness") and
    exercised by the Figure 14 experiment.  The connected component of the
    maximal k-truss that contains all query nodes is returned.

    Raises
    ------
    NoCommunityFoundError
        If no connected k-truss at level ``k`` contains all the query nodes.
    """
    graph = index.graph
    query_nodes = validate_query(graph, query)
    if k < 2:
        raise QueryError(f"trussness level must be >= 2, got {k}")

    qualifying = UndirectedGraph()
    qualifying.add_nodes_from(query_nodes)
    for (u, v), trussness in index.all_edge_trussness().items():
        if trussness >= k:
            qualifying.add_edge(u, v)
    if not nodes_are_connected(qualifying, query_nodes):
        raise NoCommunityFoundError(
            f"query nodes are not connected in the maximal {k}-truss"
        )
    component_nodes = _bfs_nodes(qualifying, query_nodes[0])
    return qualifying.subgraph(component_nodes)
