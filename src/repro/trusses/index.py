"""The compact truss index of Section 4.3.

The index stores, for every vertex, its adjacency list sorted by *decreasing
edge trussness*, together with the positions at which each distinct trussness
level starts, a hash table of edge trussness values, and the vertex trussness
(the trussness of the first edge in the sorted list).  With it, FindG0
(Algorithm 2) can enumerate all incident edges of a vertex whose trussness
lies in a level range in time proportional to the number of such edges, and
k-truss extraction never rescans low-trussness edges.

Construction cost is the truss decomposition, O(rho * m), plus an
O(m log d_max) sort — matching Remark 1 of the paper up to the sort factor.
Passing a precomputed ``edge_trussness`` dict skips the decomposition; this
is how :class:`~repro.engine.CTCEngine` assembles indexes from the CSR
fast-path decomposition.

The ``edge_trussness`` map consumed and stored here is keyed by
:func:`repro.graph.keys.edge_key`; that module documents the key contract.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Hashable, Iterable, Iterator

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph.keys import EdgeKey, edge_key
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.decomposition import truss_decomposition

__all__ = ["TrussIndex"]


class TrussIndex:
    """Precomputed edge/vertex trussness with trussness-sorted adjacency.

    Parameters
    ----------
    graph:
        The graph to index.  The index keeps a reference to it; the graph
        must not be mutated while the index is in use (the CTC algorithms
        never mutate the original graph — they peel copies or views).
    edge_trussness:
        Optional precomputed edge trussness map (to share a decomposition
        across several indexes in benchmarks); computed if omitted.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> index = TrussIndex(complete_graph(5))
    >>> index.vertex_trussness(0)
    5
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        edge_trussness: dict[EdgeKey, int] | None = None,
    ) -> None:
        self._graph = graph
        self._edge_trussness: dict[EdgeKey, int] = (
            dict(edge_trussness) if edge_trussness is not None else truss_decomposition(graph)
        )
        # Adjacency sorted by decreasing trussness; parallel list of the
        # (negated) trussness values for binary-searching level boundaries.
        self._sorted_adjacency: dict[Hashable, list[Hashable]] = {}
        self._sorted_levels: dict[Hashable, list[int]] = {}
        self._vertex_trussness: dict[Hashable, int] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for node in self._graph.nodes():
            self._build_node(node)

    def _build_node(self, node: Hashable) -> None:
        """(Re)build one node's trussness-sorted adjacency entry.

        The produced lists are treated as immutable from then on, which is
        what lets :meth:`patched` share untouched entries between indexes.
        """
        incident = [
            (self._edge_trussness[edge_key(node, other)], other)
            for other in self._graph.neighbors(node)
        ]
        incident.sort(key=lambda pair: (-pair[0], repr(pair[1])))
        self._sorted_adjacency[node] = [other for _, other in incident]
        self._sorted_levels[node] = [-value for value, _ in incident]
        self._vertex_trussness[node] = incident[0][0] if incident else 1

    def patched(
        self,
        graph: UndirectedGraph,
        *,
        trussness_updates: dict[EdgeKey, int],
        dropped_edges: Iterable[EdgeKey] = (),
        dropped_nodes: Iterable[Hashable] = (),
        touched_nodes: Iterable[Hashable] = (),
    ) -> "TrussIndex":
        """Return a new index for ``graph``, rebuilt only where it changed.

        This is the truss-index leg of the engine's delta pipeline: given
        the post-delta ``graph``, the canonical-key trussness updates (new
        edges and edges whose trussness changed), the dropped edges/nodes,
        and every node whose incident edge set or incident trussness
        changed, it produces an index identical to ``TrussIndex(graph,
        edge_trussness=...)`` built from scratch, but shares the
        per-node sorted adjacency of untouched nodes with ``self``
        (the shared lists are never mutated by either index).
        """
        clone = TrussIndex.__new__(TrussIndex)
        clone._graph = graph
        edge_trussness = dict(self._edge_trussness)
        for key in dropped_edges:
            edge_trussness.pop(key, None)
        edge_trussness.update(trussness_updates)
        clone._edge_trussness = edge_trussness
        clone._sorted_adjacency = dict(self._sorted_adjacency)
        clone._sorted_levels = dict(self._sorted_levels)
        clone._vertex_trussness = dict(self._vertex_trussness)
        for node in dropped_nodes:
            clone._sorted_adjacency.pop(node, None)
            clone._sorted_levels.pop(node, None)
            clone._vertex_trussness.pop(node, None)
        for node in touched_nodes:
            if graph.has_node(node):
                clone._build_node(node)
        return clone

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def graph(self) -> UndirectedGraph:
        """The indexed graph."""
        return self._graph

    def edge_trussness(self, u: Hashable, v: Hashable) -> int:
        """Return the trussness of edge ``(u, v)``."""
        try:
            return self._edge_trussness[edge_key(u, v)]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def all_edge_trussness(self) -> dict[EdgeKey, int]:
        """Return a copy of the full edge-trussness map."""
        return dict(self._edge_trussness)

    def vertex_trussness(self, node: Hashable) -> int:
        """Return the trussness of ``node`` (max over incident edge trussness)."""
        try:
            return self._vertex_trussness[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def all_vertex_trussness(self) -> dict[Hashable, int]:
        """Return a copy of the vertex trussness map."""
        return dict(self._vertex_trussness)

    def max_trussness(self) -> int:
        """Return ``tau_bar(empty set)``, the maximum edge trussness (2 if no edges)."""
        if not self._edge_trussness:
            return 2
        return max(self._edge_trussness.values())

    def trussness_levels(self) -> list[int]:
        """Return the distinct trussness levels present, in decreasing order."""
        return sorted(set(self._edge_trussness.values()), reverse=True)

    # ------------------------------------------------------------------
    # level-range adjacency scans (the index's whole purpose)
    # ------------------------------------------------------------------
    def incident_edges_at_least(self, node: Hashable, k: int) -> Iterator[tuple[Hashable, int]]:
        """Yield ``(neighbor, trussness)`` for incident edges with trussness >= k.

        Because the adjacency is sorted by decreasing trussness this touches
        only the qualifying prefix.
        """
        neighbors = self._sorted_adjacency.get(node)
        if neighbors is None:
            raise NodeNotFoundError(node)
        levels = self._sorted_levels[node]
        # levels holds negated trussness in increasing order; entries <= -k
        # correspond to trussness >= k.
        stop = bisect_right(levels, -k)
        for position in range(stop):
            yield neighbors[position], -levels[position]

    def incident_edges_in_range(
        self, node: Hashable, low: int, high: float
    ) -> Iterator[tuple[Hashable, int]]:
        """Yield incident edges with ``low <= trussness < high`` (Algorithm 2, line 9)."""
        neighbors = self._sorted_adjacency.get(node)
        if neighbors is None:
            raise NodeNotFoundError(node)
        levels = self._sorted_levels[node]
        start = 0 if high == float("inf") else bisect_left(levels, -(int(high) - 1))
        stop = bisect_right(levels, -low)
        for position in range(start, stop):
            yield neighbors[position], -levels[position]

    def next_level_below(self, node: Hashable, k: int) -> int | None:
        """Return the largest incident-edge trussness strictly below ``k``.

        This is the ``l = max{tau(v, u) | tau(v, u) < k}`` computation of
        Algorithm 2 (lines 12-13): the next level at which vertex ``node``
        has unexplored incident edges.  ``None`` when no such edge exists.
        """
        levels = self._sorted_levels.get(node)
        if levels is None:
            raise NodeNotFoundError(node)
        # Want the first entry with trussness < k, i.e. negated value > -k.
        position = bisect_right(levels, -k)
        if position >= len(levels):
            return None
        return -levels[position]

    # ------------------------------------------------------------------
    # size accounting (Table 3)
    # ------------------------------------------------------------------
    def size_in_entries(self) -> int:
        """Return the number of stored entries (adjacency slots + edge hash + vertex map).

        Table 3 of the paper reports the index size in megabytes of the C++
        layout; a language-neutral proxy is the entry count, which is
        ``2m (sorted adjacency) + m (edge hash) + n (vertex trussness)``.
        """
        adjacency_entries = sum(len(neighbors) for neighbors in self._sorted_adjacency.values())
        return adjacency_entries + len(self._edge_trussness) + len(self._vertex_trussness)

    def __repr__(self) -> str:
        return (
            f"TrussIndex(nodes={self._graph.number_of_nodes()}, "
            f"edges={len(self._edge_trussness)}, max_trussness={self.max_trussness()})"
        )
