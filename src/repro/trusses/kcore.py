"""k-core decomposition.

Two users inside the library:

* the MDC baseline (Sozio & Gionis minimum-degree community search) peels by
  degree, which is exactly a constrained core decomposition, and
* sanity checks / property tests: every connected k-truss is a (k-1)-core
  (Section 2 of the paper), which is a cheap structural invariant to assert.

The implementation is the standard O(n + m) bucket peeling of Batagelj &
Zaversnik (the paper's reference [2]).
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graph.simple_graph import UndirectedGraph

__all__ = ["core_decomposition", "k_core_subgraph", "degeneracy_core", "minimum_degree"]


def core_decomposition(graph: UndirectedGraph) -> dict[Hashable, int]:
    """Return the core number of every node.

    The core number of ``v`` is the largest ``k`` such that ``v`` belongs to
    a subgraph in which every node has degree >= ``k``.
    """
    degrees = graph.degrees()
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: list[set[Hashable]] = [set() for _ in range(max_degree + 1)]
    for node, degree in degrees.items():
        buckets[degree].add(node)
    core: dict[Hashable, int] = {}
    current = dict(degrees)
    removed: set[Hashable] = set()
    pointer = 0
    total = graph.number_of_nodes()
    level = 0
    while len(core) < total:
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        node = buckets[pointer].pop()
        level = max(level, current[node])
        core[node] = level
        removed.add(node)
        for neighbor in graph.neighbors(node):
            if neighbor in removed:
                continue
            old = current[neighbor]
            if old > current[node]:
                buckets[old].discard(neighbor)
                current[neighbor] = old - 1
                buckets[old - 1].add(neighbor)
                if old - 1 < pointer:
                    pointer = old - 1
    return core


def k_core_subgraph(graph: UndirectedGraph, k: int) -> UndirectedGraph:
    """Return the maximal subgraph in which every node has degree >= ``k``."""
    core = core_decomposition(graph)
    keep = [node for node, value in core.items() if value >= k]
    return graph.subgraph(keep)


def degeneracy_core(graph: UndirectedGraph) -> UndirectedGraph:
    """Return the k-core for the largest k that is non-empty (the degeneracy core)."""
    core = core_decomposition(graph)
    if not core:
        return UndirectedGraph()
    top = max(core.values())
    return k_core_subgraph(graph, top)


def minimum_degree(graph: UndirectedGraph) -> int:
    """Return the minimum degree over nodes (0 for the empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return min(graph.degree(node) for node in graph.nodes())
