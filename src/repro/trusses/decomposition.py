"""Truss decomposition: compute the trussness of every edge.

The trussness of an edge ``e`` is the largest ``k`` such that ``e`` belongs
to a k-truss of the graph (Definition 2 of the paper).  The decomposition is
computed with the standard peeling algorithm (Wang & Cheng, PVLDB 2012; the
paper's reference [29]):

1. compute the support (triangle count) of every edge;
2. repeatedly remove the edge with the smallest support ``s``; its trussness
   is ``s + 2`` (never less than the trussness of any earlier-removed edge);
3. removing an edge destroys the triangles through it, so decrement the
   support of the two other edges of each such triangle.

A bucket queue keyed by support keeps the whole procedure at
O(rho * m) time, where rho is the arboricity, matching Remark 1 of the paper.

Two interchangeable execution paths exist:

* the **dict path** below, which works on any mutable
  :class:`~repro.graph.simple_graph.UndirectedGraph`;
* the **array path** in :mod:`repro.trusses.csr_decomposition`, which runs
  on a frozen :class:`~repro.graph.csr.CSRGraph` snapshot.

:func:`truss_decomposition` dispatches on the input type and always returns
the same canonical-edge-key dict, so callers never need to care which path
ran.

All per-edge dicts produced and consumed here are keyed by
:func:`repro.graph.keys.edge_key`; that module documents the key contract.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graph.csr import CSRGraph
from repro.graph.keys import EdgeKey, edge_key
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.triangles import all_edge_supports

__all__ = [
    "truss_decomposition",
    "vertex_trussness",
    "graph_trussness",
    "max_trussness",
    "k_truss_subgraph",
    "maximal_k_truss_edges",
]


def truss_decomposition(graph: UndirectedGraph | CSRGraph) -> dict[EdgeKey, int]:
    """Return the trussness of every edge of ``graph``.

    The result maps canonical edge keys to trussness values ``>= 2``.  Edges
    in no triangle have trussness exactly 2.

    Accepts either a mutable :class:`UndirectedGraph` (dict-based peeling
    below) or a frozen :class:`~repro.graph.csr.CSRGraph` snapshot (the
    array-based fast path of
    :func:`~repro.trusses.csr_decomposition.csr_truss_decomposition`); both
    produce identical dicts.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> trussness = truss_decomposition(complete_graph(4))
    >>> set(trussness.values())
    {4}
    """
    if isinstance(graph, CSRGraph):
        from repro.trusses.csr_decomposition import csr_truss_decomposition

        values = csr_truss_decomposition(graph)
        return {graph.edge_key_of(e): int(values[e]) for e in range(graph.number_of_edges())}
    supports = all_edge_supports(graph)
    if not supports:
        return {}

    # Bucket queue over support values.
    max_support = max(supports.values())
    buckets: list[set[EdgeKey]] = [set() for _ in range(max_support + 1)]
    for edge, support in supports.items():
        buckets[support].add(edge)

    #

    # Working adjacency copy so edge removals do not touch the input graph.
    adjacency: dict[Hashable, set[Hashable]] = {
        node: set(graph.neighbors(node)) for node in graph.nodes()
    }
    current_support = dict(supports)
    trussness: dict[EdgeKey, int] = {}
    remaining = len(supports)
    k = 2
    pointer = 0

    def _decrease(edge: EdgeKey) -> None:
        """Move ``edge`` one bucket down after one of its triangles died."""
        support = current_support[edge]
        buckets[support].discard(edge)
        current_support[edge] = support - 1
        buckets[support - 1].add(edge)

    while remaining > 0:
        while pointer <= max_support and not buckets[pointer]:
            pointer += 1
        # Every still-present edge has support >= pointer, so all of them are
        # in a (pointer + 2)-truss; the peeled edge's trussness is the max of
        # the running level and pointer + 2 (trussness is non-decreasing).
        k = max(k, pointer + 2)
        u, v = buckets[pointer].pop()
        trussness[(u, v)] = k
        remaining -= 1

        smaller, larger = (u, v) if len(adjacency[u]) <= len(adjacency[v]) else (v, u)
        for w in list(adjacency[smaller]):
            if w in adjacency[larger]:
                first = edge_key(u, w)
                second = edge_key(v, w)
                if first not in trussness:
                    _decrease(first)
                if second not in trussness:
                    _decrease(second)
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        # The decrements may have created non-empty buckets below the pointer.
        if pointer > 0:
            pointer = max(0, pointer - 2)
    return trussness


def vertex_trussness(
    graph: UndirectedGraph, edge_trussness: dict[EdgeKey, int] | None = None
) -> dict[Hashable, int]:
    """Return the trussness of every vertex.

    The trussness of a vertex is the maximum trussness over its incident
    edges (Definition 2); isolated vertices get trussness 1 by convention
    (they belong to no 2-truss).
    """
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    result: dict[Hashable, int] = {node: 1 for node in graph.nodes()}
    for (u, v), value in edge_trussness.items():
        if value > result[u]:
            result[u] = value
        if value > result[v]:
            result[v] = value
    return result


def graph_trussness(graph: UndirectedGraph) -> int:
    """Return the trussness of ``graph`` itself: ``2 + min edge support``.

    Definition 2 applies to a *subgraph* H; here H is the whole input graph.
    Graphs without edges have trussness 2 by convention (vacuously a 2-truss).
    """
    supports = all_edge_supports(graph)
    if not supports:
        return 2
    return 2 + min(supports.values())


def max_trussness(
    graph: UndirectedGraph, edge_trussness: dict[EdgeKey, int] | None = None
) -> int:
    """Return ``tau_bar(empty set)``: the maximum edge trussness in the graph.

    This is the quantity the LCTC truss distance (Definition 7) normalises
    against.  Edge-less graphs return 2.
    """
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    if not edge_trussness:
        return 2
    return max(edge_trussness.values())


def maximal_k_truss_edges(
    graph: UndirectedGraph, k: int, edge_trussness: dict[EdgeKey, int] | None = None
) -> set[EdgeKey]:
    """Return the edges of the maximal k-truss of ``graph``.

    The maximal k-truss is exactly the set of edges whose trussness is
    ``>= k``; it is unique (the union of all k-trusses is a k-truss).
    """
    if edge_trussness is None:
        edge_trussness = truss_decomposition(graph)
    return {edge for edge, value in edge_trussness.items() if value >= k}


def k_truss_subgraph(
    graph: UndirectedGraph, k: int, edge_trussness: dict[EdgeKey, int] | None = None
) -> UndirectedGraph:
    """Return the maximal k-truss of ``graph`` as a new graph.

    Nodes without any surviving incident edge are dropped; the result may be
    disconnected (it is the union of all connected k-trusses).
    """
    edges = maximal_k_truss_edges(graph, k, edge_trussness)
    subgraph = UndirectedGraph()
    for u, v in edges:
        subgraph.add_edge(u, v)
    return subgraph
