"""Truss machinery: decomposition, the truss index, FindG0 and maintenance.

Decomposition and support counting each exist in two drop-in-equivalent
flavours: the dict path (any :class:`~repro.graph.simple_graph.UndirectedGraph`)
and the array path over a frozen :class:`~repro.graph.csr.CSRGraph` snapshot
(:mod:`repro.trusses.csr_decomposition`); ``truss_decomposition`` dispatches
on the input type.
"""

from repro.trusses.csr_decomposition import (
    CSRDecomposition,
    csr_decompose,
    csr_edge_supports,
    csr_truss_decomposition,
    peel_incidence,
)
from repro.trusses.decomposition import (
    graph_trussness,
    k_truss_subgraph,
    max_trussness,
    maximal_k_truss_edges,
    truss_decomposition,
    vertex_trussness,
)
from repro.trusses.incremental import incremental_truss_update
from repro.trusses.extraction import (
    find_connected_truss_at_k,
    find_maximal_connected_truss,
    validate_query,
)
from repro.trusses.index import TrussIndex
from repro.trusses.kcore import (
    core_decomposition,
    degeneracy_core,
    k_core_subgraph,
    minimum_degree,
)
from repro.trusses.maintenance import KTrussMaintainer, restore_k_truss

__all__ = [
    "truss_decomposition",
    "CSRDecomposition",
    "csr_decompose",
    "csr_edge_supports",
    "csr_truss_decomposition",
    "peel_incidence",
    "incremental_truss_update",
    "vertex_trussness",
    "graph_trussness",
    "max_trussness",
    "maximal_k_truss_edges",
    "k_truss_subgraph",
    "TrussIndex",
    "find_maximal_connected_truss",
    "find_connected_truss_at_k",
    "validate_query",
    "KTrussMaintainer",
    "restore_k_truss",
    "core_decomposition",
    "k_core_subgraph",
    "degeneracy_core",
    "minimum_degree",
]
