"""Array-based support counting and truss decomposition on a CSR snapshot.

These are the fast-path twins of :func:`repro.graph.triangles.all_edge_supports`
and :func:`repro.trusses.decomposition.truss_decomposition`: same peeling
semantics (Wang & Cheng, PVLDB 2012; the paper's reference [29], used by
Remark 1), but operating on the dense integer ids of a
:class:`~repro.graph.csr.CSRGraph` instead of tuple-keyed dicts.  Two
execution strategies implement the same decomposition:

* the **level-synchronous vector peel** (``method="vector"``, the default
  for non-tiny graphs): triangles are enumerated once, in bulk, by
  :mod:`repro.graph.csr_triangles`, and then whole *frontiers* of edges are
  peeled per round — at level ``k``, every surviving edge with support
  ``<= k - 2`` is removed at once, its triangles die in one gather, and the
  surviving edges' supports drop by one ``np.bincount``.  Trussness is
  order-independent within a level (removing any qualifying edge never lifts
  another qualifying edge back above the threshold), so the frontier rounds
  produce **bit-identical** trussness to the sequential peel — the property
  suite (``tests/trusses/test_csr_equivalence.py``) enforces it;
* the **sequential bucket queue** (``method="bucket"``): the classic O(m)
  bin-sort peel over Python lists, retained as the small-graph fallback —
  below a few thousand edges the fixed cost of the numpy passes exceeds the
  whole Python peel.

``method="auto"`` (every caller's default) picks between them by edge count
(:data:`DEFAULT_VECTOR_THRESHOLD`); the engine's ``decomp`` knob (CLI
``--decomp``) can pin either strategy.

One deliberate difference from textbook peeling, shared by both strategies:
a decrement never pushes an edge's support below the level currently being
peeled.  The bucket queue clamps explicitly to keep its sorted array valid;
the vector peel achieves the same effect by assigning the *round's* level to
every frontier edge regardless of how far its support undershot.  This is
harmless because trussness is non-decreasing along the peel — an edge whose
support would fall below the current level is peeled at that level anyway.

Both strategies return per-edge-id ``numpy`` arrays; use
:meth:`CSRGraph.edge_key_of` (or the dispatching wrappers in
:mod:`repro.trusses.decomposition` and :mod:`repro.graph.triangles`) to
convert back to canonical-edge-key dicts interchangeable with the dict path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.csr_triangles import (
    TriangleIncidence,
    csr_triangle_incidence,
    csr_triangle_supports,
)

__all__ = [
    "CSRDecomposition",
    "DEFAULT_VECTOR_THRESHOLD",
    "IncidencePeelState",
    "csr_decompose",
    "csr_edge_supports",
    "csr_truss_decomposition",
    "peel_incidence",
]

#: ``method="auto"`` uses the level-synchronous vector peel at or above this
#: many edges and the sequential bucket queue below it (the numpy passes have
#: a fixed cost the tiny-graph Python peel undercuts; the measured crossover
#: sits around a couple hundred edges).
DEFAULT_VECTOR_THRESHOLD = 256


@dataclass(frozen=True)
class CSRDecomposition:
    """The full output of one decomposition pass over a snapshot.

    Bundles the artifacts a full rebuild produces anyway so downstream
    consumers (:class:`~repro.engine.EngineSnapshot`, the LCTC kernel's
    local re-decomposition, incremental deletion seeding) share them instead
    of recomputing: per-edge ``trussness``, the initial per-edge
    ``supports``, and — when the vector strategy ran — the
    :class:`~repro.graph.csr_triangles.TriangleIncidence` it enumerated
    (``None`` from the bucket path, which never materializes triangles).
    ``method`` records the strategy that actually executed (``"vector"`` or
    ``"bucket"``), after ``"auto"`` resolution.
    """

    trussness: np.ndarray
    supports: np.ndarray
    incidence: TriangleIncidence | None
    method: str


def _resolve_method(csr: CSRGraph, method: str) -> str:
    if method == "auto":
        return "vector" if csr.number_of_edges() >= DEFAULT_VECTOR_THRESHOLD else "bucket"
    if method not in ("vector", "bucket"):
        raise ValueError(
            f"decomposition method must be 'auto', 'vector' or 'bucket', got {method!r}"
        )
    return method


def _adjacency_maps(csr: CSRGraph) -> list[dict[int, int]]:
    """Return per-node ``{neighbour id: edge id}`` maps from the CSR arrays."""
    indptr, indices, slot_edge = csr.indptr, csr.indices, csr.slot_edge
    neighbor_list = indices.tolist()
    edge_list = slot_edge.tolist()
    boundaries = indptr.tolist()
    return [
        dict(
            zip(
                neighbor_list[boundaries[u]:boundaries[u + 1]],
                edge_list[boundaries[u]:boundaries[u + 1]],
            )
        )
        for u in range(csr.number_of_nodes())
    ]


def _supports_list(
    adjacency: list[dict[int, int]], edge_u: list[int], edge_v: list[int]
) -> list[int]:
    """Support per edge id, via C-speed keys-view intersection per edge."""
    supports = [0] * len(edge_u)
    for edge in range(len(edge_u)):
        supports[edge] = len(
            adjacency[edge_u[edge]].keys() & adjacency[edge_v[edge]].keys()
        )
    return supports


def csr_edge_supports(csr: CSRGraph) -> np.ndarray:
    """Return the support of every edge as an ``int64`` array indexed by edge id.

    Large snapshots (>= :data:`DEFAULT_VECTOR_THRESHOLD` edges) count all
    supports at once with the vectorized triangle enumerator of
    :mod:`repro.graph.csr_triangles` (one ``np.bincount`` over the triangle
    array); small ones visit each edge ``(u, v)`` and intersect the
    endpoints' ``{neighbour: edge id}`` maps with a C-speed dict keys-view
    ``&``, so the total cost is one hash-set intersection per edge.
    """
    if csr.number_of_edges() >= DEFAULT_VECTOR_THRESHOLD:
        return csr_triangle_supports(csr)
    supports = _supports_list(
        _adjacency_maps(csr), csr.edge_u.tolist(), csr.edge_v.tolist()
    )
    return np.asarray(supports, dtype=np.int64)


class IncidencePeelState:
    """Mutable scratch of a scatter/scan peel over one :class:`TriangleIncidence`.

    Bundles the alive flags, the live support array and the round-lifetime
    dedup scratch that every incidence-driven peel needs, plus the one
    frontier-round primitive they share, :meth:`drop_frontier`.  Two peels
    run on it: the level-synchronous full decomposition
    (:func:`peel_incidence`, threshold follows the rising level ``k - 2``)
    and Algorithm 3's deletion cascade in the query-time peel engine
    (:mod:`repro.ctc.kernels.peeling`, threshold pinned at ``k - 3`` —
    "support strictly below ``k - 2``" — for the community's fixed ``k``).

    Attributes
    ----------
    support:
        Live per-edge support (a mutable copy of ``incidence.supports``),
        decremented as triangles die.
    edge_alive, triangle_alive:
        Boolean alive flags.  :meth:`drop_frontier` expects the caller to
        have flagged the frontier's edges dead already (the two peels
        record different things at that moment — trussness vs. nothing).
    """

    __slots__ = (
        "incidence",
        "support",
        "edge_alive",
        "triangle_alive",
        "_inc_counts",
        "_triangle_flag",
        "_edge_flag",
        "_iota",
        "_empty",
    )

    def __init__(self, incidence: TriangleIncidence) -> None:
        self.incidence = incidence
        self.support = incidence.supports.copy()
        self.edge_alive = np.ones(int(incidence.supports.size), dtype=bool)
        self.triangle_alive = np.ones(incidence.num_triangles, dtype=bool)
        self._inc_counts = np.diff(incidence.inc_indptr)
        # Scratch flags for sort-free dedup: scatter ids in, nonzero-scan the
        # (sorted) distinct ids out, reset only the touched entries.  np.unique
        # would sort each round's casualty list; the scan is linear and the
        # arrays are round-lifetime only.
        self._triangle_flag = np.zeros(incidence.num_triangles, dtype=bool)
        self._edge_flag = np.zeros(int(incidence.supports.size), dtype=bool)
        # One reusable iota covering the largest possible gather (every
        # incidence slot); rounds slice views off it instead of re-running
        # np.arange.
        self._iota = np.arange(incidence.inc_triangles.size, dtype=np.int64)
        self._empty = np.zeros(0, dtype=np.int64)

    def dedup_edges(self, edge_ids: np.ndarray) -> np.ndarray:
        """Return the distinct ids of ``edge_ids``, sorted, via the flag scratch.

        The same sort-free scatter/scan the rounds use internally, exposed
        for callers assembling a *seed* frontier (e.g. the edges incident
        to a peeled vertex, which meet at shared endpoints).
        """
        if edge_ids.size == 0:
            return self._empty
        self._edge_flag[edge_ids] = True
        distinct = np.nonzero(self._edge_flag)[0]
        self._edge_flag[distinct] = False
        return distinct

    def drop_frontier(self, frontier: np.ndarray, threshold: int) -> np.ndarray:
        """Kill the frontier's triangles; return the next frontier, deduped.

        ``frontier`` (distinct edge ids, already flagged dead in
        ``edge_alive`` by the caller) takes its incident still-alive
        triangles down with it; every dead triangle decrements its
        surviving corner edges' supports, and the distinct survivors whose
        support fell to ``<= threshold`` come back as the next frontier.
        """
        incidence = self.incidence
        # Inline segment gather of the frontier's incidence rows (see
        # TriangleIncidence.triangles_of_edges; one repeat + one arange).
        counts = self._inc_counts[frontier]
        total = int(counts.sum())
        if total == 0:
            return self._empty
        offsets = np.cumsum(counts) - counts
        gather = (
            np.repeat(incidence.inc_indptr[frontier] - offsets, counts)
            + self._iota[:total]
        )
        casualties = incidence.inc_triangles[gather]
        casualties = casualties[self.triangle_alive[casualties]]
        if casualties.size == 0:
            return self._empty
        # A triangle touching two frontier edges is gathered twice; the flag
        # scatter collapses it so it dies (and decrements) exactly once.
        self._triangle_flag[casualties] = True
        dead = np.nonzero(self._triangle_flag)[0]
        self._triangle_flag[dead] = False
        self.triangle_alive[dead] = False
        corners = incidence.edges[dead].ravel()
        corners = corners[self.edge_alive[corners]]
        if corners.size == 0:
            return self._empty
        # A corner listed once per dead triangle containing it is exactly
        # the decrement bincount must apply — no dedup here.
        self.support -= np.bincount(corners, minlength=self.support.size)
        qualifying = corners[self.support[corners] <= threshold]
        if qualifying.size == 0:
            return self._empty
        # Same scatter/scan dedup as the triangle flags: the next frontier
        # must list each edge once (remaining-count and gather volume both
        # depend on it).
        self._edge_flag[qualifying] = True
        next_frontier = np.nonzero(self._edge_flag)[0]
        self._edge_flag[next_frontier] = False
        return next_frontier


def peel_incidence(incidence: TriangleIncidence) -> np.ndarray:
    """Level-synchronously peel a triangle-incidence structure to trussness.

    The decomposition engine of the vector strategy, factored out so it can
    run on *any* incidence structure — the whole snapshot's
    (:func:`csr_decompose`) or a subgraph restriction produced by
    :func:`~repro.graph.csr_triangles.subset_incidence` (the LCTC kernel's
    local re-decomposition).  Per level ``k``, the whole frontier of
    surviving edges with support ``<= k - 2`` is peeled per round until the
    level is exhausted; triangles with a peeled edge die and decrement their
    surviving edges' supports in bulk (the :class:`IncidencePeelState`
    round primitive).  Returns the ``int64`` trussness array, one entry per
    edge of the incidence's graph (every value ``>= 2``; triangle-free
    edges get exactly 2).
    """
    num_edges = int(incidence.supports.size)
    trussness = np.full(num_edges, 2, dtype=np.int64)
    if num_edges == 0:
        return trussness
    state = IncidencePeelState(incidence)
    support = state.support
    edge_alive = state.edge_alive
    remaining = num_edges
    k = 2
    # Support only ever *drops*, so after the level-opening full scan every
    # later frontier of the level hides among the edges just decremented —
    # cascade rounds touch O(affected) edges, not O(m).
    frontier = np.nonzero(support <= 0)[0]
    while remaining:
        if frontier.size == 0:
            # Level exhausted: jump straight to the next occupied support bin
            # (trussness is non-decreasing, so no level can appear below it).
            floor = int(np.min(support, where=edge_alive, initial=num_edges))
            k = max(k + 1, floor + 2)
            frontier = np.nonzero(edge_alive & (support <= k - 2))[0]
            continue
        trussness[frontier] = k
        edge_alive[frontier] = False
        remaining -= int(frontier.size)
        if remaining == 0:
            break
        frontier = state.drop_frontier(frontier, k - 2)
    return trussness


def _bucket_truss_decomposition(
    csr: CSRGraph, supports: list[int], adjacency: list[dict[int, int]] | None = None
) -> np.ndarray:
    """The sequential bin-sort bucket-queue peel (the small-graph fallback).

    ``adjacency`` lets the caller share the maps the support count already
    built (they are consumed destructively, so a shared instance must not be
    reused afterwards).
    """
    num_edges = csr.number_of_edges()
    if adjacency is None:
        adjacency = _adjacency_maps(csr)
    edge_u = csr.edge_u.tolist()
    edge_v = csr.edge_v.tolist()

    # Bin-sort bucket queue over plain Python lists (scalar indexing into
    # numpy arrays is far slower than list indexing on this hot path).
    # sorted_edges holds edge ids ordered by current support, pos is the
    # inverse permutation, bin_start[s] is the first position of support s.
    current = list(supports)
    max_support = max(current)
    counts = [0] * (max_support + 1)
    for value in current:
        counts[value] += 1
    bin_start = [0] * (max_support + 1)
    running = 0
    for value in range(max_support + 1):
        bin_start[value] = running
        running += counts[value]
    sorted_edges: list[int] = [0] * num_edges
    fill = list(bin_start)
    for edge in range(num_edges):
        position = fill[current[edge]]
        sorted_edges[position] = edge
        fill[current[edge]] += 1
    pos: list[int] = [0] * num_edges
    for position, edge in enumerate(sorted_edges):
        pos[edge] = position

    trussness = [0] * num_edges
    k = 2
    for i in range(num_edges):
        edge = sorted_edges[i]
        level = current[edge]
        if level + 2 > k:
            k = level + 2
        trussness[edge] = k

        u, v = edge_u[edge], edge_v[edge]
        adj_u = adjacency[u]
        adj_v = adjacency[v]
        del adj_u[v]
        del adj_v[u]
        if len(adj_u) > len(adj_v):
            adj_u, adj_v = adj_v, adj_u
        for w, first in adj_u.items():
            second = adj_v.get(w)
            if second is None:
                continue
            # Clamp: never decrement below the level currently being peeled
            # (see module docstring).
            value = current[first]
            if value > level:
                position = pos[first]
                front = bin_start[value]
                other = sorted_edges[front]
                if other != first:
                    sorted_edges[front] = first
                    sorted_edges[position] = other
                    pos[first] = front
                    pos[other] = position
                bin_start[value] = front + 1
                current[first] = value - 1
            value = current[second]
            if value > level:
                position = pos[second]
                front = bin_start[value]
                other = sorted_edges[front]
                if other != second:
                    sorted_edges[front] = second
                    sorted_edges[position] = other
                    pos[second] = front
                    pos[other] = position
                bin_start[value] = front + 1
                current[second] = value - 1
    return np.asarray(trussness, dtype=np.int64)


def csr_decompose(
    csr: CSRGraph,
    *,
    method: str = "auto",
    supports: np.ndarray | None = None,
    incidence: TriangleIncidence | None = None,
) -> CSRDecomposition:
    """Decompose ``csr`` and return every artifact of the pass.

    ``method`` selects the strategy (``"auto"``, ``"vector"`` or
    ``"bucket"``; see the module docstring).  ``supports`` and ``incidence``
    let callers that already hold those artifacts (an
    :class:`~repro.engine.EngineSnapshot`, a repeated benchmark run) skip
    recomputing them; when omitted they are built here and returned, so
    downstream consumers can share them instead of rebuilding — the fix for
    the historical double support computation on full builds.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> result = csr_decompose(CSRGraph.from_graph(complete_graph(4)))
    >>> result.method, result.trussness.tolist(), result.supports.tolist()
    ('bucket', [4, 4, 4, 4, 4, 4], [2, 2, 2, 2, 2, 2])
    """
    num_edges = csr.number_of_edges()
    resolved = _resolve_method(csr, method)
    if num_edges == 0:
        return CSRDecomposition(
            trussness=np.zeros(0, dtype=np.int64),
            supports=np.zeros(0, dtype=np.int64),
            incidence=incidence,
            method=resolved,
        )
    if resolved == "vector":
        if incidence is None:
            incidence = csr_triangle_incidence(csr)
        return CSRDecomposition(
            trussness=peel_incidence(incidence),
            supports=incidence.supports,
            incidence=incidence,
            method=resolved,
        )
    adjacency = _adjacency_maps(csr)
    if supports is None:
        support_list = _supports_list(adjacency, csr.edge_u.tolist(), csr.edge_v.tolist())
        supports = np.asarray(support_list, dtype=np.int64)
    else:
        supports = np.asarray(supports, dtype=np.int64)
        support_list = supports.tolist()
    return CSRDecomposition(
        trussness=_bucket_truss_decomposition(csr, support_list, adjacency),
        supports=supports,
        incidence=incidence,
        method=resolved,
    )


def csr_truss_decomposition(
    csr: CSRGraph, *, method: str = "auto", supports: np.ndarray | None = None
) -> np.ndarray:
    """Return the trussness of every edge as an ``int64`` array indexed by edge id.

    Drop-in equivalent (modulo key representation) to
    :func:`repro.trusses.decomposition.truss_decomposition`: values are
    ``>= 2`` and edges in no triangle get exactly 2.  Thin wrapper over
    :func:`csr_decompose` for callers that only want the trussness array;
    ``method`` / ``supports`` are forwarded as-is.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> csr = CSRGraph.from_graph(complete_graph(4))
    >>> sorted(set(csr_truss_decomposition(csr).tolist()))
    [4]
    """
    return csr_decompose(csr, method=method, supports=supports).trussness
