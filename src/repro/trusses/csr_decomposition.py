"""Array-based support counting and truss decomposition on a CSR snapshot.

These are the fast-path twins of :func:`repro.graph.triangles.all_edge_supports`
and :func:`repro.trusses.decomposition.truss_decomposition`: same peeling
semantics (Wang & Cheng, PVLDB 2012; the paper's reference [29], used by
Remark 1), but operating on the dense integer ids of a
:class:`~repro.graph.csr.CSRGraph` instead of tuple-keyed dicts:

* per-edge attributes (support, trussness) live in flat arrays indexed by
  dense edge id — no ``edge_key`` tuple construction or tuple hashing on
  the hot path;
* the peeling order is maintained with the classic O(m) bin-sort bucket
  queue (Batagelj-Zaversnik style): edges stay sorted by current support,
  and a support decrement is a single swap-to-bucket-front plus a
  bucket-boundary shift;
* triangle enumeration during the peel walks int-keyed shrinking adjacency
  maps (neighbour id -> edge id) derived from the CSR arrays, so dead edges
  are never rescanned.

One deliberate difference from textbook peeling: a decrement never pushes an
edge's support below the level currently being peeled.  This "clamp" keeps
the sorted array valid without re-sorting and is harmless because trussness
is non-decreasing along the peel — an edge whose support would fall below
the current level is peeled at that level anyway.  The dict-based version
achieves the same effect by rewinding its bucket pointer.

Both functions return per-edge-id ``numpy`` arrays; use
:meth:`CSRGraph.edge_key_of` (or the dispatching wrappers in
:mod:`repro.trusses.decomposition` and :mod:`repro.graph.triangles`) to
convert back to canonical-edge-key dicts interchangeable with the dict path.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["csr_edge_supports", "csr_truss_decomposition"]


def _adjacency_maps(csr: CSRGraph) -> list[dict[int, int]]:
    """Return per-node ``{neighbour id: edge id}`` maps from the CSR arrays."""
    indptr, indices, slot_edge = csr.indptr, csr.indices, csr.slot_edge
    neighbor_list = indices.tolist()
    edge_list = slot_edge.tolist()
    boundaries = indptr.tolist()
    return [
        dict(
            zip(
                neighbor_list[boundaries[u]:boundaries[u + 1]],
                edge_list[boundaries[u]:boundaries[u + 1]],
            )
        )
        for u in range(csr.number_of_nodes())
    ]


def _supports_list(
    adjacency: list[dict[int, int]], edge_u: list[int], edge_v: list[int]
) -> list[int]:
    """Support per edge id, via C-speed keys-view intersection per edge."""
    supports = [0] * len(edge_u)
    for edge in range(len(edge_u)):
        supports[edge] = len(
            adjacency[edge_u[edge]].keys() & adjacency[edge_v[edge]].keys()
        )
    return supports


def csr_edge_supports(csr: CSRGraph) -> np.ndarray:
    """Return the support of every edge as an ``int64`` array indexed by edge id.

    Each edge ``(u, v)`` is visited exactly once; its support is counted by
    probing every neighbour of the lower-degree endpoint against the other
    endpoint's adjacency map, so the total cost is
    ``O(sum over edges of min(deg(u), deg(v)))`` hash probes.
    """
    supports = _supports_list(
        _adjacency_maps(csr), csr.edge_u.tolist(), csr.edge_v.tolist()
    )
    return np.asarray(supports, dtype=np.int64)


def csr_truss_decomposition(csr: CSRGraph) -> np.ndarray:
    """Return the trussness of every edge as an ``int64`` array indexed by edge id.

    Drop-in equivalent (modulo key representation) to
    :func:`repro.trusses.decomposition.truss_decomposition`: values are
    ``>= 2`` and edges in no triangle get exactly 2.

    Examples
    --------
    >>> from repro.graph.generators import complete_graph
    >>> csr = CSRGraph.from_graph(complete_graph(4))
    >>> sorted(set(csr_truss_decomposition(csr).tolist()))
    [4]
    """
    num_edges = csr.number_of_edges()
    if num_edges == 0:
        return np.zeros(0, dtype=np.int64)

    adjacency = _adjacency_maps(csr)
    edge_u = csr.edge_u.tolist()
    edge_v = csr.edge_v.tolist()

    # Bin-sort bucket queue over plain Python lists (scalar indexing into
    # numpy arrays is far slower than list indexing on this hot path).
    # sorted_edges holds edge ids ordered by current support, pos is the
    # inverse permutation, bin_start[s] is the first position of support s.
    current = _supports_list(adjacency, edge_u, edge_v)
    max_support = max(current)
    counts = [0] * (max_support + 1)
    for value in current:
        counts[value] += 1
    bin_start = [0] * (max_support + 1)
    running = 0
    for value in range(max_support + 1):
        bin_start[value] = running
        running += counts[value]
    sorted_edges: list[int] = [0] * num_edges
    fill = list(bin_start)
    for edge in range(num_edges):
        position = fill[current[edge]]
        sorted_edges[position] = edge
        fill[current[edge]] += 1
    pos: list[int] = [0] * num_edges
    for position, edge in enumerate(sorted_edges):
        pos[edge] = position

    trussness = [0] * num_edges
    k = 2
    for i in range(num_edges):
        edge = sorted_edges[i]
        level = current[edge]
        if level + 2 > k:
            k = level + 2
        trussness[edge] = k

        u, v = edge_u[edge], edge_v[edge]
        adj_u = adjacency[u]
        adj_v = adjacency[v]
        del adj_u[v]
        del adj_v[u]
        if len(adj_u) > len(adj_v):
            adj_u, adj_v = adj_v, adj_u
        for w, first in adj_u.items():
            second = adj_v.get(w)
            if second is None:
                continue
            # Clamp: never decrement below the level currently being peeled
            # (see module docstring).
            value = current[first]
            if value > level:
                position = pos[first]
                front = bin_start[value]
                other = sorted_edges[front]
                if other != first:
                    sorted_edges[front] = first
                    sorted_edges[position] = other
                    pos[first] = front
                    pos[other] = position
                bin_start[value] = front + 1
                current[first] = value - 1
            value = current[second]
            if value > level:
                position = pos[second]
                front = bin_start[value]
                other = sorted_edges[front]
                if other != second:
                    sorted_edges[front] = second
                    sorted_edges[position] = other
                    pos[second] = front
                    pos[other] = position
                bin_start[value] = front + 1
                current[second] = value - 1
    return np.asarray(trussness, dtype=np.int64)
