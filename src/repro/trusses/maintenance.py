"""k-truss maintenance under vertex/edge deletions (Algorithm 3).

The greedy CTC algorithms peel vertices from the working graph; afterwards
the graph may no longer be a k-truss (some edges may have lost triangles) or
may disconnect the query.  Algorithm 3 restores the k-truss property by a
cascade: every edge whose support drops below ``k - 2`` is queued for
removal, removing it decrements the support of the other two edges of each of
its triangles, and so on until a fixed point.  Finally isolated vertices are
dropped.

:class:`KTrussMaintainer` owns a mutable working copy of ``G0`` together
with its edge-support table, so that the cascade runs in time proportional to
the number of triangles destroyed rather than recomputing supports from
scratch each iteration (this is what makes Algorithms 1 and 4 practical;
see Section 4.2 "Maintenance of k-truss" and the complexity discussion in
Section 4.4).

Mutation hooks
--------------
Interested parties can observe every completed deletion cascade via
:meth:`KTrussMaintainer.register_mutation_hook`.  Hooks receive a
structured :class:`~repro.graph.delta.GraphDelta` describing exactly which
vertices and edges the cascade removed; this is how
:class:`~repro.engine.CTCEngine` feeds maintainer-driven mutations into its
delta log when the maintainer operates directly on the engine's live store
(``copy_graph=False``).  Hook dispatch is atomic with respect to hook
failures: every registered hook runs even if an earlier one raises (the
first exception is re-raised afterwards), so an observer that bumps a
version or appends to a log can never miss a cascade because another hook
blew up first.

The ``_support`` table is keyed by :func:`repro.graph.keys.edge_key`; that
module documents the key contract.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable

from repro.graph.delta import GraphDelta
from repro.graph.keys import EdgeKey, edge_key
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.triangles import all_edge_supports

__all__ = ["KTrussMaintainer", "restore_k_truss"]

#: Signature of a mutation hook: called after each completed deletion
#: cascade with the :class:`GraphDelta` describing what was removed.
MutationHook = Callable[[GraphDelta], None]


class KTrussMaintainer:
    """Maintains a k-truss under batched vertex deletions.

    Parameters
    ----------
    graph:
        The starting k-truss (typically ``G0`` from FindG0).  By default a
        private copy is made and the caller's graph is never mutated.
    k:
        The trussness level to maintain: after every deletion batch, each
        surviving edge has support >= ``k - 2`` within the surviving graph.
    copy_graph:
        When ``False`` the maintainer operates **in place** on the caller's
        graph instead of a private copy.  :class:`~repro.engine.CTCEngine`
        uses this to route mutations through the maintainer while keeping a
        single authoritative store.
    """

    def __init__(self, graph: UndirectedGraph, k: int, *, copy_graph: bool = True) -> None:
        self._graph = graph.copy() if copy_graph else graph
        self._k = k
        self._support: dict[EdgeKey, int] = all_edge_supports(self._graph)
        self._hooks: list[MutationHook] = []

    # ------------------------------------------------------------------
    @property
    def graph(self) -> UndirectedGraph:
        """The live working graph (mutated in place by deletions)."""
        return self._graph

    @property
    def k(self) -> int:
        """The trussness level being maintained."""
        return self._k

    def support(self, u: Hashable, v: Hashable) -> int:
        """Return the current support of edge ``(u, v)``."""
        return self._support[edge_key(u, v)]

    def snapshot(self) -> UndirectedGraph:
        """Return an immutable copy of the current working graph."""
        return self._graph.copy()

    def register_mutation_hook(self, hook: MutationHook) -> None:
        """Register ``hook`` to run after every deletion cascade that removed something.

        Hooks receive the cascade's :class:`GraphDelta`; cascades that
        remove nothing (e.g. deleting vertices that are already gone) do not
        fire them.  All hooks run even if one raises (see the module
        docstring).
        """
        self._hooks.append(hook)

    def _dispatch(self, delta: GraphDelta) -> None:
        """Run every hook on ``delta``; defer (and re-raise) the first failure.

        The store mutation has already happened by the time hooks fire, so a
        hook raising mid-batch must not prevent the remaining hooks from
        observing the cascade — otherwise an engine hook could miss the
        version bump and keep serving a half-applied graph from its cache.
        """
        failure: BaseException | None = None
        for hook in self._hooks:
            try:
                hook(delta)
            except BaseException as exc:  # noqa: BLE001 - deferred, not swallowed
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure

    # ------------------------------------------------------------------
    def delete_vertices(self, vertices: Iterable[Hashable]) -> tuple[set[Hashable], set[EdgeKey]]:
        """Delete ``vertices`` and restore the k-truss property (Algorithm 3).

        Returns the set of all vertices removed (requested ones plus cascade
        casualties) and the set of all edges removed.  Vertices not present
        are ignored, so the caller can pass stale candidate sets.
        """
        removal_queue: deque[EdgeKey] = deque()
        queued: set[EdgeKey] = set()
        removed_edges: set[EdgeKey] = set()
        removed_vertices: set[Hashable] = set()

        # Seed the cascade with every edge incident to a deleted vertex
        # (Algorithm 3, lines 1-3).
        for vertex in vertices:
            if not self._graph.has_node(vertex):
                continue
            removed_vertices.add(vertex)
            for neighbor in self._graph.neighbors(vertex):
                key = edge_key(vertex, neighbor)
                if key not in queued:
                    queued.add(key)
                    removal_queue.append(key)

        # Cascade (Algorithm 3, lines 4-9).
        while removal_queue:
            u, v = removal_queue.popleft()
            if not self._graph.has_edge(u, v):
                continue
            for w in self._graph.common_neighbors(u, v):
                for key in (edge_key(u, w), edge_key(v, w)):
                    if key in queued:
                        continue
                    self._support[key] -= 1
                    if self._support[key] < self._k - 2:
                        queued.add(key)
                        removal_queue.append(key)
            self._graph.remove_edge(u, v)
            self._support.pop(edge_key(u, v), None)
            removed_edges.add(edge_key(u, v))

        # Drop isolated vertices (Algorithm 3, line 10) plus the explicitly
        # requested vertices themselves.
        for vertex in list(removed_vertices):
            if self._graph.has_node(vertex):
                self._graph.remove_node(vertex)
        for vertex in list(self._graph.nodes()):
            if self._graph.degree(vertex) == 0:
                self._graph.remove_node(vertex)
                removed_vertices.add(vertex)
        if removed_vertices or removed_edges:
            self._dispatch(
                GraphDelta(removed_nodes=removed_vertices, removed_edges=removed_edges)
            )
        return removed_vertices, removed_edges

    def delete_vertex(self, vertex: Hashable) -> tuple[set[Hashable], set[EdgeKey]]:
        """Delete a single vertex (Algorithm 1 uses ``Vd = {u*}``)."""
        return self.delete_vertices([vertex])

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Return ``True`` if every surviving edge has support >= k - 2.

        Recomputes supports from scratch; intended for tests and assertions,
        not for use inside the peeling loop.
        """
        fresh = all_edge_supports(self._graph)
        return all(value >= self._k - 2 for value in fresh.values())

    def __repr__(self) -> str:
        return (
            f"KTrussMaintainer(k={self._k}, nodes={self._graph.number_of_nodes()}, "
            f"edges={self._graph.number_of_edges()})"
        )


def restore_k_truss(graph: UndirectedGraph, k: int) -> UndirectedGraph:
    """Return the maximal subgraph of ``graph`` in which every edge has support >= k - 2.

    A convenience wrapper over :class:`KTrussMaintainer` for one-shot use:
    it deletes nothing explicitly but runs the cascade over every initially
    under-supported edge, which yields exactly the maximal k-truss of the
    input (possibly disconnected, possibly empty).
    """
    maintainer = KTrussMaintainer(graph, k)
    # Seed: remove edges already below the threshold by running a cascade with
    # an empty vertex set after artificially queueing weak edges.
    weak = [
        edge for edge, support in all_edge_supports(maintainer.graph).items()
        if support < k - 2
    ]
    if weak:
        # Deleting one endpoint would remove too much; instead remove the weak
        # edges directly by temporarily treating each as a "vertex pair" seed.
        queue = deque(weak)
        queued = set(weak)
        while queue:
            u, v = queue.popleft()
            if not maintainer.graph.has_edge(u, v):
                continue
            for w in maintainer.graph.common_neighbors(u, v):
                for key in (edge_key(u, w), edge_key(v, w)):
                    if key in queued:
                        continue
                    maintainer._support[key] -= 1
                    if maintainer._support[key] < k - 2:
                        queued.add(key)
                        queue.append(key)
            maintainer.graph.remove_edge(u, v)
            maintainer._support.pop(edge_key(u, v), None)
        for vertex in list(maintainer.graph.nodes()):
            if maintainer.graph.degree(vertex) == 0:
                maintainer.graph.remove_node(vertex)
    return maintainer.snapshot()
