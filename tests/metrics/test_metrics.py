"""Unit tests for quality, structure and approximation metrics."""

from __future__ import annotations

import pytest

from repro.ctc.basic import BasicCTC
from repro.ctc.result import CommunityResult
from repro.metrics.approximation import (
    approximation_ratio,
    diameter_bounds,
    summarize_diameter_experiment,
)
from repro.metrics.quality import average_f1, f1_score, jaccard_index, precision, recall
from repro.metrics.structure import (
    community_statistics,
    compare_to_reference,
    percentage_retained,
    reduction_ratio,
)
from repro.graph.generators import complete_graph, path_graph
from repro.graph.simple_graph import UndirectedGraph


class TestQualityMetrics:
    def test_perfect_match(self):
        assert precision({1, 2}, {1, 2}) == 1.0
        assert recall({1, 2}, {1, 2}) == 1.0
        assert f1_score({1, 2}, {1, 2}) == 1.0
        assert jaccard_index({1, 2}, {1, 2}) == 1.0

    def test_disjoint_sets(self):
        assert precision({1}, {2}) == 0.0
        assert recall({1}, {2}) == 0.0
        assert f1_score({1}, {2}) == 0.0
        assert jaccard_index({1}, {2}) == 0.0

    def test_partial_overlap(self):
        found = {1, 2, 3, 4}
        truth = {3, 4, 5, 6, 7, 8}
        assert precision(found, truth) == pytest.approx(0.5)
        assert recall(found, truth) == pytest.approx(2 / 6)
        expected_f1 = 2 * 0.5 * (2 / 6) / (0.5 + 2 / 6)
        assert f1_score(found, truth) == pytest.approx(expected_f1)
        assert jaccard_index(found, truth) == pytest.approx(2 / 8)

    def test_empty_conventions(self):
        assert precision(set(), {1}) == 1.0
        assert recall({1}, set()) == 1.0
        assert jaccard_index(set(), set()) == 1.0
        assert f1_score(set(), set()) == 1.0

    def test_f1_is_symmetric_in_precision_recall_swap(self):
        assert f1_score({1, 2, 3}, {1}) == pytest.approx(f1_score({1}, {1, 2, 3}))

    def test_average_f1(self):
        pairs = [({1, 2}, {1, 2}), ({1}, {2})]
        assert average_f1(pairs) == pytest.approx(0.5)
        assert average_f1([]) == 0.0

    def test_accepts_any_iterable(self):
        assert f1_score([1, 2, 2], (1, 2)) == 1.0


class TestStructureMetrics:
    def test_community_statistics_complete_graph(self, k5):
        stats = community_statistics(k5, query=[0])
        assert stats["nodes"] == 5
        assert stats["edges"] == 10
        assert stats["density"] == pytest.approx(1.0)
        assert stats["diameter"] == 1
        assert stats["trussness"] == 5
        assert stats["query_distance"] == 1

    def test_percentage_retained(self, k5):
        sub = k5.subgraph([0, 1, 2])
        assert percentage_retained(sub, k5) == pytest.approx(60.0)
        assert percentage_retained(sub, UndirectedGraph()) == 100.0

    def test_reduction_ratio(self, k5):
        sub = k5.subgraph([0, 1, 2])
        ratios = reduction_ratio(sub, k5)
        assert ratios["community_nodes"] == 3
        assert ratios["reference_nodes"] == 5
        assert ratios["node_retention"] == pytest.approx(0.6)
        assert ratios["edge_retention"] == pytest.approx(3 / 10)

    def test_compare_to_reference(self, figure1_index, figure1_query):
        from repro.baselines.truss_only import TrussOnly

        basic = BasicCTC(figure1_index).search(figure1_query)
        truss = TrussOnly(figure1_index).search(figure1_query)
        comparison = compare_to_reference(basic, truss)
        assert comparison["percentage"] == pytest.approx(100 * 8 / 11)
        assert comparison["density"] > comparison["reference_density"]
        assert comparison["trussness"] == comparison["reference_trussness"] == 4


class TestApproximationMetrics:
    def test_diameter_bounds_bracket_diameter(self, figure1_index, figure1_query):
        result = BasicCTC(figure1_index).search(figure1_query)
        lower, upper = diameter_bounds(result)
        assert lower == 3
        assert upper == 6
        assert lower <= result.diameter() <= upper

    def test_diameter_bounds_recompute_when_missing(self, k4):
        result = CommunityResult(graph=k4, query=(0,), trussness=4, method="x")
        lower, upper = diameter_bounds(result)
        assert lower == 1
        assert upper == 2

    def test_approximation_ratio(self, figure1_index, figure1_query):
        result = BasicCTC(figure1_index).search(figure1_query)
        assert approximation_ratio(result, 3) == pytest.approx(1.0)
        assert approximation_ratio(result, 0) == 1.0

    def test_summary_rows_contain_all_methods(self, figure1_index, figure1_query):
        basic = BasicCTC(figure1_index).search(figure1_query)
        rows = summarize_diameter_experiment([basic], basic)
        assert set(rows) == {"lb-opt", "ub-opt", "basic"}
        assert rows["lb-opt"]["diameter"] <= rows["basic"]["diameter"]
        assert rows["basic"]["ratio"] <= 2.0

    def test_path_community_ratio_at_most_two(self):
        graph = path_graph(5)
        result = CommunityResult(
            graph=graph, query=(2,), trussness=2, method="x", query_distance=2
        )
        lower, _upper = diameter_bounds(result)
        assert approximation_ratio(result, lower) <= 2.0
