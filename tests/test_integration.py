"""End-to-end integration tests across the whole stack.

These run the full pipeline a user of the library would run: build/load a
network, build the index once, issue queries through the public facade with
several methods, and check the cross-method relationships the paper reports
(CTC methods shrink the Truss baseline, keep its trussness, and align better
with planted ground truth than size-unaware baselines on dense communities).
"""

from __future__ import annotations

import pytest

from repro import TrussIndex, available_methods, build_index, search
from repro.ctc.free_rider import retained_node_percentage
from repro.datasets.collaboration import CASE_STUDY_QUERY, build_collaboration_network
from repro.datasets.queries import ground_truth_query_sets
from repro.datasets.registry import load_dataset
from repro.exceptions import NoCommunityFoundError
from repro.graph.components import is_connected
from repro.graph.triangles import all_edge_supports
from repro.metrics.quality import f1_score


class TestFacebookLikeWorkflow:
    @pytest.fixture(scope="class")
    def network(self):
        return load_dataset("facebook-like")

    @pytest.fixture(scope="class")
    def index(self, network):
        return build_index(network.graph)

    def test_index_is_reusable_across_queries_and_methods(self, network, index):
        assert isinstance(index, TrussIndex)
        pairs = ground_truth_query_sets(network, 3, size_range=(2, 3), seed=1)
        for query, _truth in pairs:
            for method in ("truss", "bulk-delete", "lctc"):
                result = search(index, query, method=method, eta=150)
                assert result.contains_query()
                assert is_connected(result.graph)

    def test_ctc_methods_shrink_truss_but_keep_trussness(self, network, index):
        pairs = ground_truth_query_sets(network, 5, size_range=(2, 4), seed=2)
        shrunk_at_least_once = False
        for query, _truth in pairs:
            truss = search(index, query, method="truss")
            bulk = search(index, query, method="bulk-delete")
            assert bulk.trussness == truss.trussness
            assert bulk.num_nodes <= truss.num_nodes
            percentage = retained_node_percentage(bulk.graph, truss.graph)
            assert percentage <= 100.0
            if percentage < 100.0:
                shrunk_at_least_once = True
        assert shrunk_at_least_once or truss.num_nodes < 20

    def test_all_methods_produce_communities_on_ground_truth_queries(self, network, index):
        pairs = ground_truth_query_sets(network, 2, size_range=(2, 2), seed=3)
        for query, truth in pairs:
            for method in available_methods():
                result = search(index, query, method=method, eta=150)
                assert result.contains_query()
                assert 0.0 <= f1_score(result.nodes, truth) <= 1.0

    def test_lctc_f1_meets_or_beats_truss_baseline_on_average(self, network, index):
        """Figure 12(a) shape: the free-rider-removing LCTC should align with
        the planted communities at least as well as the raw Truss output."""
        pairs = ground_truth_query_sets(network, 8, size_range=(2, 4), seed=4)
        truss_scores = []
        lctc_scores = []
        for query, truth in pairs:
            truss_scores.append(f1_score(search(index, query, method="truss").nodes, truth))
            lctc_scores.append(
                f1_score(search(index, query, method="lctc", eta=150).nodes, truth)
            )
        assert sum(lctc_scores) >= sum(truss_scores) - 1e-9


class TestCaseStudyWorkflow:
    def test_case_study_reproduces_figure_11_shape(self):
        network = build_collaboration_network()
        index = build_index(network.graph)
        truss = search(index, list(CASE_STUDY_QUERY), method="truss")
        lctc = search(index, list(CASE_STUDY_QUERY), method="lctc", eta=300)
        # G0 is large and loose; the LCTC community is small and dense.
        assert truss.num_nodes > lctc.num_nodes
        assert lctc.density() > truss.density()
        assert lctc.trussness == truss.trussness
        assert lctc.diameter() <= truss.diameter()
        # The LCTC community is essentially the planted core of senior authors.
        core = network.communities[0]
        assert f1_score(lctc.nodes, core) >= 0.8

    def test_case_study_community_is_a_valid_truss(self):
        network = build_collaboration_network()
        result = search(network.graph, list(CASE_STUDY_QUERY), method="lctc", eta=300)
        supports = all_edge_supports(result.graph)
        assert all(value >= result.trussness - 2 for value in supports.values())
        assert result.trussness >= 9  # the paper's case-study community is a 9-truss


class TestRobustness:
    def test_methods_handle_queries_spanning_communities(self):
        network = load_dataset("facebook-like")
        index = build_index(network.graph)
        # Take one node from each of two different planted communities.
        first = sorted(network.communities[0])[0]
        second = sorted(network.communities[1])[0]
        for method in ("truss", "bulk-delete", "lctc"):
            try:
                result = search(index, [first, second], method=method, eta=150)
            except NoCommunityFoundError:
                continue
            assert result.contains_query()

    def test_repeated_search_is_deterministic(self):
        network = load_dataset("facebook-like")
        index = build_index(network.graph)
        query = sorted(network.communities[0])[:3]
        first = search(index, query, method="bulk-delete")
        second = search(index, query, method="bulk-delete")
        assert first.nodes == second.nodes
        first_local = search(index, query, method="lctc", eta=120)
        second_local = search(index, query, method="lctc", eta=120)
        assert first_local.nodes == second_local.nodes
