"""Tests for the CSRGraph frozen snapshot type."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta
from repro.graph.generators import complete_graph, erdos_renyi_graph, star_graph
from repro.graph.simple_graph import UndirectedGraph, edge_key


class TestConstruction:
    def test_empty_graph(self):
        csr = CSRGraph.from_graph(UndirectedGraph())
        assert csr.number_of_nodes() == 0
        assert csr.number_of_edges() == 0
        assert list(csr.edges()) == []

    def test_isolated_nodes_survive(self):
        graph = UndirectedGraph()
        graph.add_nodes_from([3, 1, 2])
        csr = CSRGraph.from_graph(graph)
        assert csr.number_of_nodes() == 3
        assert csr.number_of_edges() == 0
        assert all(csr.degree(i) == 0 for i in range(3))

    def test_labels_sorted_when_comparable(self):
        graph = UndirectedGraph([(5, 2), (2, 9)])
        csr = CSRGraph.from_graph(graph)
        assert csr.labels() == [2, 5, 9]
        assert csr.node_id(2) == 0
        assert csr.node_label(2) == 9

    def test_mixed_label_types_fall_back_to_repr_order(self):
        graph = UndirectedGraph([(1, "a"), ("a", (2, 3))])
        csr = CSRGraph.from_graph(graph)
        assert set(csr.labels()) == {1, "a", (2, 3)}
        # Round trip preserves the structure regardless of ordering.
        assert csr.to_graph() == graph

    def test_rows_are_sorted(self):
        graph = erdos_renyi_graph(30, 0.3, seed=1)
        csr = CSRGraph.from_graph(graph)
        for node in range(csr.number_of_nodes()):
            row = csr.neighbor_ids(node).tolist()
            assert row == sorted(row)

    def test_roundtrip_equality(self):
        graph = erdos_renyi_graph(25, 0.2, seed=4)
        assert CSRGraph.from_graph(graph).to_graph() == graph


class TestAdjacency:
    def test_degree_matches_dict_graph(self):
        graph = erdos_renyi_graph(30, 0.25, seed=2)
        csr = CSRGraph.from_graph(graph)
        for label in graph.nodes():
            assert csr.degree(csr.node_id(label)) == graph.degree(label)

    def test_has_edge(self):
        graph = star_graph(4)
        csr = CSRGraph.from_graph(graph)
        hub = csr.node_id(0)
        for leaf_label in (1, 2, 3, 4):
            leaf = csr.node_id(leaf_label)
            assert csr.has_edge(hub, leaf)
            assert csr.has_edge(leaf, hub)
        assert not csr.has_edge(csr.node_id(1), csr.node_id(2))

    def test_common_neighbors_match_dict_graph(self):
        graph = erdos_renyi_graph(30, 0.3, seed=3)
        csr = CSRGraph.from_graph(graph)
        for u, v in graph.edges():
            expected = {csr.node_id(w) for w in graph.common_neighbors(u, v)}
            got = set(csr.common_neighbor_ids(csr.node_id(u), csr.node_id(v)).tolist())
            assert got == expected
            assert csr.support(csr.node_id(u), csr.node_id(v)) == len(expected)

    def test_node_lookup_errors(self):
        csr = CSRGraph.from_graph(complete_graph(3))
        with pytest.raises(NodeNotFoundError):
            csr.node_id(99)
        assert 99 not in csr
        assert 0 in csr


class TestEdgeIds:
    def test_edge_ids_are_dense_and_symmetric(self):
        graph = erdos_renyi_graph(20, 0.3, seed=5)
        csr = CSRGraph.from_graph(graph)
        seen = set()
        for u, v in graph.edges():
            i, j = csr.node_id(u), csr.node_id(v)
            e = csr.edge_id(i, j)
            assert e == csr.edge_id(j, i)
            seen.add(e)
        assert seen == set(range(csr.number_of_edges()))

    def test_edge_endpoints_ordered(self):
        csr = CSRGraph.from_graph(erdos_renyi_graph(20, 0.3, seed=6))
        for e in range(csr.number_of_edges()):
            u, v = csr.edge_endpoint_ids(e)
            assert u < v
            assert csr.edge_id(u, v) == e

    def test_edge_keys_match_dict_graph(self):
        graph = erdos_renyi_graph(20, 0.25, seed=7)
        csr = CSRGraph.from_graph(graph)
        assert set(csr.edge_keys()) == graph.edge_set()
        assert set(csr.edges()) == graph.edge_set()

    def test_missing_edge_raises(self):
        csr = CSRGraph.from_graph(UndirectedGraph([(0, 1), (1, 2)]))
        with pytest.raises(EdgeNotFoundError):
            csr.edge_id(csr.node_id(0), csr.node_id(2))

    def test_edge_key_of_uses_canonical_order(self):
        graph = UndirectedGraph([("b", "a")])
        csr = CSRGraph.from_graph(graph)
        assert csr.edge_key_of(0) == edge_key("a", "b")


class TestApplyDeltaValidation:
    """Non-normalized deltas must be rejected, not silently mis-applied."""

    def _csr(self):
        return CSRGraph.from_graph(UndirectedGraph([(0, 1), (1, 2), (0, 2), (2, 3)]))

    def test_empty_delta_shares_snapshot(self):
        csr = self._csr()
        patch = csr.apply_delta(GraphDelta())
        assert patch.csr is csr
        assert patch.edge_origin.tolist() == list(range(csr.number_of_edges()))

    def test_remove_missing_edge_rejected(self):
        with pytest.raises(EdgeNotFoundError):
            self._csr().apply_delta(GraphDelta(removed_edges=[(0, 3)]))

    def test_add_present_edge_rejected(self):
        with pytest.raises(GraphError):
            self._csr().apply_delta(GraphDelta(added_edges=[(0, 1)]))

    def test_add_present_node_rejected(self):
        with pytest.raises(GraphError):
            self._csr().apply_delta(GraphDelta(added_nodes=[2]))

    def test_remove_missing_node_rejected(self):
        with pytest.raises(NodeNotFoundError):
            self._csr().apply_delta(GraphDelta(removed_nodes=[99]))

    def test_implicit_incident_edge_removal_rejected(self):
        """Removing a node without listing its incident edges is an error."""
        with pytest.raises(GraphError):
            self._csr().apply_delta(
                GraphDelta(removed_nodes=[2], removed_edges=[(2, 3)])
            )

    def test_edge_to_missing_endpoint_rejected(self):
        with pytest.raises(NodeNotFoundError):
            self._csr().apply_delta(GraphDelta(added_edges=[(0, 77)]))

    def test_edge_origin_tracks_renumbering(self):
        csr = self._csr()
        patch = csr.apply_delta(GraphDelta(removed_edges=[(0, 1)]))
        new = patch.csr
        assert patch.removed_edge_ids.tolist() == [csr.edge_id(0, 1)]
        for e in range(new.number_of_edges()):
            origin = int(patch.edge_origin[e])
            assert origin >= 0
            assert new.edge_key_of(e) == csr.edge_key_of(origin)


class TestEdgeSubgraph:
    def test_matches_from_graph_of_thawed_subset(self):
        import numpy as np

        graph = erdos_renyi_graph(18, 0.4, seed=5)
        csr = CSRGraph.from_graph(graph)
        subset = [e for e in range(csr.number_of_edges()) if e % 3 != 0]
        sub = csr.edge_subgraph(subset)
        expected_graph = UndirectedGraph()
        for e in subset:
            u, v = csr.edge_endpoint_ids(e)
            expected_graph.add_edge(csr.node_label(u), csr.node_label(v))
        expected = CSRGraph.from_graph(expected_graph)
        assert sub.csr.labels() == expected.labels()
        for name in ("indptr", "indices", "slot_edge", "edge_u", "edge_v"):
            assert np.array_equal(getattr(sub.csr, name), getattr(expected, name)), name

    def test_origin_arrays_map_back_to_parent(self):
        csr = CSRGraph.from_graph(complete_graph(5))
        sub = csr.edge_subgraph([0, 4, 7])
        for new_edge, old_edge in enumerate(sub.edge_origin.tolist()):
            assert sub.csr.edge_key_of(new_edge) == csr.edge_key_of(old_edge)
        for new_node, old_node in enumerate(sub.node_origin.tolist()):
            assert sub.csr.node_label(new_node) == csr.node_label(old_node)

    def test_include_node_ids_keeps_isolated_nodes(self):
        csr = CSRGraph.from_graph(complete_graph(4))
        sub = csr.edge_subgraph([0], include_node_ids=[3])
        assert sub.csr.number_of_edges() == 1
        assert csr.node_label(3) in sub.csr
        assert sub.csr.degree(sub.csr.node_id(csr.node_label(3))) == 0

    def test_empty_edge_set(self):
        csr = CSRGraph.from_graph(complete_graph(3))
        sub = csr.edge_subgraph([])
        assert sub.csr.number_of_nodes() == 0
        assert sub.csr.number_of_edges() == 0

    def test_duplicate_ids_tolerated(self):
        csr = CSRGraph.from_graph(complete_graph(4))
        assert csr.edge_subgraph([1, 1, 2, 2]).csr.number_of_edges() == 2

    def test_out_of_range_rejected(self):
        csr = CSRGraph.from_graph(complete_graph(3))
        with pytest.raises(GraphError):
            csr.edge_subgraph([99])
        with pytest.raises(GraphError):
            csr.edge_subgraph([0], include_node_ids=[99])
