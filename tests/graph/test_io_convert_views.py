"""Unit tests for graph I/O, networkx conversion and deletion views."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph.convert import from_networkx, networkx_available, to_networkx
from repro.graph.generators import complete_graph, path_graph
from repro.graph.io import (
    graph_from_edge_list_text,
    graph_to_edge_list_text,
    read_communities,
    read_edge_list,
    write_communities,
    write_edge_list,
)
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.views import DeletionView, filter_edges_by, induced_subgraph


class TestEdgeListRoundTrip:
    def test_text_round_trip(self):
        graph = UndirectedGraph([(1, 2), (2, 3)])
        graph.add_node(7)
        text = graph_to_edge_list_text(graph)
        restored = graph_from_edge_list_text(text, node_type=int)
        assert restored == graph

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\n1 2\n2 3\n"
        graph = graph_from_edge_list_text(text, node_type=int)
        assert graph.number_of_edges() == 2

    def test_self_loops_dropped(self):
        graph = graph_from_edge_list_text("1 1\n1 2\n", node_type=int)
        assert graph.number_of_edges() == 1

    def test_file_round_trip(self, tmp_path):
        graph = complete_graph(4)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        restored = read_edge_list(path, node_type=int)
        assert restored == graph

    def test_community_file_round_trip(self, tmp_path):
        communities = [{1, 2, 3}, {4, 5}]
        path = tmp_path / "communities.txt"
        write_communities(communities, path)
        restored = read_communities(path, node_type=int)
        assert sorted(map(sorted, restored)) == [[1, 2, 3], [4, 5]]

    def test_empty_graph_round_trip(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_edge_list(UndirectedGraph(), path)
        assert read_edge_list(path).number_of_nodes() == 0


@pytest.mark.skipif(not networkx_available(), reason="networkx not installed")
class TestNetworkxConversion:
    def test_round_trip(self, random_graph):
        converted = from_networkx(to_networkx(random_graph))
        assert converted == random_graph

    def test_from_networkx_drops_self_loops(self):
        import networkx as nx

        graph = nx.Graph([(1, 1), (1, 2)])
        converted = from_networkx(graph)
        assert converted.number_of_edges() == 1


class TestDeletionView:
    def test_node_deletion_hides_edges(self, k4):
        view = DeletionView(k4)
        view.delete_node(0)
        assert not view.has_node(0)
        assert view.number_of_nodes() == 3
        assert view.number_of_edges() == 3
        assert 0 not in set(view.nodes())

    def test_edge_deletion_keeps_endpoints(self, k4):
        view = DeletionView(k4)
        view.delete_edge(0, 1)
        assert view.has_node(0)
        assert not view.has_edge(0, 1)
        assert view.number_of_edges() == 5

    def test_degree_and_neighbors(self, k4):
        view = DeletionView(k4)
        view.delete_node(3)
        assert view.degree(0) == 2
        assert set(view.neighbors(0)) == {1, 2}

    def test_materialize_matches_manual_subgraph(self, k5):
        view = DeletionView(k5)
        view.delete_node(4)
        view.delete_edge(0, 1)
        materialized = view.materialize()
        expected = k5.subgraph([0, 1, 2, 3])
        expected.remove_edge(0, 1)
        assert materialized == expected

    def test_delete_missing_node_raises(self, k4):
        view = DeletionView(k4)
        with pytest.raises(NodeNotFoundError):
            view.delete_node(99)

    def test_base_graph_untouched(self, k4):
        view = DeletionView(k4)
        view.delete_node(0)
        assert k4.number_of_nodes() == 4
        assert k4.number_of_edges() == 6

    def test_len_and_contains(self, k4):
        view = DeletionView(k4)
        assert len(view) == 4
        view.delete_node(1)
        assert 1 not in view
        assert len(view) == 3


class TestSubgraphHelpers:
    def test_induced_subgraph(self, k5):
        sub = induced_subgraph(k5, [0, 1, 2])
        assert sub == complete_graph(3)

    def test_filter_edges_by(self):
        graph = path_graph(5)
        filtered = filter_edges_by(graph, lambda u, v: u + v >= 5)
        assert filtered.edge_set() == {(2, 3), (3, 4)}

    def test_filter_edges_missing_edge_error_not_raised(self, k4):
        filtered = filter_edges_by(k4, lambda u, v: False)
        assert filtered.number_of_edges() == 0
