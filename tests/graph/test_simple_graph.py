"""Unit tests for the UndirectedGraph data structure."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.simple_graph import UndirectedGraph, edge_key


class TestEdgeKey:
    def test_orders_comparable_endpoints(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key(1, 2) == (1, 2)

    def test_orders_string_endpoints(self):
        assert edge_key("b", "a") == ("a", "b")

    def test_mixed_types_are_ordered_by_repr(self):
        key_one = edge_key("x", 1)
        key_two = edge_key(1, "x")
        assert key_one == key_two


class TestConstruction:
    def test_empty_graph(self):
        graph = UndirectedGraph()
        assert graph.number_of_nodes() == 0
        assert graph.number_of_edges() == 0
        assert list(graph.nodes()) == []
        assert list(graph.edges()) == []

    def test_from_edges(self):
        graph = UndirectedGraph([(1, 2), (2, 3)])
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2

    def test_from_adjacency_keeps_isolated_nodes(self):
        graph = UndirectedGraph.from_adjacency({1: [2], 2: [1], 3: []})
        assert graph.has_node(3)
        assert graph.degree(3) == 0
        assert graph.number_of_edges() == 1

    def test_copy_is_independent(self):
        graph = UndirectedGraph([(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert not graph.has_node(3)
        assert clone.number_of_edges() == 2
        assert graph.number_of_edges() == 1


class TestNodes:
    def test_add_node_idempotent(self):
        graph = UndirectedGraph()
        graph.add_node("a")
        graph.add_node("a")
        assert graph.number_of_nodes() == 1

    def test_remove_node_removes_incident_edges(self):
        graph = UndirectedGraph([(1, 2), (1, 3), (2, 3)])
        graph.remove_node(1)
        assert graph.number_of_edges() == 1
        assert not graph.has_edge(1, 2)
        assert graph.has_edge(2, 3)

    def test_remove_missing_node_raises(self):
        graph = UndirectedGraph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node(42)

    def test_remove_nodes_from_ignores_missing(self):
        graph = UndirectedGraph([(1, 2)])
        graph.remove_nodes_from([2, 99])
        assert graph.node_set() == {1}

    def test_contains_and_iter(self):
        graph = UndirectedGraph([(1, 2)])
        assert 1 in graph
        assert 3 not in graph
        assert sorted(graph) == [1, 2]
        assert len(graph) == 2


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        graph = UndirectedGraph()
        graph.add_edge("x", "y")
        assert graph.has_node("x")
        assert graph.has_node("y")
        assert graph.has_edge("y", "x")

    def test_add_duplicate_edge_is_noop(self):
        graph = UndirectedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.number_of_edges() == 1

    def test_self_loop_rejected(self):
        graph = UndirectedGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_remove_edge(self):
        graph = UndirectedGraph([(1, 2), (2, 3)])
        graph.remove_edge(2, 1)
        assert not graph.has_edge(1, 2)
        assert graph.has_node(1)
        assert graph.number_of_edges() == 1

    def test_remove_missing_edge_raises(self):
        graph = UndirectedGraph([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 3)

    def test_remove_edges_from_ignores_missing(self):
        graph = UndirectedGraph([(1, 2), (2, 3)])
        graph.remove_edges_from([(1, 2), (5, 6)])
        assert graph.number_of_edges() == 1

    def test_edges_iterates_each_once(self):
        graph = UndirectedGraph([(1, 2), (2, 3), (1, 3)])
        edges = list(graph.edges())
        assert len(edges) == 3
        assert len(set(edges)) == 3

    def test_edge_count_consistent_after_mixed_operations(self):
        graph = UndirectedGraph()
        for index in range(10):
            graph.add_edge(index, index + 1)
        graph.remove_node(5)
        assert graph.number_of_edges() == len(list(graph.edges()))


class TestAdjacency:
    def test_neighbors_and_degree(self):
        graph = UndirectedGraph([(1, 2), (1, 3)])
        assert graph.neighbors(1) == {2, 3}
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1

    def test_neighbors_missing_node_raises(self):
        graph = UndirectedGraph()
        with pytest.raises(NodeNotFoundError):
            graph.neighbors(0)

    def test_common_neighbors(self):
        graph = UndirectedGraph([(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)])
        assert graph.common_neighbors(2, 3) == {1, 4}
        assert graph.common_neighbors(1, 4) == {2, 3}

    def test_degrees_and_max_degree(self):
        graph = UndirectedGraph([(1, 2), (1, 3), (1, 4)])
        assert graph.degrees() == {1: 3, 2: 1, 3: 1, 4: 1}
        assert graph.max_degree() == 3
        assert UndirectedGraph().max_degree() == 0


class TestSubgraphs:
    def test_induced_subgraph(self):
        graph = UndirectedGraph([(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.node_set() == {1, 2, 3}
        assert sub.edge_set() == {(1, 2), (2, 3)}

    def test_subgraph_ignores_unknown_nodes(self):
        graph = UndirectedGraph([(1, 2)])
        sub = graph.subgraph([1, 2, 99])
        assert sub.node_set() == {1, 2}

    def test_subgraph_does_not_alias_parent(self):
        graph = UndirectedGraph([(1, 2), (2, 3)])
        sub = graph.subgraph([1, 2])
        sub.add_edge(1, 5)
        assert not graph.has_node(5)

    def test_edge_subgraph(self):
        graph = UndirectedGraph([(1, 2), (2, 3), (3, 1)])
        sub = graph.edge_subgraph([(1, 2), (2, 3)])
        assert sub.edge_set() == {(1, 2), (2, 3)}

    def test_edge_subgraph_missing_edge_raises(self):
        graph = UndirectedGraph([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            graph.edge_subgraph([(1, 3)])


class TestEqualityAndRepr:
    def test_equality_by_structure(self):
        first = UndirectedGraph([(1, 2), (2, 3)])
        second = UndirectedGraph([(2, 3), (1, 2)])
        assert first == second

    def test_inequality(self):
        assert UndirectedGraph([(1, 2)]) != UndirectedGraph([(1, 3)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(UndirectedGraph())

    def test_repr_mentions_counts(self):
        graph = UndirectedGraph([(1, 2)])
        assert "nodes=2" in repr(graph)
        assert "edges=1" in repr(graph)
