"""Unit tests for connected components and the union-find helper."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.components import (
    UnionFind,
    component_count,
    connected_component_containing,
    connected_components,
    is_connected,
    largest_component,
    nodes_are_connected,
)
from repro.graph.generators import complete_graph, path_graph
from repro.graph.simple_graph import UndirectedGraph


class TestConnectedComponents:
    def test_single_component(self):
        graph = path_graph(4)
        assert connected_components(graph) == [{0, 1, 2, 3}]

    def test_multiple_components(self):
        graph = UndirectedGraph([(1, 2), (3, 4), (4, 5)])
        graph.add_node(9)
        components = connected_components(graph)
        assert sorted(map(len, components)) == [1, 2, 3]

    def test_component_count(self):
        graph = UndirectedGraph([(1, 2), (3, 4)])
        assert component_count(graph) == 2

    def test_largest_component(self):
        graph = UndirectedGraph([(1, 2), (3, 4), (4, 5)])
        assert largest_component(graph) == {3, 4, 5}

    def test_largest_component_empty_graph(self):
        assert largest_component(UndirectedGraph()) == set()

    def test_component_containing(self):
        graph = UndirectedGraph([(1, 2), (3, 4)])
        assert connected_component_containing(graph, 3) == {3, 4}

    def test_component_containing_missing_node(self):
        with pytest.raises(NodeNotFoundError):
            connected_component_containing(UndirectedGraph(), 1)


class TestIsConnected:
    def test_empty_and_singleton_connected(self):
        assert is_connected(UndirectedGraph())
        single = UndirectedGraph()
        single.add_node(1)
        assert is_connected(single)

    def test_connected_graph(self):
        assert is_connected(complete_graph(5))

    def test_disconnected_graph(self):
        assert not is_connected(UndirectedGraph([(1, 2), (3, 4)]))


class TestNodesAreConnected:
    def test_connected_query(self):
        graph = path_graph(5)
        assert nodes_are_connected(graph, [0, 4])

    def test_disconnected_query(self):
        graph = UndirectedGraph([(1, 2), (3, 4)])
        assert not nodes_are_connected(graph, [1, 3])

    def test_missing_node_means_not_connected(self):
        graph = path_graph(3)
        assert not nodes_are_connected(graph, [0, 99])

    def test_empty_and_singleton_queries(self):
        graph = path_graph(3)
        assert nodes_are_connected(graph, [])
        assert nodes_are_connected(graph, [1])

    def test_duplicates_ignored(self):
        graph = path_graph(3)
        assert nodes_are_connected(graph, [0, 0, 2])


class TestUnionFind:
    def test_union_and_find(self):
        union_find = UnionFind([1, 2, 3, 4])
        assert union_find.union(1, 2)
        assert union_find.union(3, 4)
        assert union_find.connected(1, 2)
        assert not union_find.connected(1, 3)
        assert union_find.union(2, 3)
        assert union_find.connected(1, 4)

    def test_union_same_set_returns_false(self):
        union_find = UnionFind()
        union_find.union("a", "b")
        assert not union_find.union("a", "b")

    def test_find_adds_unknown_elements(self):
        union_find = UnionFind()
        assert union_find.find("new") == "new"

    def test_groups_partition_elements(self):
        union_find = UnionFind(range(6))
        union_find.union(0, 1)
        union_find.union(2, 3)
        union_find.union(3, 4)
        groups = union_find.groups()
        assert sorted(sorted(group) for group in groups) == [[0, 1], [2, 3, 4], [5]]
