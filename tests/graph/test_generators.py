"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.graph.components import is_connected
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    connect_components,
    cycle_graph,
    erdos_renyi_graph,
    overlapping_community_graph,
    path_graph,
    planted_partition_graph,
    random_regular_ish_graph,
    relaxed_caveman_graph,
    star_graph,
)
from repro.graph.simple_graph import UndirectedGraph


class TestDeterministicGenerators:
    def test_complete_graph(self):
        graph = complete_graph(6)
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 15

    def test_complete_graph_offset(self):
        graph = complete_graph(3, offset=10)
        assert graph.node_set() == {10, 11, 12}

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.number_of_edges() == 5
        assert all(graph.degree(node) == 2 for node in graph.nodes())

    def test_cycle_too_small_raises(self):
        with pytest.raises(ConfigurationError):
            cycle_graph(2)

    def test_path_and_star(self):
        assert path_graph(1).number_of_nodes() == 1
        assert path_graph(5).number_of_edges() == 4
        star = star_graph(7)
        assert star.degree(0) == 7
        assert star.number_of_edges() == 7


class TestRandomGenerators:
    def test_erdos_renyi_reproducible(self):
        first = erdos_renyi_graph(30, 0.2, seed=3)
        second = erdos_renyi_graph(30, 0.2, seed=3)
        assert first == second

    def test_erdos_renyi_different_seeds_differ(self):
        assert erdos_renyi_graph(30, 0.2, seed=1) != erdos_renyi_graph(30, 0.2, seed=2)

    def test_erdos_renyi_extreme_probabilities(self):
        assert erdos_renyi_graph(10, 0.0, seed=0).number_of_edges() == 0
        assert erdos_renyi_graph(10, 1.0, seed=0).number_of_edges() == 45

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_graph(10, 1.5)

    def test_barabasi_albert_degrees(self):
        graph = barabasi_albert_graph(100, 3, seed=1)
        assert graph.number_of_nodes() == 100
        # Every late node attaches with exactly 3 edges.
        assert graph.number_of_edges() >= 3 * (100 - 4)
        assert min(graph.degree(node) for node in graph.nodes()) >= 3

    def test_barabasi_albert_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(5, 5)

    def test_relaxed_caveman(self):
        graph = relaxed_caveman_graph(4, 5, 0.1, seed=2)
        assert graph.number_of_nodes() == 20

    def test_random_regular_ish(self):
        graph = random_regular_ish_graph(40, 4, seed=0)
        assert graph.number_of_nodes() == 40
        assert all(graph.degree(node) <= 4 for node in graph.nodes())

    def test_random_regular_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            random_regular_ish_graph(5, 6)


class TestCommunityGenerators:
    def test_planted_partition_ground_truth(self):
        graph, groups = planted_partition_graph(4, 10, p_in=0.8, p_out=0.02, seed=1)
        assert graph.number_of_nodes() == 40
        assert len(groups) == 4
        assert all(len(group) == 10 for group in groups)

    def test_planted_partition_invalid_probabilities(self):
        with pytest.raises(ConfigurationError):
            planted_partition_graph(2, 5, p_in=0.1, p_out=0.5)

    def test_overlapping_communities_cover_graph(self):
        graph, communities = overlapping_community_graph(
            num_nodes=120,
            num_communities=10,
            community_size_range=(8, 15),
            p_in=0.6,
            seed=4,
        )
        assert graph.number_of_nodes() == 120
        assert is_connected(graph)
        covered = set().union(*communities)
        assert covered <= set(graph.nodes())
        assert len(communities) == 10

    def test_overlapping_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            overlapping_community_graph(50, 5, (2, 4))


class TestConnectComponents:
    def test_connects_disconnected_graph(self):
        graph = UndirectedGraph([(1, 2), (3, 4), (5, 6)])
        added = connect_components(graph)
        assert added == 2
        assert is_connected(graph)

    def test_noop_on_connected_graph(self):
        graph = path_graph(5)
        assert connect_components(graph) == 0
