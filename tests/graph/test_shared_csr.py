"""Tests for shared-memory CSR export (:mod:`repro.graph.shm`).

The process-mode serving layer ships frozen snapshot buffers to worker
processes through :class:`SharedArrayBundle`; these tests pin the ownership
contract (create → attach → unlink), the zero-copy property, and the
round-trip equality :meth:`CSRGraph.from_shared` relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import CTCEngine
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi_graph
from repro.graph.shm import SharedArrayBundle
from repro.graph.simple_graph import UndirectedGraph


@pytest.fixture
def csr():
    return CSRGraph.from_graph(erdos_renyi_graph(30, 0.2, seed=7))


class TestSharedArrayBundle:
    def test_roundtrip_values_and_objects(self):
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 5),
        }
        with SharedArrayBundle.create("repro_test_rt", arrays, {"tag": "x"}) as owner:
            attached = SharedArrayBundle.attach(owner.meta)
            try:
                np.testing.assert_array_equal(attached["a"], arrays["a"])
                np.testing.assert_array_equal(attached["b"], arrays["b"])
                assert attached.objects == {"tag": "x"}
                assert attached.array_names() == ["a", "b"]
                assert "a" in attached and "missing" not in attached
            finally:
                attached.close()

    def test_attached_views_share_pages_with_owner(self):
        arrays = {"a": np.zeros(8, dtype=np.int64)}
        with SharedArrayBundle.create("repro_test_zc", arrays) as owner:
            attached = SharedArrayBundle.attach(owner.meta)
            try:
                owner["a"][3] = 42  # owner views stay writable
                assert attached["a"][3] == 42  # same physical pages, no copy
            finally:
                attached.close()

    def test_attached_views_are_read_only(self):
        with SharedArrayBundle.create(
            "repro_test_ro", {"a": np.arange(4, dtype=np.int64)}
        ) as owner:
            attached = SharedArrayBundle.attach(owner.meta)
            try:
                with pytest.raises(ValueError):
                    attached["a"][0] = 99
            finally:
                attached.close()

    def test_unlink_then_attach_fails(self):
        owner = SharedArrayBundle.create(
            "repro_test_ul", {"a": np.arange(4, dtype=np.int64)}
        )
        meta = owner.meta
        owner.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArrayBundle.attach(meta)

    def test_only_owner_may_unlink(self):
        with SharedArrayBundle.create(
            "repro_test_own", {"a": np.arange(4, dtype=np.int64)}
        ) as owner:
            attached = SharedArrayBundle.attach(owner.meta)
            try:
                with pytest.raises(ValueError):
                    attached.unlink()
            finally:
                attached.close()

    def test_zero_size_arrays_survive(self):
        with SharedArrayBundle.create(
            "repro_test_z", {"empty": np.empty(0, dtype=np.int64)}
        ) as owner:
            attached = SharedArrayBundle.attach(owner.meta)
            try:
                assert attached["empty"].size == 0
                assert attached["empty"].dtype == np.int64
            finally:
                attached.close()

    def test_close_is_idempotent(self):
        owner = SharedArrayBundle.create(
            "repro_test_ci", {"a": np.arange(4, dtype=np.int64)}
        )
        owner.close()
        owner.close()
        owner.unlink()


class TestCSRSharedRoundtrip:
    def test_from_shared_reproduces_the_graph(self, csr):
        with csr.to_shared("repro_test_csr") as bundle:
            clone = CSRGraph.from_shared(bundle)
            assert clone.number_of_nodes() == csr.number_of_nodes()
            assert clone.number_of_edges() == csr.number_of_edges()
            np.testing.assert_array_equal(clone.indptr, csr.indptr)
            np.testing.assert_array_equal(clone.indices, csr.indices)
            np.testing.assert_array_equal(clone.edge_u, csr.edge_u)
            np.testing.assert_array_equal(clone.edge_v, csr.edge_v)
            assert clone.to_graph() == csr.to_graph()

    def test_from_shared_is_zero_copy(self, csr):
        with csr.to_shared("repro_test_csrz") as bundle:
            clone = CSRGraph.from_shared(bundle)
            for name in ("indptr", "indices", "edge_u", "edge_v"):
                assert np.shares_memory(getattr(clone, name), bundle[name])

    def test_from_shared_preserves_labels(self):
        graph = UndirectedGraph()
        graph.add_edge("alpha", "beta")
        graph.add_edge("beta", ("tuple", 3))
        csr = CSRGraph.from_graph(graph)
        with csr.to_shared("repro_test_lbl") as bundle:
            clone = CSRGraph.from_shared(bundle)
            assert clone.to_graph() == graph

    def test_extra_arrays_ride_along(self, csr):
        trussness = np.full(csr.number_of_edges(), 3, dtype=np.int64)
        with csr.to_shared("repro_test_x", extra_arrays={"trussness": trussness}) as b:
            np.testing.assert_array_equal(b["trussness"], trussness)

    def test_extra_array_name_collision_rejected(self, csr):
        with pytest.raises(ValueError):
            csr.to_shared(
                "repro_test_c",
                extra_arrays={"indptr": np.zeros(1, dtype=np.int64)},
            )


class TestEngineFromArrays:
    def test_seeded_engine_answers_like_a_fresh_one(self):
        graph = erdos_renyi_graph(30, 0.25, seed=3)
        fresh = CTCEngine(graph)
        snapshot = fresh.snapshot()
        with snapshot.csr.to_shared(
            "repro_test_seed",
            extra_arrays={"trussness": snapshot.trussness},
        ) as bundle:
            clone_csr = CSRGraph.from_shared(bundle)
            seeded = CTCEngine.from_arrays(clone_csr, bundle["trussness"])
            assert seeded.snapshot().version == 0
            # Seeding skips the decomposition entirely: the first snapshot
            # resolution is a cache hit, not a rebuild.
            assert seeded.stats.full_rebuilds == 0
            assert seeded.stats.hits >= 1
            expected = fresh.query([0, 1], method="lctc", eta=20)
            got = seeded.query([0, 1], method="lctc", eta=20)
            assert frozenset(got.nodes) == frozenset(expected.nodes)
            assert got.trussness == expected.trussness

    def test_seeded_engine_accepts_mutations(self):
        graph = complete_graph(6)
        base = CTCEngine(graph)
        snapshot = base.snapshot()
        with snapshot.csr.to_shared(
            "repro_test_mut", extra_arrays={"trussness": snapshot.trussness}
        ) as bundle:
            seeded = CTCEngine.from_arrays(
                CSRGraph.from_shared(bundle), bundle["trussness"]
            )
            seeded.remove_edge(0, 1)
            oracle = CTCEngine(complete_graph(6))
            oracle.remove_edge(0, 1)
            got = seeded.query([2, 3], method="lctc", eta=20)
            expected = oracle.query([2, 3], method="lctc", eta=20)
            assert frozenset(got.nodes) == frozenset(expected.nodes)
            assert got.trussness == expected.trussness
