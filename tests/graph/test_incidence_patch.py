"""Property-based equivalence: ``patch_incidence`` == fresh enumeration.

The tentpole contract of the incrementally-maintained triangle incidence is
*bit-identity*: for any snapshot and any :class:`~repro.graph.delta.GraphDelta`,
carrying the incidence across ``CSRGraph.apply_delta`` with
:func:`~repro.graph.csr_triangles.patch_incidence` must produce exactly the
arrays ``csr_triangle_incidence(patch.csr)`` would — same triangle rows in
the same order, same supports, same incidence CSR.  The suite drives that
contract across random delta chains (the engine's forward path), inverted
deltas (time-travel backward replay), and FIFO window-expiry streams (the
sliding-window engine's workload), always chaining the *patched* structure
forward so each step also proves the previous output was a valid base.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.csr_triangles import (
    TriangleIncidence,
    csr_triangle_incidence,
    patch_incidence,
)
from repro.graph.delta import GraphDelta
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_graph,
    relaxed_caveman_graph,
)
from repro.graph.simple_graph import UndirectedGraph

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def base_graphs(draw):
    """Random graphs with enough triangles to exercise the patch paths."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    kind = draw(st.sampled_from(["er", "caveman", "complete"]))
    if kind == "er":
        n = draw(st.integers(min_value=4, max_value=25))
        p = draw(st.floats(min_value=0.2, max_value=0.7))
        return erdos_renyi_graph(n, p, seed=seed)
    if kind == "caveman":
        cliques = draw(st.integers(min_value=2, max_value=4))
        size = draw(st.integers(min_value=3, max_value=6))
        rewire = draw(st.floats(min_value=0.0, max_value=0.4))
        return relaxed_caveman_graph(cliques, size, rewire, seed=seed)
    return complete_graph(draw(st.integers(min_value=3, max_value=8)))


mutation_streams = st.lists(
    st.tuples(
        st.sampled_from(["add_edge", "remove_edge", "remove_node", "add_node"]),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=12,
)


def _next_delta(graph, op, pick):
    """Mutate ``graph`` per ``(op, pick)`` and return the normalized delta.

    Mirrors what the engine's mutation methods record; returns ``None``
    when the drawn operation is a no-op on the current graph.
    """
    nodes = sorted(graph.nodes())
    if op == "add_edge":
        absent = [
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1:]
            if not graph.has_edge(u, v)
        ]
        absent.append((nodes[pick % len(nodes)], max(nodes) + 1 + pick % 7))
        u, v = absent[pick % len(absent)]
        added_nodes = [x for x in (u, v) if not graph.has_node(x)]
        graph.add_edge(u, v)
        return GraphDelta(added_nodes=added_nodes, added_edges=[(u, v)])
    if op == "remove_edge":
        edges = sorted(graph.edges())
        if not edges:
            return None
        u, v = edges[pick % len(edges)]
        graph.remove_edge(u, v)
        return GraphDelta(removed_edges=[(u, v)])
    if op == "remove_node":
        if len(nodes) <= 2:
            return None
        node = nodes[pick % len(nodes)]
        incident = [(node, other) for other in graph.neighbors(node)]
        graph.remove_node(node)
        return GraphDelta(removed_nodes=[node], removed_edges=incident)
    node = max(nodes) + 500 + pick % 13
    graph.add_node(node)
    return GraphDelta(added_nodes=[node])


def assert_incidence_identical(
    patched: TriangleIncidence, fresh: TriangleIncidence
) -> None:
    """Bit-identity over every array the structure is made of."""
    assert patched.num_triangles == fresh.num_triangles
    assert patched.edges.dtype == fresh.edges.dtype
    assert np.array_equal(patched.edges, fresh.edges)
    assert np.array_equal(patched.supports, fresh.supports)
    assert np.array_equal(patched.inc_indptr, fresh.inc_indptr)
    assert np.array_equal(patched.inc_triangles, fresh.inc_triangles)


class TestForwardChains:
    @common_settings
    @given(graph=base_graphs(), stream=mutation_streams)
    def test_patched_incidence_is_bit_identical_along_chains(self, graph, stream):
        """Each patched structure == fresh enumeration, then becomes the base."""
        csr = CSRGraph.from_graph(graph)
        incidence = csr_triangle_incidence(csr)
        for op, pick in stream:
            delta = _next_delta(graph, op, pick)
            if delta is None:
                continue
            patch = csr.apply_delta(delta)
            incidence = patch_incidence(incidence, patch)
            csr = patch.csr
            assert_incidence_identical(incidence, csr_triangle_incidence(csr))

    @common_settings
    @given(graph=base_graphs(), stream=mutation_streams)
    def test_patched_supports_feed_truss_invariants(self, graph, stream):
        """The patched incidence keeps the structural invariants intact."""
        csr = CSRGraph.from_graph(graph)
        incidence = csr_triangle_incidence(csr)
        for op, pick in stream:
            delta = _next_delta(graph, op, pick)
            if delta is None:
                continue
            patch = csr.apply_delta(delta)
            incidence = patch_incidence(incidence, patch)
            csr = patch.csr
            num_edges = csr.number_of_edges()
            assert incidence.supports.shape == (num_edges,)
            assert incidence.inc_indptr.shape == (num_edges + 1,)
            assert np.array_equal(np.diff(incidence.inc_indptr), incidence.supports)
            if incidence.num_triangles:
                assert np.array_equal(
                    np.bincount(
                        incidence.inc_triangles, minlength=incidence.num_triangles
                    ),
                    np.full(incidence.num_triangles, 3),
                )

    def test_empty_delta_returns_the_same_structure(self):
        graph = complete_graph(6)
        csr = CSRGraph.from_graph(graph)
        incidence = csr_triangle_incidence(csr)
        patch = csr.apply_delta(GraphDelta())
        assert patch_incidence(incidence, patch) is incidence


class TestInvertedDeltas:
    @common_settings
    @given(graph=base_graphs(), stream=mutation_streams)
    def test_backward_replay_restores_the_original_arrays(self, graph, stream):
        """Patching by ``delta.inverted()`` is the time-travel read path."""
        csr = CSRGraph.from_graph(graph)
        origin = csr_triangle_incidence(csr)
        incidence = origin
        deltas = []
        for op, pick in stream:
            delta = _next_delta(graph, op, pick)
            if delta is None:
                continue
            deltas.append(delta)
            patch = csr.apply_delta(delta)
            incidence = patch_incidence(incidence, patch)
            csr = patch.csr
        for delta in reversed(deltas):
            patch = csr.apply_delta(delta.inverted())
            incidence = patch_incidence(incidence, patch)
            csr = patch.csr
            assert_incidence_identical(incidence, csr_triangle_incidence(csr))
        # Fully unwound: bit-identical to the enumeration we started from.
        assert_incidence_identical(incidence, origin)


class TestWindowExpiryStreams:
    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_nodes=st.integers(min_value=8, max_value=20),
        density=st.floats(min_value=0.25, max_value=0.6),
    )
    def test_fifo_expiry_deltas_stay_bit_identical(self, seed, num_nodes, density):
        """The sliding-window workload: each arrival expels the oldest edges."""
        population = sorted(
            erdos_renyi_graph(num_nodes, density, seed=seed).edges(), key=repr
        )
        if len(population) < 4:
            return
        window = max(3, 2 * len(population) // 3)
        graph = UndirectedGraph()
        fifo: list[tuple] = []
        csr = CSRGraph.from_graph(graph)
        incidence = csr_triangle_incidence(csr)
        for u, v in population:
            added_nodes = [x for x in (u, v) if not graph.has_node(x)]
            graph.add_edge(u, v)
            fifo.append((u, v))
            removed_edges = []
            removed_nodes = []
            while len(fifo) > window:
                old_u, old_v = fifo.pop(0)
                graph.remove_edge(old_u, old_v)
                removed_edges.append((old_u, old_v))
                # Mirror SlidingWindowEngine: isolated endpoints expire too.
                for node in (old_u, old_v):
                    if graph.has_node(node) and graph.degree(node) == 0:
                        graph.remove_node(node)
                        removed_nodes.append(node)
            delta = GraphDelta(
                added_nodes=added_nodes,
                added_edges=[(u, v)],
                removed_edges=removed_edges,
                removed_nodes=removed_nodes,
            )
            patch = csr.apply_delta(delta)
            incidence = patch_incidence(incidence, patch)
            csr = patch.csr
            assert_incidence_identical(incidence, csr_triangle_incidence(csr))
