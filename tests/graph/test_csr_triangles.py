"""Tests for the vectorized triangle enumerator (:mod:`repro.graph.csr_triangles`).

The contract is exactness against the dict-path primitives: the enumerated
triangle set equals :func:`iter_triangles`, the bincount supports equal
:func:`all_edge_supports`, and restricting an incidence structure to an edge
subset equals enumerating the edge subgraph from scratch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.csr_triangles import (
    csr_triangle_incidence,
    subset_incidence,
    triangle_nodes,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    relaxed_caveman_graph,
    star_graph,
)
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.triangles import all_edge_supports, iter_triangles

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def generator_graphs(draw):
    """Random graphs from the library's generators plus deterministic classics."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    kind = draw(st.sampled_from(["er", "ba", "caveman", "complete", "cycle", "star"]))
    if kind == "er":
        n = draw(st.integers(min_value=2, max_value=40))
        p = draw(st.floats(min_value=0.05, max_value=0.6))
        return erdos_renyi_graph(n, p, seed=seed)
    if kind == "ba":
        n = draw(st.integers(min_value=5, max_value=40))
        m = draw(st.integers(min_value=1, max_value=4))
        return barabasi_albert_graph(n, m, seed=seed)
    if kind == "caveman":
        cliques = draw(st.integers(min_value=2, max_value=5))
        size = draw(st.integers(min_value=3, max_value=7))
        rewire = draw(st.floats(min_value=0.0, max_value=0.4))
        return relaxed_caveman_graph(cliques, size, rewire, seed=seed)
    if kind == "complete":
        return complete_graph(draw(st.integers(min_value=1, max_value=10)))
    if kind == "cycle":
        return cycle_graph(draw(st.integers(min_value=3, max_value=12)))
    return star_graph(draw(st.integers(min_value=1, max_value=12)))


def _triangle_label_set(csr: CSRGraph, triples: np.ndarray) -> set[tuple]:
    return {
        tuple(sorted((repr(csr.node_label(u)), repr(csr.node_label(v)), repr(csr.node_label(w)))))
        for u, v, w in triples.tolist()
    }


class TestEnumeration:
    @common_settings
    @given(graph=generator_graphs())
    def test_triangle_set_matches_iter_triangles(self, graph):
        """Every triangle exactly once, equal to the dict-path enumerator."""
        csr = CSRGraph.from_graph(graph)
        triples = triangle_nodes(csr)
        want = {
            tuple(sorted((repr(u), repr(v), repr(w)))) for u, v, w in iter_triangles(graph)
        }
        assert len(triples) == len(want)
        assert _triangle_label_set(csr, triples) == want

    @common_settings
    @given(graph=generator_graphs())
    def test_supports_match_dict_path(self, graph):
        """Bincount supports equal the compact-forward dict supports."""
        csr = CSRGraph.from_graph(graph)
        incidence = csr_triangle_incidence(csr)
        want = all_edge_supports(graph)
        assert {
            csr.edge_key_of(e): int(incidence.supports[e])
            for e in range(csr.number_of_edges())
        } == want

    @common_settings
    @given(graph=generator_graphs())
    def test_incidence_structure_invariants(self, graph):
        """Incidence CSR is consistent with the triangle array."""
        csr = CSRGraph.from_graph(graph)
        incidence = csr_triangle_incidence(csr)
        num_edges = csr.number_of_edges()
        num_triangles = incidence.num_triangles
        assert incidence.edges.shape == (num_triangles, 3)
        assert incidence.inc_indptr.shape == (num_edges + 1,)
        assert incidence.inc_triangles.shape == (3 * num_triangles,)
        # Per-edge incidence degree is exactly the edge's support.
        assert np.array_equal(np.diff(incidence.inc_indptr), incidence.supports)
        # Each triangle appears exactly three times across the incidence lists.
        if num_triangles:
            assert np.array_equal(
                np.bincount(incidence.inc_triangles, minlength=num_triangles),
                np.full(num_triangles, 3),
            )
        # Triangle corners are three distinct edges whose endpoints nest as
        # (u, v), (u, w), (v, w) with u < v < w.
        for e_uv, e_uw, e_vw in incidence.edges.tolist():
            u, v = int(csr.edge_u[e_uv]), int(csr.edge_v[e_uv])
            assert int(csr.edge_u[e_uw]) == u
            assert int(csr.edge_u[e_vw]) == v
            w = int(csr.edge_v[e_uw])
            assert int(csr.edge_v[e_vw]) == w
            assert u < v < w
        # Incidence lists point back to triangles containing the edge.
        for edge in range(num_edges):
            start, stop = int(incidence.inc_indptr[edge]), int(incidence.inc_indptr[edge + 1])
            for triangle in incidence.inc_triangles[start:stop].tolist():
                assert edge in incidence.edges[triangle].tolist()

    @common_settings
    @given(graph=generator_graphs(), budget=st.integers(min_value=1, max_value=64))
    def test_candidate_budget_batching_is_invisible(self, graph, budget):
        """Any batch budget yields the same triangles and supports."""
        csr = CSRGraph.from_graph(graph)
        full = csr_triangle_incidence(csr)
        batched = csr_triangle_incidence(csr, candidate_budget=budget)
        assert np.array_equal(full.supports, batched.supports)
        assert {tuple(row) for row in full.edges.tolist()} == {
            tuple(row) for row in batched.edges.tolist()
        }


class TestSubsetIncidence:
    @common_settings
    @given(graph=generator_graphs(), seed=st.integers(min_value=0, max_value=1000))
    def test_subset_equals_fresh_subgraph_enumeration(self, graph, seed):
        """Restricting the incidence == enumerating the edge subgraph."""
        csr = CSRGraph.from_graph(graph)
        num_edges = csr.number_of_edges()
        if num_edges == 0:
            return
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, num_edges + 1))
        selected = np.unique(rng.choice(num_edges, size=size, replace=False))
        sub = csr.edge_subgraph(selected)
        restricted = subset_incidence(csr_triangle_incidence(csr), selected)
        fresh = csr_triangle_incidence(sub.csr)
        assert np.array_equal(restricted.supports, fresh.supports)
        assert {tuple(row) for row in restricted.edges.tolist()} == {
            tuple(row) for row in fresh.edges.tolist()
        }

    def test_empty_selection(self):
        csr = CSRGraph.from_graph(complete_graph(5))
        restricted = subset_incidence(csr_triangle_incidence(csr), np.zeros(0, dtype=np.int64))
        assert restricted.num_triangles == 0
        assert restricted.supports.size == 0


class TestAdversarialCases:
    def test_empty_graph(self):
        incidence = csr_triangle_incidence(CSRGraph.from_graph(UndirectedGraph()))
        assert incidence.num_triangles == 0
        assert incidence.supports.size == 0
        assert incidence.inc_indptr.tolist() == [0]

    def test_isolated_nodes_only(self):
        graph = UndirectedGraph()
        for node in range(4):
            graph.add_node(node)
        incidence = csr_triangle_incidence(CSRGraph.from_graph(graph))
        assert incidence.num_triangles == 0

    @pytest.mark.parametrize(
        "graph,expected_triangles",
        [
            (star_graph(6), 0),  # triangle-free: every edge shares the hub
            (cycle_graph(8), 0),  # triangle-free: girth 8
            (complete_graph(6), 20),  # C(6,3)
        ],
    )
    def test_known_triangle_counts(self, graph, expected_triangles):
        incidence = csr_triangle_incidence(CSRGraph.from_graph(graph))
        assert incidence.num_triangles == expected_triangles
        if expected_triangles == 0:
            assert not incidence.supports.any()

    def test_disconnected_components_enumerate_independently(self):
        graph = UndirectedGraph()
        for offset in (0, 10):  # two disjoint K4s
            for a in range(4):
                for b in range(a + 1, 4):
                    graph.add_edge(offset + a, offset + b)
        csr = CSRGraph.from_graph(graph)
        incidence = csr_triangle_incidence(csr)
        assert incidence.num_triangles == 8  # 4 per K4
        assert set(incidence.supports.tolist()) == {2}
