"""Unit tests for density, degeneracy and arboricity bounds."""

from __future__ import annotations

import pytest

from repro.graph.convert import networkx_available, to_networkx
from repro.graph.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.properties import (
    arboricity_upper_bound,
    average_degree,
    degeneracy,
    degeneracy_ordering,
    degree_histogram,
    edge_density,
    graph_summary,
)
from repro.graph.simple_graph import UndirectedGraph


class TestDensityAndDegrees:
    def test_density_of_complete_graph_is_one(self, k5):
        assert edge_density(k5) == pytest.approx(1.0)

    def test_density_of_empty_and_tiny_graphs(self):
        assert edge_density(UndirectedGraph()) == 0.0
        single = UndirectedGraph()
        single.add_node(1)
        assert edge_density(single) == 0.0

    def test_density_of_path(self):
        graph = path_graph(4)
        assert edge_density(graph) == pytest.approx(2 * 3 / (4 * 3))

    def test_average_degree(self):
        assert average_degree(cycle_graph(6)) == pytest.approx(2.0)
        assert average_degree(UndirectedGraph()) == 0.0

    def test_degree_histogram(self):
        graph = star_graph(4)
        histogram = degree_histogram(graph)
        assert histogram == {4: 1, 1: 4}

    def test_graph_summary_keys(self, k4):
        summary = graph_summary(k4)
        assert summary["nodes"] == 4
        assert summary["edges"] == 6
        assert summary["max_degree"] == 3
        assert summary["density"] == pytest.approx(1.0)


class TestDegeneracy:
    def test_complete_graph_degeneracy(self, k5):
        assert degeneracy(k5) == 4

    def test_tree_degeneracy_is_one(self):
        assert degeneracy(path_graph(10)) == 1
        assert degeneracy(star_graph(10)) == 1

    def test_cycle_degeneracy_is_two(self):
        assert degeneracy(cycle_graph(7)) == 2

    def test_ordering_covers_all_nodes(self, random_graph):
        ordering, _value = degeneracy_ordering(random_graph)
        assert sorted(ordering, key=repr) == sorted(random_graph.nodes(), key=repr)

    def test_empty_graph(self):
        ordering, value = degeneracy_ordering(UndirectedGraph())
        assert ordering == []
        assert value == 0

    @pytest.mark.skipif(not networkx_available(), reason="networkx oracle unavailable")
    def test_matches_networkx_core_number(self, random_graph):
        import networkx as nx

        expected = max(nx.core_number(to_networkx(random_graph)).values())
        assert degeneracy(random_graph) == expected


class TestArboricityBound:
    def test_zero_for_edgeless_graph(self):
        assert arboricity_upper_bound(UndirectedGraph()) == 0

    def test_bound_for_complete_graph(self, k5):
        # True arboricity of K5 is 3; the bound must not be below it.
        assert 3 <= arboricity_upper_bound(k5) <= 4

    def test_bound_for_tree_is_one(self):
        assert arboricity_upper_bound(path_graph(20)) == 1

    def test_bound_never_exceeds_sqrt_m_rule(self, random_graph):
        edge_count = random_graph.number_of_edges()
        assert arboricity_upper_bound(random_graph) <= int(edge_count ** 0.5) + 1
