"""Unit and property tests for the masked frontier BFS (:mod:`repro.graph.csr_bfs`).

The contract under test: for any restriction (edge mask, node mask, row
prefix), the frontier BFS computes exactly the distances a scalar queue BFS
would, ``-1`` marking unreachable; parents arrays recover valid shortest
paths; and in ordered mode the parents reproduce the scalar queue's
first-discovery tie-breaks exactly.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.csr_bfs import (
    csr_diameter,
    fold_query_distance,
    masked_bfs,
    masked_eccentricity,
    masked_query_distances,
    path_from_parents,
)
from repro.graph.generators import erdos_renyi_graph
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import diameter, eccentricity, query_distances

common_settings = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_INF = float("inf")


def _reference_distances(csr: CSRGraph, sources, edge_alive=None, node_alive=None):
    """Scalar queue BFS over the same restriction (the spec)."""
    dist = np.full(csr.number_of_nodes(), -1, dtype=np.int64)
    queue = deque()
    for source in sources:
        dist[source] = 0
        queue.append(int(source))
    indptr, indices, slot_edge = csr.indptr, csr.indices, csr.slot_edge
    while queue:
        node = queue.popleft()
        for slot in range(int(indptr[node]), int(indptr[node + 1])):
            if edge_alive is not None and not edge_alive[slot_edge[slot]]:
                continue
            other = int(indices[slot])
            if node_alive is not None and not node_alive[other]:
                continue
            if dist[other] < 0:
                dist[other] = dist[node] + 1
                queue.append(other)
    return dist


def _graph(seed: int, nodes: int = 18, p: float = 0.3) -> CSRGraph:
    return CSRGraph.from_graph(erdos_renyi_graph(nodes, p, seed=seed))


class TestMaskedBFS:
    @common_settings
    @given(seed=st.integers(0, 300), source=st.integers(0, 17))
    def test_unmasked_matches_scalar_bfs(self, seed, source):
        csr = _graph(seed)
        result = masked_bfs(csr.indptr, csr.indices, [source])
        assert np.array_equal(result.distances, _reference_distances(csr, [source]))

    @common_settings
    @given(seed=st.integers(0, 300), data=st.data())
    def test_edge_mask_matches_scalar_bfs(self, seed, data):
        csr = _graph(seed)
        alive = np.asarray(
            data.draw(
                st.lists(
                    st.booleans(),
                    min_size=csr.number_of_edges(),
                    max_size=csr.number_of_edges(),
                )
            ),
            dtype=bool,
        )
        source = data.draw(st.integers(0, csr.number_of_nodes() - 1))
        result = masked_bfs(
            csr.indptr, csr.indices, [source], slot_edge=csr.slot_edge, edge_alive=alive
        )
        assert np.array_equal(
            result.distances, _reference_distances(csr, [source], edge_alive=alive)
        )

    @common_settings
    @given(seed=st.integers(0, 300), data=st.data())
    def test_node_mask_matches_scalar_bfs(self, seed, data):
        csr = _graph(seed)
        num_nodes = csr.number_of_nodes()
        alive = np.asarray(
            data.draw(st.lists(st.booleans(), min_size=num_nodes, max_size=num_nodes)),
            dtype=bool,
        )
        source = data.draw(st.integers(0, num_nodes - 1))
        alive[source] = True
        result = masked_bfs(csr.indptr, csr.indices, [source], node_alive=alive)
        assert np.array_equal(
            result.distances, _reference_distances(csr, [source], node_alive=alive)
        )

    @common_settings
    @given(seed=st.integers(0, 300), data=st.data())
    def test_multi_source_is_min_over_sources(self, seed, data):
        csr = _graph(seed)
        sources = data.draw(
            st.lists(
                st.integers(0, csr.number_of_nodes() - 1),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        merged = masked_bfs(csr.indptr, csr.indices, sources).distances
        singles = [
            masked_bfs(csr.indptr, csr.indices, [source]).distances
            for source in sources
        ]
        for node in range(csr.number_of_nodes()):
            reachable = [d[node] for d in singles if d[node] >= 0]
            expected = min(reachable) if reachable else -1
            assert merged[node] == expected

    @common_settings
    @given(seed=st.integers(0, 300), source=st.integers(0, 17))
    def test_parents_paths_are_valid_shortest_paths(self, seed, source):
        csr = _graph(seed)
        result = masked_bfs(csr.indptr, csr.indices, [source], track_parents=True)
        assert result.parents[source] == -1
        for node in range(csr.number_of_nodes()):
            if result.distances[node] < 0 or node == source:
                continue
            path = path_from_parents(result.parents, node)
            assert path[0] == source and path[-1] == node
            assert len(path) - 1 == result.distances[node]
            for a, b in zip(path, path[1:]):
                assert csr.has_edge(a, b)

    def test_unreachable_and_isolated_vertices(self):
        graph = UndirectedGraph()
        graph.add_edge("a", "b")
        graph.add_node("c")  # isolated
        csr = CSRGraph.from_graph(graph)
        result = masked_bfs(csr.indptr, csr.indices, [csr.node_id("a")])
        assert result.distances[csr.node_id("b")] == 1
        assert result.distances[csr.node_id("c")] == -1

    def test_empty_and_singleton_graphs(self):
        empty = CSRGraph.from_graph(UndirectedGraph())
        assert masked_bfs(empty.indptr, empty.indices, []).distances.size == 0
        assert csr_diameter(empty) == 0.0
        single = UndirectedGraph()
        single.add_node("only")
        csr = CSRGraph.from_graph(single)
        result = masked_bfs(csr.indptr, csr.indices, [0], track_parents=True)
        assert result.distances.tolist() == [0]
        assert result.parents.tolist() == [-1]
        assert csr_diameter(csr) == 0.0
        assert masked_eccentricity(csr, 0) == 0.0

    def test_no_sources_means_all_unreachable(self):
        csr = _graph(7)
        result = masked_bfs(csr.indptr, csr.indices, [])
        assert (result.distances == -1).all()

    def test_max_depth_truncates(self):
        csr = _graph(11)
        full = masked_bfs(csr.indptr, csr.indices, [0]).distances
        capped = masked_bfs(csr.indptr, csr.indices, [0], max_depth=1).distances
        for node in range(csr.number_of_nodes()):
            if full[node] >= 0 and full[node] <= 1:
                assert capped[node] == full[node]
            else:
                assert capped[node] == -1

    def test_until_reached_stops_early_with_final_targets(self):
        csr = _graph(13)
        reference = masked_bfs(csr.indptr, csr.indices, [0]).distances
        reachable = [n for n in range(csr.number_of_nodes()) if reference[n] == 1]
        result = masked_bfs(csr.indptr, csr.indices, [0], until_reached=reachable[:1])
        assert result.distances[reachable[0]] == 1
        # Distances it did record are never wrong, just possibly absent.
        recorded = result.distances >= 0
        assert np.array_equal(result.distances[recorded], reference[recorded])

    def test_edge_alive_without_slot_edge_rejected(self):
        csr = _graph(3)
        with pytest.raises(ValueError):
            masked_bfs(
                csr.indptr,
                csr.indices,
                [0],
                edge_alive=np.ones(csr.number_of_edges(), dtype=bool),
            )

    @common_settings
    @given(seed=st.integers(0, 300), source=st.integers(0, 17))
    def test_ordered_parents_match_scalar_queue_bfs(self, seed, source):
        """Ordered mode's parents must equal the scalar queue's exactly."""
        csr = _graph(seed)
        parents = np.full(csr.number_of_nodes(), -1, dtype=np.int64)
        dist = np.full(csr.number_of_nodes(), -1, dtype=np.int64)
        dist[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for other in csr.neighbor_ids(node).tolist():
                if dist[other] < 0:
                    dist[other] = dist[node] + 1
                    parents[other] = node
                    queue.append(other)
        result = masked_bfs(
            csr.indptr, csr.indices, [source], track_parents=True, ordered=True
        )
        assert np.array_equal(result.distances, dist)
        assert np.array_equal(result.parents, parents)


class TestReductions:
    @common_settings
    @given(seed=st.integers(0, 300), data=st.data())
    def test_masked_query_distances_match_dict_path(self, seed, data):
        graph = erdos_renyi_graph(16, 0.25, seed=seed)
        csr = CSRGraph.from_graph(graph)
        query = data.draw(
            st.lists(st.integers(0, 15), min_size=1, max_size=4, unique=True)
        )
        maxima = masked_query_distances(csr, [csr.node_id(label) for label in query])
        expected = query_distances(graph, query)
        for label, value in expected.items():
            assert maxima[csr.node_id(label)] == value

    @common_settings
    @given(seed=st.integers(0, 300))
    def test_csr_diameter_and_eccentricity_match_dict_path(self, seed):
        graph = erdos_renyi_graph(15, 0.3, seed=seed)
        csr = CSRGraph.from_graph(graph)
        assert csr_diameter(csr) == diameter(graph)
        for label in list(graph.nodes())[:4]:
            assert masked_eccentricity(csr, csr.node_id(label)) == eccentricity(
                graph, label
            )

    def test_diameter_fast_path_dispatches_on_csr_input(self):
        graph = erdos_renyi_graph(30, 0.2, seed=5)
        csr = CSRGraph.from_graph(graph)
        assert diameter(csr) == diameter(graph)
        some = list(graph.nodes())[:3]
        assert diameter(csr, some) == diameter(graph, some)

    def test_fold_query_distance_accumulates_inf(self):
        maxima = np.zeros(3)
        fold_query_distance(maxima, np.asarray([0, 2, -1], dtype=np.int64))
        assert maxima.tolist() == [0.0, 2.0, _INF]
        fold_query_distance(maxima, np.asarray([1, 1, 1], dtype=np.int64))
        assert maxima.tolist() == [1.0, 2.0, _INF]
