"""Unit tests for BFS traversal, distances, diameter and query distance."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.convert import networkx_available, to_networkx
from repro.graph.generators import complete_graph, cycle_graph, path_graph
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import (
    bfs_distances,
    bfs_layers,
    bfs_tree,
    diameter,
    diameter_lower_bound_two_sweep,
    eccentricity,
    graph_query_distance,
    query_distances,
    shortest_path,
    shortest_path_length,
)


class TestBfsDistances:
    def test_path_graph_distances(self):
        graph = path_graph(5)
        distances = bfs_distances(graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_cutoff_limits_exploration(self):
        graph = path_graph(10)
        distances = bfs_distances(graph, 0, cutoff=3)
        assert max(distances.values()) == 3
        assert 4 not in distances

    def test_disconnected_nodes_absent(self):
        graph = UndirectedGraph([(1, 2)])
        graph.add_node(3)
        assert 3 not in bfs_distances(graph, 1)

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(UndirectedGraph(), 0)


class TestBfsTree:
    def test_parents_form_shortest_paths(self):
        graph = cycle_graph(6)
        parents = bfs_tree(graph, 0)
        assert parents[0] is None
        # node 3 is opposite on the cycle: its parent must be at distance 2.
        distances = bfs_distances(graph, 0)
        assert distances[parents[3]] == distances[3] - 1


class TestBfsLayers:
    def test_layers_from_single_source(self):
        graph = path_graph(4)
        layers = bfs_layers(graph, [0])
        assert layers == [{0}, {1}, {2}, {3}]

    def test_layers_from_multiple_sources(self):
        graph = path_graph(5)
        layers = bfs_layers(graph, [0, 4])
        assert layers[0] == {0, 4}
        assert layers[1] == {1, 3}
        assert layers[2] == {2}

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            bfs_layers(path_graph(3), [99])


class TestShortestPath:
    def test_path_endpoints_included(self):
        graph = path_graph(4)
        assert shortest_path(graph, 0, 3) == [0, 1, 2, 3]

    def test_self_path(self):
        graph = path_graph(3)
        assert shortest_path(graph, 1, 1) == [1]

    def test_disconnected_returns_none(self):
        graph = UndirectedGraph([(1, 2), (3, 4)])
        assert shortest_path(graph, 1, 3) is None

    def test_shortest_path_length(self):
        graph = cycle_graph(8)
        assert shortest_path_length(graph, 0, 4) == 4
        assert shortest_path_length(graph, 0, 7) == 1

    def test_shortest_path_length_disconnected_is_inf(self):
        graph = UndirectedGraph([(1, 2), (3, 4)])
        assert shortest_path_length(graph, 1, 4) == float("inf")

    @pytest.mark.skipif(not networkx_available(), reason="networkx oracle unavailable")
    def test_matches_networkx_on_random_graph(self, random_graph):
        import networkx as nx

        oracle = to_networkx(random_graph)
        expected = dict(nx.single_source_shortest_path_length(oracle, 0))
        assert bfs_distances(random_graph, 0) == expected


class TestDiameterAndEccentricity:
    def test_path_diameter(self):
        assert diameter(path_graph(6)) == 5

    def test_cycle_diameter(self):
        assert diameter(cycle_graph(8)) == 4

    def test_complete_graph_diameter(self):
        assert diameter(complete_graph(5)) == 1

    def test_single_node_diameter(self):
        graph = UndirectedGraph()
        graph.add_node(1)
        assert diameter(graph) == 0

    def test_disconnected_diameter_is_inf(self):
        graph = UndirectedGraph([(1, 2), (3, 4)])
        assert diameter(graph) == float("inf")

    def test_eccentricity(self):
        graph = path_graph(5)
        assert eccentricity(graph, 0) == 4
        assert eccentricity(graph, 2) == 2

    def test_two_sweep_lower_bound_is_exact_on_trees(self):
        graph = path_graph(9)
        assert diameter_lower_bound_two_sweep(graph) == 8

    def test_two_sweep_never_exceeds_true_diameter(self, random_graph):
        bound = diameter_lower_bound_two_sweep(random_graph)
        true_diameter = diameter(random_graph)
        assert bound <= true_diameter


class TestQueryDistance:
    def test_definition_3_example(self, figure1):
        """dist(v2, {q2, q3}) = 2 as worked out in Section 2."""
        distances = query_distances(figure1, ["q2", "q3"])
        assert distances["v2"] == 2

    def test_grey_subgraph_query_distance_is_3(self, figure1):
        """dist_G(H, {q2, q3}) = 3 for the grey subgraph (Section 2)."""
        grey = figure1.subgraph(
            {"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5", "p1", "p2", "p3"}
        )
        distances = query_distances(figure1, ["q2", "q3"])
        assert max(distances[node] for node in grey.nodes()) == 3

    def test_empty_query_gives_zero(self):
        graph = path_graph(3)
        assert graph_query_distance(graph, []) == 0.0

    def test_unreachable_nodes_get_infinity(self):
        graph = UndirectedGraph([(1, 2), (3, 4)])
        distances = query_distances(graph, [1])
        assert distances[3] == float("inf")

    def test_single_query_node_matches_bfs(self):
        graph = cycle_graph(7)
        assert query_distances(graph, [0]) == bfs_distances(graph, 0)

    def test_graph_query_distance_is_max(self):
        graph = path_graph(5)
        assert graph_query_distance(graph, [0]) == 4
        assert graph_query_distance(graph, [0, 4]) == 4
        assert graph_query_distance(graph, [2]) == 2
