"""On-disk primitive tests: record framing, manifests, atomic publication.

The torn-tail/mid-log contract under test is the durability layer's
foundation: damage at the very end of a framed log (a crashed append) is
reported for silent truncation, damage *followed by more log bytes*
raises :class:`~repro.exceptions.WalCorruptionError` — a crashed append
can only shorten the file, so trailing bytes prove the damage is not a
torn write.
"""

from __future__ import annotations

import io
import json
import os
import zlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exceptions import WalCorruptionError
from repro.graph.disk import (
    HEADER_SIZE,
    RECORD_HEADER_SIZE,
    append_record,
    file_crc32,
    pack_record,
    publish_dir,
    read_manifest,
    scan_records,
    write_manifest,
)

MAGIC = b"TESTLOG1"

common_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _log(payloads: list[bytes]) -> bytes:
    handle = io.BytesIO()
    handle.write(MAGIC)
    for payload in payloads:
        append_record(handle, payload)
    return handle.getvalue()


class TestRecordFraming:
    def test_round_trip(self):
        payloads = [b"", b"a", b"x" * 1000, bytes(range(256))]
        data = _log(payloads)
        parsed, valid = scan_records(data, magic=MAGIC)
        assert parsed == payloads
        assert valid == len(data)

    def test_empty_and_partial_header(self):
        assert scan_records(b"", magic=MAGIC) == ([], 0)
        # A crash while writing the magic itself: nothing was ever logged.
        assert scan_records(MAGIC[:3], magic=MAGIC) == ([], 0)
        assert scan_records(MAGIC, magic=MAGIC) == ([], len(MAGIC))

    def test_wrong_magic_raises(self):
        with pytest.raises(WalCorruptionError, match="bad log header"):
            scan_records(b"WRONGMAG" + pack_record(b"x"), magic=MAGIC)

    def test_pack_record_layout(self):
        record = pack_record(b"abc")
        assert len(record) == RECORD_HEADER_SIZE + 3
        assert int.from_bytes(record[:4], "little") == 3
        assert int.from_bytes(record[4:8], "little") == zlib.crc32(b"abc")

    @pytest.mark.parametrize("cut", range(1, 12))
    def test_torn_tail_truncated_silently(self, cut):
        """Any proper prefix of the last record is a torn tail, not corruption."""
        payloads = [b"first-record", b"second-record"]
        data = _log(payloads)
        torn = data[: len(data) - cut]
        parsed, valid = scan_records(torn, magic=MAGIC)
        assert parsed == [b"first-record"]
        assert valid == len(_log([b"first-record"]))

    def test_last_record_payload_damage_is_torn(self):
        data = bytearray(_log([b"first-record", b"second-record"]))
        data[-3] ^= 0xFF
        parsed, valid = scan_records(bytes(data), magic=MAGIC)
        assert parsed == [b"first-record"]

    def test_midlog_payload_damage_raises(self):
        data = bytearray(_log([b"first-record", b"second-record"]))
        data[HEADER_SIZE + RECORD_HEADER_SIZE + 2] ^= 0xFF
        with pytest.raises(WalCorruptionError, match="checksum mismatch") as exc:
            scan_records(bytes(data), magic=MAGIC)
        assert exc.value.offset == HEADER_SIZE

    @common_settings
    @given(
        payloads=st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=6),
        cut=st.integers(min_value=0, max_value=500),
    )
    def test_truncation_never_raises_and_keeps_a_prefix(self, payloads, cut):
        """Chopping a clean log anywhere yields a prefix of its records."""
        data = _log(payloads)
        torn = data[: max(0, len(data) - cut)]
        parsed, valid = scan_records(torn, magic=MAGIC)
        assert parsed == payloads[: len(parsed)]
        assert valid <= len(torn)

    @common_settings
    @given(
        payloads=st.lists(st.binary(min_size=1, max_size=40), min_size=2, max_size=6),
        data=st.data(),
    )
    def test_byte_flip_never_yields_wrong_payloads(self, payloads, data):
        """A single flipped byte either raises or parses a clean prefix."""
        log = bytearray(_log(payloads))
        position = data.draw(st.integers(min_value=0, max_value=len(log) - 1))
        log[position] ^= 0xFF
        try:
            parsed, _ = scan_records(bytes(log), magic=MAGIC)
        except WalCorruptionError:
            return
        # Flips in a length field can consume the rest of the file (the
        # torn-tail shape); whatever survives must be a clean prefix.
        assert parsed == payloads[: len(parsed)]


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = {"version": 3, "arrays": {"a": {"crc32": 12}}, "note": "x"}
        path = tmp_path / "manifest.json"
        write_manifest(path, manifest)
        assert read_manifest(path) == manifest

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_manifest(path, {"version": 1})
        data = bytearray(path.read_bytes())
        data[-4] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="failed its checksum"):
            read_manifest(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_manifest(path, {"version": 1, "padding": "y" * 64})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        with pytest.raises(ValueError, match="failed its checksum"):
            read_manifest(path)

    def test_missing_checksum_line(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(ValueError, match="no checksum line"):
            read_manifest(path)


class TestPublishDir:
    def test_atomic_rename(self, tmp_path):
        staged = tmp_path / "tmp-1"
        staged.mkdir()
        (staged / "payload.bin").write_bytes(b"hello")
        final = tmp_path / "final"
        publish_dir(staged, final)
        assert not staged.exists()
        assert (final / "payload.bin").read_bytes() == b"hello"

    def test_file_crc32_matches_zlib(self, tmp_path):
        blob = os.urandom(3000)
        path = tmp_path / "blob.bin"
        path.write_bytes(blob)
        assert file_crc32(path, chunk_size=256) == zlib.crc32(blob)
