"""Unit tests for triangle enumeration, edge support and clustering."""

from __future__ import annotations

import pytest

from repro.graph.convert import networkx_available, to_networkx
from repro.graph.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.simple_graph import UndirectedGraph, edge_key
from repro.graph.triangles import (
    all_edge_supports,
    average_clustering_coefficient,
    edge_support,
    global_clustering_coefficient,
    iter_triangles,
    local_clustering_coefficient,
    node_triangle_counts,
    triangle_count,
    triangles_of_edge,
)


class TestEdgeSupport:
    def test_triangle_edge_support(self, triangle):
        assert edge_support(triangle, 0, 1) == 1

    def test_complete_graph_support(self, k5):
        # In K5 every edge has 3 common neighbours.
        for u, v in k5.edges():
            assert edge_support(k5, u, v) == 3

    def test_path_has_no_support(self, path4):
        for u, v in path4.edges():
            assert edge_support(path4, u, v) == 0

    def test_figure1_worked_example(self, figure1):
        """sup(q2, v2) = 3 (Section 2 of the paper)."""
        assert edge_support(figure1, "q2", "v2") == 3

    def test_all_edge_supports_matches_pairwise(self, random_graph):
        supports = all_edge_supports(random_graph)
        for (u, v), support in supports.items():
            assert support == edge_support(random_graph, u, v)

    def test_all_edge_supports_keys_are_canonical(self, k4):
        supports = all_edge_supports(k4)
        assert set(supports) == {edge_key(u, v) for u, v in k4.edges()}


class TestTriangleEnumeration:
    def test_triangle_count_complete_graphs(self):
        assert triangle_count(complete_graph(3)) == 1
        assert triangle_count(complete_graph(4)) == 4
        assert triangle_count(complete_graph(5)) == 10
        assert triangle_count(complete_graph(6)) == 20

    def test_no_triangles_in_cycles_and_stars(self):
        assert triangle_count(cycle_graph(5)) == 0
        assert triangle_count(star_graph(6)) == 0

    def test_each_triangle_listed_once(self, k4):
        triangles = list(iter_triangles(k4))
        normalized = {tuple(sorted(triangle, key=repr)) for triangle in triangles}
        assert len(triangles) == len(normalized) == 4

    def test_triangles_of_edge(self, k4):
        found = triangles_of_edge(k4, 0, 1)
        third_vertices = {w for _, _, w in found}
        assert third_vertices == {2, 3}

    def test_node_triangle_counts(self, k4):
        counts = node_triangle_counts(k4)
        assert all(value == 3 for value in counts.values())

    @pytest.mark.skipif(not networkx_available(), reason="networkx oracle unavailable")
    def test_triangle_count_matches_networkx(self, random_graph):
        import networkx as nx

        expected = sum(nx.triangles(to_networkx(random_graph)).values()) // 3
        assert triangle_count(random_graph) == expected


class TestClustering:
    def test_local_clustering_of_clique_node(self, k4):
        assert local_clustering_coefficient(k4, 0) == pytest.approx(1.0)

    def test_local_clustering_of_star_hub(self):
        graph = star_graph(5)
        assert local_clustering_coefficient(graph, 0) == 0.0

    def test_low_degree_nodes_are_zero(self, path4):
        assert local_clustering_coefficient(path4, 0) == 0.0

    def test_average_clustering_empty_graph(self):
        assert average_clustering_coefficient(UndirectedGraph()) == 0.0

    def test_global_clustering_complete_graph(self, k5):
        assert global_clustering_coefficient(k5) == pytest.approx(1.0)

    def test_global_clustering_triangle_free(self):
        assert global_clustering_coefficient(cycle_graph(6)) == 0.0

    @pytest.mark.skipif(not networkx_available(), reason="networkx oracle unavailable")
    def test_average_clustering_matches_networkx(self, random_graph):
        import networkx as nx

        expected = nx.average_clustering(to_networkx(random_graph))
        assert average_clustering_coefficient(random_graph) == pytest.approx(expected)
