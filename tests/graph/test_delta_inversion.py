"""GraphDelta inversion: the algebra behind backward replay.

``inverted()`` is what turns the engine's forward-only delta log into a
bidirectional one: a normalized delta taking ``G`` to ``G'`` inverts into a
delta normalized against ``G'`` that takes it back to ``G``.  These tests
pin the composition identities (``d.then(d.inverted())`` is empty in both
orders) and the round-trip at the CSR layer — applying a delta and then its
inverse reproduces the original snapshot bit-for-bit, including through
deltas whose add/remove pairs cancel under composition.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.delta import GraphDelta
from repro.graph.generators import erdos_renyi_graph
from repro.graph.simple_graph import UndirectedGraph

common_settings = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def graphs_with_deltas(draw):
    """A graph plus a delta normalized against it."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=4, max_value=14))
    graph = erdos_renyi_graph(n, draw(st.floats(min_value=0.2, max_value=0.6)), seed=seed)
    nodes = sorted(graph.nodes())
    present = sorted(graph.edges())
    absent = [
        (u, v)
        for i, u in enumerate(nodes)
        for v in nodes[i + 1:]
        if not graph.has_edge(u, v)
    ]
    removed_edges = draw(
        st.lists(st.sampled_from(present), unique=True, max_size=4) if present else st.just([])
    )
    added_edges = draw(
        st.lists(st.sampled_from(absent), unique=True, max_size=4) if absent else st.just([])
    )
    added_nodes = draw(st.lists(st.integers(min_value=n, max_value=n + 5), unique=True, max_size=2))
    # New edges may also land on brand-new nodes, as engine deltas do.
    if added_nodes and draw(st.booleans()):
        added_edges = [*added_edges, (nodes[0], added_nodes[0])]
    delta = GraphDelta(
        added_nodes=added_nodes,
        added_edges=added_edges,
        removed_edges=removed_edges,
    )
    return graph, delta


def _assert_csr_identical(left: CSRGraph, right: CSRGraph) -> None:
    assert left.labels() == right.labels()
    for attribute in ("indptr", "indices", "slot_edge", "edge_u", "edge_v"):
        assert np.array_equal(getattr(left, attribute), getattr(right, attribute)), (
            f"csr.{attribute} did not survive the round trip"
        )


class TestInversionAlgebra:
    @common_settings
    @given(setup=graphs_with_deltas())
    def test_then_inverted_is_empty_both_orders(self, setup):
        _graph, delta = setup
        assert delta.then(delta.inverted()).is_empty()
        assert delta.inverted().then(delta).is_empty()

    @common_settings
    @given(setup=graphs_with_deltas())
    def test_double_inversion_is_identity(self, setup):
        _graph, delta = setup
        assert delta.inverted().inverted() == delta

    def test_inversion_swaps_all_four_sets(self):
        delta = GraphDelta(
            added_nodes=["a"],
            removed_nodes=["b"],
            added_edges=[(1, 2)],
            removed_edges=[(3, 4)],
        )
        inverse = delta.inverted()
        assert inverse.added_nodes == frozenset({"b"})
        assert inverse.removed_nodes == frozenset({"a"})
        assert inverse.added_edges == frozenset({(3, 4)})
        assert inverse.removed_edges == frozenset({(1, 2)})

    def test_empty_delta_inverts_to_empty(self):
        assert GraphDelta().inverted().is_empty()

    def test_chain_of_inverses_reverses_a_chain(self):
        """chain(d1, d2) then chain(inv(d2), inv(d1)) nets to nothing —
        the exact composition the engine's backward replay performs."""
        d1 = GraphDelta(added_edges=[(1, 2)], removed_edges=[(3, 4)])
        d2 = GraphDelta(added_edges=[(5, 6)], removed_nodes=["x"])
        forward = GraphDelta.chain([d1, d2])
        backward = GraphDelta.chain(delta.inverted() for delta in [d2, d1])
        assert forward.then(backward).is_empty()


class TestCSRRoundTrip:
    @common_settings
    @given(setup=graphs_with_deltas())
    def test_apply_then_apply_inverse_reproduces_csr_bit_for_bit(self, setup):
        graph, delta = setup
        original = CSRGraph.from_graph(graph)
        patched = original.apply_delta(delta).csr
        restored = patched.apply_delta(delta.inverted()).csr
        _assert_csr_identical(restored, original)

    def test_backward_replay_through_cancelling_pair(self):
        """A remove followed by a re-add nets to an empty composition, and
        backward replay through the pair reproduces the original CSR."""
        graph = UndirectedGraph()
        for edge in [(0, 1), (1, 2), (2, 0), (2, 3)]:
            graph.add_edge(*edge)
        original = CSRGraph.from_graph(graph)
        remove = GraphDelta(removed_edges=[(2, 0)])
        readd = GraphDelta(added_edges=[(0, 2)])
        assert remove.then(readd).is_empty()
        after = original.apply_delta(remove).csr.apply_delta(readd).csr
        _assert_csr_identical(after, original)
        # Backward composition: inverses newest-first collapse to empty too,
        # so the one-shot backward patch is also exact.
        backward = GraphDelta.chain(delta.inverted() for delta in [readd, remove])
        assert backward.is_empty()
        _assert_csr_identical(after.apply_delta(backward).csr, original)

    def test_backward_replay_through_node_churn(self):
        """Inverting a delta that dropped a node (with its incident edges)
        restores the node, its edges, and the exact label order."""
        graph = UndirectedGraph()
        for edge in [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]:
            graph.add_edge(*edge)
        original = CSRGraph.from_graph(graph)
        drop = GraphDelta(removed_nodes=["c"], removed_edges=[("b", "c"), ("c", "a"), ("c", "d")])
        after = original.apply_delta(drop).csr
        restored = after.apply_delta(drop.inverted()).csr
        assert sorted(restored.labels()) == sorted(original.labels())
        assert set(restored.edge_keys()) == set(original.edge_keys())
        assert restored.to_graph() == original.to_graph()
