"""Shared fixtures for the whole test suite."""

from __future__ import annotations

import pytest

from repro.datasets.paper_figures import (
    figure_1_graph,
    figure_1_query,
    figure_4_graph,
    figure_4_query,
)
from repro.datasets.synthetic import CommunityProfile, generate_community_network
from repro.graph.generators import complete_graph, erdos_renyi_graph
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.index import TrussIndex


@pytest.fixture
def figure1():
    """The Figure 1(a) reconstruction."""
    return figure_1_graph()


@pytest.fixture
def figure1_query():
    """The query of Examples 1/4/7."""
    return list(figure_1_query())


@pytest.fixture
def figure1_index(figure1):
    """A truss index over Figure 1(a)."""
    return TrussIndex(figure1)


@pytest.fixture
def figure4():
    """The Figure 4 reconstruction (two cliques joined by a weak bridge)."""
    return figure_4_graph()


@pytest.fixture
def figure4_query():
    """The query of Example 6."""
    return list(figure_4_query())


@pytest.fixture
def k4():
    """A 4-clique (the smallest 4-truss)."""
    return complete_graph(4)


@pytest.fixture
def k5():
    """A 5-clique."""
    return complete_graph(5)


@pytest.fixture
def triangle():
    """A single triangle (3-truss)."""
    return UndirectedGraph([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4():
    """A 4-node path (trussness 2 everywhere)."""
    return UndirectedGraph([(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def random_graph():
    """A fixed Erdos-Renyi graph used for oracle comparisons."""
    return erdos_renyi_graph(40, 0.15, seed=5)


@pytest.fixture(scope="session")
def small_network():
    """A small synthetic community network with ground truth (session-scoped)."""
    return generate_community_network(
        name="test-net",
        num_nodes=150,
        profiles=[CommunityProfile(count=8, size_range=(8, 14), p_in=0.7)],
        overlap_fraction=0.1,
        background_density=0.002,
        seed=99,
    )


@pytest.fixture(scope="session")
def small_network_index(small_network):
    """A truss index over the small synthetic network (session-scoped)."""
    return TrussIndex(small_network.graph)
