"""Tests for the ``ctc-search`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets.paper_figures import figure_1_graph
from repro.graph.io import write_edge_list


@pytest.fixture
def figure1_file(tmp_path):
    path = tmp_path / "figure1.txt"
    write_edge_list(figure_1_graph(), path)
    return str(path)


class TestParser:
    def test_search_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["search", "g.txt", "--query", "a", "b", "--method", "basic"])
        assert args.command == "search"
        assert args.query == ["a", "b"]
        assert args.method == "basic"

    def test_experiment_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "table2"])
        assert args.command == "experiment"
        assert args.name == "table2"

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSearchCommand:
    def test_lctc_search_prints_members(self, figure1_file, capsys):
        exit_code = main(
            ["search", figure1_file, "--query", "q1", "q2", "q3", "--method", "lctc", "--eta", "50"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "trussness:     4" in captured
        assert "v5" in captured
        assert "p1" not in captured.split("members:")[1]

    def test_basic_search(self, figure1_file, capsys):
        exit_code = main(["search", figure1_file, "--query", "q3", "--method", "basic"])
        assert exit_code == 0
        assert "method:        basic" in capsys.readouterr().out

    def test_truss_method_keeps_free_riders(self, figure1_file, capsys):
        main(["search", figure1_file, "--query", "q1", "q2", "q3", "--method", "truss"])
        members = capsys.readouterr().out.split("members:")[1]
        assert "p1" in members

    def test_engine_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["search", "g.txt", "--query", "a", "--engine"])
        assert args.cache_size >= 1
        assert args.delta_threshold > 0
        assert args.mutate_every == 0

    def test_mutate_every_requires_engine(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["search", figure1_file, "--query", "q1", "--mutate-every", "2"])

    def test_csr_kernel_requires_engine(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["search", figure1_file, "--query", "q1", "--kernel", "csr"])

    def test_decomp_requires_engine(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["search", figure1_file, "--query", "q1", "--decomp", "vector"])

    def test_unknown_decomp_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "g.txt", "--query", "a", "--engine", "--decomp", "simd"]
            )

    def test_decomp_strategies_agree(self, figure1_file, capsys):
        """--decomp vector and --decomp bucket print the same community."""
        outputs = {}
        for decomp in ("vector", "bucket"):
            exit_code = main(
                ["search", figure1_file, "--query", "q1", "q2", "--method", "lctc",
                 "--eta", "50", "--engine", "--decomp", decomp]
            )
            assert exit_code == 0
            outputs[decomp] = capsys.readouterr().out
            assert f"decomp:        {decomp}" in outputs[decomp]
        assert outputs["vector"].split("members:")[1].split("decomp:")[0] == (
            outputs["bucket"].split("members:")[1].split("decomp:")[0]
        )

    def test_engine_defaults_to_csr_kernel(self, figure1_file, capsys):
        exit_code = main(
            ["search", figure1_file, "--query", "q1", "q2", "--method", "lctc",
             "--eta", "50", "--engine", "--repeat", "3"]
        )
        assert exit_code == 0
        assert "kernel:        csr" in capsys.readouterr().out

    def test_dict_kernel_same_community(self, figure1_file, capsys):
        main(["search", figure1_file, "--query", "q1", "q2", "q3", "--method", "lctc",
              "--eta", "50", "--engine"])
        csr_out = capsys.readouterr().out
        main(["search", figure1_file, "--query", "q1", "q2", "q3", "--method", "lctc",
              "--eta", "50", "--engine", "--kernel", "dict"])
        dict_out = capsys.readouterr().out
        assert "kernel:        dict" in dict_out
        assert csr_out.split("members:")[1].split("kernel:")[0] == (
            dict_out.split("members:")[1].split("kernel:")[0]
        )

    def test_at_version_requires_engine(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["search", figure1_file, "--query", "q1", "--at-version", "0"])

    def test_at_version_rejects_negative(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["search", figure1_file, "--query", "q1", "--engine", "--at-version", "-1"])

    def test_window_requires_engine(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["search", figure1_file, "--query", "q1", "--window", "10"])

    def test_window_rejects_negative(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["search", figure1_file, "--query", "q1", "--engine", "--window", "-5"])

    def test_temporal_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["search", "g.txt", "--query", "a", "--engine"])
        assert args.at_version is None
        assert args.window == 0

    def test_at_version_pins_reads_across_mutations(self, figure1_file, capsys):
        """Version-0 pinned queries keep answering while mutations advance
        the store, and the stats report the pinned reads."""
        exit_code = main(
            [
                "search", figure1_file, "--query", "q1", "q2",
                "--method", "lctc", "--eta", "50",
                "--engine", "--repeat", "6", "--mutate-every", "2",
                "--at-version", "0",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "time travel:" in captured
        assert "retained versions 0.." in captured

    def test_at_version_beyond_current_exits_cleanly(self, figure1_file):
        with pytest.raises(SystemExit, match="--at-version"):
            main(
                ["search", figure1_file, "--query", "q1",
                 "--engine", "--at-version", "999"]
            )

    def test_window_mode_reports_live_edges(self, figure1_file, capsys):
        exit_code = main(
            [
                "search", figure1_file, "--query", "q1", "q2",
                "--method", "lctc", "--eta", "50",
                "--engine", "--window", "300",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "window:" in captured
        assert "/300 live edges" in captured

    def test_mixed_workload_mode_reports_delta_applies(self, figure1_file, capsys):
        exit_code = main(
            [
                "search", figure1_file, "--query", "q1", "q2",
                "--method", "lctc", "--eta", "50",
                "--engine", "--repeat", "6", "--mutate-every", "2",
                "--cache-size", "2", "--delta-threshold", "0.5",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "delta applies" in captured
        assert "throughput:" in captured

    def test_workers_requires_engine(self, figure1_file):
        with pytest.raises(SystemExit, match="--workers requires --engine"):
            main(["search", figure1_file, "--query", "q1", "--workers", "2"])

    def test_serving_mode_requires_workers(self, figure1_file):
        with pytest.raises(SystemExit, match="--serving-mode requires --workers"):
            main(
                ["search", figure1_file, "--query", "q1",
                 "--engine", "--serving-mode", "thread"]
            )

    def test_workers_rejects_window(self, figure1_file):
        with pytest.raises(SystemExit, match="--workers does not combine"):
            main(
                ["search", figure1_file, "--query", "q1",
                 "--engine", "--workers", "2", "--window", "10"]
            )

    def test_process_mode_rejects_at_version(self, figure1_file):
        with pytest.raises(SystemExit, match="--serving-mode thread"):
            main(
                ["search", figure1_file, "--query", "q1", "--engine",
                 "--workers", "2", "--serving-mode", "process", "--at-version", "0"]
            )

    def test_serving_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["search", "g.txt", "--query", "a", "--engine"])
        assert args.workers == 0
        assert args.serving_mode is None
        assert args.query_timeout is None

    def test_query_timeout_requires_workers(self, figure1_file):
        with pytest.raises(SystemExit, match="--query-timeout requires --workers"):
            main(
                ["search", figure1_file, "--query", "q1",
                 "--engine", "--query-timeout", "5"]
            )

    def test_query_timeout_must_be_positive(self, figure1_file):
        with pytest.raises(SystemExit, match="--query-timeout must be > 0"):
            main(
                ["search", figure1_file, "--query", "q1",
                 "--engine", "--workers", "2", "--query-timeout", "0"]
            )

    def test_query_timeout_serves_and_reports_fault_stats(self, figure1_file, capsys):
        exit_code = main(
            [
                "search", figure1_file, "--query", "q1", "q2",
                "--method", "lctc", "--eta", "50",
                "--engine", "--repeat", "4", "--workers", "2",
                "--query-timeout", "30",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "trussness:     4" in captured
        assert "faults:        0 crashes, 0 respawns, 0 requeued" in captured
        assert "0 timeouts" in captured

    def test_thread_serving_reports_coalescing(self, figure1_file, capsys):
        exit_code = main(
            [
                "search", figure1_file, "--query", "q1", "q2",
                "--method", "lctc", "--eta", "50",
                "--engine", "--repeat", "6", "--workers", "2",
                "--mutate-every", "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "serving:       mode=thread, workers=2" in captured
        assert "coalescing:" in captured
        assert "pins:" in captured
        assert "leases" in captured

    def test_thread_serving_same_community_as_plain_engine(self, figure1_file, capsys):
        base_args = ["search", figure1_file, "--query", "q1", "q2", "q3",
                     "--method", "lctc", "--eta", "50", "--engine"]
        main(base_args)
        plain_out = capsys.readouterr().out
        main(base_args + ["--workers", "2", "--repeat", "4"])
        serving_out = capsys.readouterr().out
        assert plain_out.split("members:")[1].split("kernel:")[0] == (
            serving_out.split("members:")[1].split("throughput:")[0]
        )

    def test_process_serving_reports_shard_stats(self, figure1_file, capsys):
        exit_code = main(
            [
                "search", figure1_file, "--query", "q1", "q2",
                "--method", "lctc", "--eta", "50",
                "--engine", "--repeat", "4", "--workers", "2",
                "--serving-mode", "process",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "serving:       mode=process, workers=2" in captured
        assert "coalescing:" in captured
        assert "trussness:     4" in captured


class TestDurabilityFlags:
    def test_data_dir_requires_engine(self, figure1_file):
        with pytest.raises(SystemExit, match="--data-dir requires --engine"):
            main(["search", figure1_file, "--query", "q1", "--data-dir", "/tmp/x"])

    def test_checkpoint_every_requires_data_dir(self, figure1_file):
        with pytest.raises(SystemExit, match="--checkpoint-every requires --data-dir"):
            main(
                ["search", figure1_file, "--query", "q1",
                 "--engine", "--checkpoint-every", "5"]
            )

    def test_fsync_requires_data_dir(self, figure1_file):
        with pytest.raises(SystemExit, match="--fsync requires --data-dir"):
            main(
                ["search", figure1_file, "--query", "q1",
                 "--engine", "--fsync", "always"]
            )

    def test_recover_requires_data_dir(self, figure1_file):
        with pytest.raises(SystemExit, match="--recover requires --data-dir"):
            main(["search", figure1_file, "--query", "q1", "--engine", "--recover"])

    def test_recover_rejects_graph_argument(self, figure1_file, tmp_path):
        with pytest.raises(SystemExit, match="omit the graph argument"):
            main(
                ["search", figure1_file, "--query", "q1", "--engine",
                 "--data-dir", str(tmp_path / "store"), "--recover"]
            )

    def test_graph_required_without_recover(self, tmp_path):
        with pytest.raises(SystemExit, match="edge-list file is required"):
            main(
                ["search", "--query", "q1", "--engine",
                 "--data-dir", str(tmp_path / "store")]
            )

    def test_data_dir_rejects_process_serving(self, figure1_file, tmp_path):
        with pytest.raises(SystemExit, match="--data-dir does not combine"):
            main(
                ["search", figure1_file, "--query", "q1", "--engine",
                 "--data-dir", str(tmp_path / "store"),
                 "--workers", "2", "--serving-mode", "process"]
            )

    def test_unknown_fsync_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "g.txt", "--query", "a", "--engine",
                 "--data-dir", "d", "--fsync", "sometimes"]
            )

    def test_durable_search_reports_wal_stats(self, figure1_file, tmp_path, capsys):
        exit_code = main(
            [
                "search", figure1_file, "--query", "q1", "q2",
                "--method", "lctc", "--eta", "50",
                "--engine", "--repeat", "4", "--mutate-every", "2",
                "--data-dir", str(tmp_path / "store"), "--fsync", "off",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "durability:    fsync=off" in captured
        assert "appends" in captured
        assert (tmp_path / "store" / "wal.log").exists()

    def test_recover_round_trip_prints_recovery_footer(
        self, figure1_file, tmp_path, capsys
    ):
        """A durable run followed by --recover serves the same community."""
        store = str(tmp_path / "store")
        base = ["--query", "q1", "q2", "--method", "lctc", "--eta", "50",
                "--engine", "--data-dir", store]
        assert main(["search", figure1_file] + base + ["--checkpoint-every", "2",
                    "--repeat", "4", "--mutate-every", "2"]) == 0
        first = capsys.readouterr().out
        assert main(["search"] + base + ["--recover"]) == 0
        second = capsys.readouterr().out
        assert "recovery:" in second
        assert "durability:" in second
        # Mutations toggle edges an even number of times across the first
        # run, so the recovered store answers with the same community.
        def members(output: str) -> list[str]:
            lines = output.split("members:")[1].splitlines()
            return [line.strip() for line in lines if line.startswith("  ")]

        assert members(first) == members(second)

    def test_recover_from_wal_only(self, figure1_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        base = ["--query", "q1", "q2", "--method", "lctc", "--eta", "50",
                "--engine", "--data-dir", store]
        assert main(["search", figure1_file] + base) == 0
        capsys.readouterr()
        assert main(["search"] + base + ["--recover"]) == 0
        out = capsys.readouterr().out
        assert "no checkpoint (WAL only)" in out

    def test_recover_missing_store_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no durable state"):
            main(
                ["search", "--query", "q1", "--engine",
                 "--data-dir", str(tmp_path / "missing"), "--recover"]
            )

    def test_windowed_durable_recover(self, figure1_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["--query", "q1", "q2", "--method", "lctc", "--eta", "50",
                "--engine", "--window", "300", "--data-dir", store]
        assert main(["search", figure1_file] + args) == 0
        capsys.readouterr()
        assert main(["search"] + args + ["--recover"]) == 0
        out = capsys.readouterr().out
        assert "window:" in out and "/300 live edges" in out
        assert "recovery:" in out


class TestExperimentCommand:
    def test_table2_runs(self, capsys):
        exit_code = main(["experiment", "table2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "facebook-like" in captured
        assert "max_trussness" in captured

    def test_fig11_runs(self, capsys):
        exit_code = main(["experiment", "fig11"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "truss-G0" in captured
        assert "lctc" in captured
