"""Unit tests for Algorithm 5 (LCTC, local exploration)."""

from __future__ import annotations

import pytest

from repro.ctc.basic import BasicCTC
from repro.ctc.local import DEFAULT_ETA, DEFAULT_GAMMA, LocalCTC, local_ctc_search
from repro.exceptions import QueryError
from repro.graph.components import is_connected
from repro.graph.triangles import all_edge_supports
from repro.trusses.index import TrussIndex


class TestLocalCTCOnPaperExamples:
    def test_figure1_recovers_the_ctc(self, figure1_index, figure1_query):
        result = LocalCTC(figure1_index, eta=50).search(figure1_query)
        assert result.nodes == {"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5"}
        assert result.trussness == 4
        assert result.diameter() == 3

    def test_result_is_connected_truss_containing_query(self, figure1_index, figure1_query):
        result = LocalCTC(figure1_index, eta=50).search(figure1_query)
        assert result.contains_query()
        assert is_connected(result.graph)
        supports = all_edge_supports(result.graph)
        assert all(value >= result.trussness - 2 for value in supports.values())

    def test_extras_describe_the_local_exploration(self, figure1_index, figure1_query):
        result = LocalCTC(figure1_index, eta=50).search(figure1_query)
        assert result.extras["k_t"] == 4
        assert result.extras["steiner_nodes"] >= 3
        assert result.extras["expanded_nodes"] <= 50
        assert result.extras["eta"] == 50
        assert result.extras["gamma"] == DEFAULT_GAMMA

    def test_single_query_node(self, figure1_index):
        result = LocalCTC(figure1_index, eta=50).search(["q3"])
        assert "q3" in result.nodes
        assert result.trussness == 4

    def test_figure4_query_across_the_bridge(self, figure4, figure4_query):
        index = TrussIndex(figure4)
        result = LocalCTC(index, eta=50).search(figure4_query)
        assert result.contains_query()
        assert result.trussness == 2


class TestLocalCTCParameters:
    def test_invalid_parameters(self, figure1_index):
        with pytest.raises(ValueError):
            LocalCTC(figure1_index, eta=0)
        with pytest.raises(ValueError):
            LocalCTC(figure1_index, gamma=-1.0)

    def test_defaults_exported(self):
        assert DEFAULT_ETA == 1000
        assert DEFAULT_GAMMA == 3.0

    def test_small_eta_still_contains_query(self, small_network_index):
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:2]
        result = LocalCTC(small_network_index, eta=5).search(query)
        assert result.contains_query()

    def test_larger_eta_never_shrinks_trussness(self, small_network_index):
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:2]
        small = LocalCTC(small_network_index, eta=10).search(query)
        large = LocalCTC(small_network_index, eta=200).search(query)
        assert large.trussness >= small.trussness

    def test_max_trussness_cap(self, figure1_index, figure1_query):
        capped = LocalCTC(figure1_index, eta=50, max_trussness_k=2).search(figure1_query)
        assert capped.trussness <= 2
        assert capped.contains_query()

    def test_invalid_query_raises(self, figure1_index):
        with pytest.raises(QueryError):
            LocalCTC(figure1_index).search([])

    def test_wrapper_builds_index(self, figure1, figure1_query):
        result = local_ctc_search(figure1, figure1_query, eta=50)
        assert result.method == "lctc"
        assert result.trussness == 4


class TestLocalVersusGlobal:
    def test_trussness_close_to_global(self, small_network_index):
        """Figure 13(b): LCTC's trussness tracks the global algorithms closely.

        On the small test network with a generous eta the local exploration
        must find the same maximum trussness as the global Basic algorithm.
        """
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:2]
        global_result = BasicCTC(small_network_index).search(query)
        local_result = LocalCTC(
            small_network_index, eta=graph.number_of_nodes()
        ).search(query)
        assert local_result.trussness == global_result.trussness

    def test_diameter_within_twice_query_distance(self, small_network_index):
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:3]
        result = LocalCTC(small_network_index, eta=150).search(query)
        assert result.diameter() <= 2 * max(result.query_distance, 1)
