"""Unit tests for Algorithm 4 (BulkDelete)."""

from __future__ import annotations

import pytest

from repro.ctc.basic import BasicCTC
from repro.ctc.bulk_delete import BulkDeleteCTC, bulk_delete_ctc_search
from repro.exceptions import NoCommunityFoundError
from repro.graph.components import is_connected
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.triangles import all_edge_supports
from repro.trusses.index import TrussIndex


class TestBulkDeleteOnPaperExamples:
    def test_example_7_returns_whole_g0(self, figure1_index, figure1_query):
        """Example 7: the bulk set L contains two query nodes, so removing it
        disconnects Q and BD reports the entire 4-truss G0 (diameter 4)."""
        result = BulkDeleteCTC(figure1_index).search(figure1_query)
        assert result.nodes == {
            "q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5", "p1", "p2", "p3",
        }
        assert result.trussness == 4
        assert result.diameter() == 4

    def test_strict_variant_matches_basic_on_figure1(self, figure1_index, figure1_query):
        """With threshold d (offset 0) only the p-nodes are peeled, recovering
        the Figure 1(b) community, like Basic does."""
        result = BulkDeleteCTC(figure1_index, threshold_offset=0).search(figure1_query)
        assert result.nodes == {"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5"}
        assert result.diameter() == 3

    def test_result_is_connected_k_truss(self, figure1_index, figure1_query):
        result = BulkDeleteCTC(figure1_index).search(figure1_query)
        assert result.contains_query()
        assert is_connected(result.graph)
        supports = all_edge_supports(result.graph)
        assert all(value >= result.trussness - 2 for value in supports.values())

    def test_invalid_threshold_offset(self, figure1_index):
        with pytest.raises(ValueError):
            BulkDeleteCTC(figure1_index, threshold_offset=2)


class TestBulkDeleteBehaviour:
    def test_terminates_faster_than_basic(self, small_network_index):
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:3]
        try:
            basic = BasicCTC(small_network_index).search(query)
            bulk = BulkDeleteCTC(small_network_index).search(query)
        except NoCommunityFoundError:
            pytest.skip("query nodes not in a common truss")
        assert bulk.iterations <= basic.iterations

    def test_same_trussness_as_basic(self, small_network_index):
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:3]
        try:
            basic = BasicCTC(small_network_index).search(query)
            bulk = BulkDeleteCTC(small_network_index).search(query)
        except NoCommunityFoundError:
            pytest.skip("query nodes not in a common truss")
        assert bulk.trussness == basic.trussness

    def test_diameter_within_twice_query_distance(self, small_network_index):
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:3]
        try:
            result = BulkDeleteCTC(small_network_index).search(query)
        except NoCommunityFoundError:
            pytest.skip("query nodes not in a common truss")
        assert result.diameter() <= 2 * result.query_distance

    def test_batch_limit_restricts_deletions(self, figure1_index, figure1_query):
        limited = BulkDeleteCTC(figure1_index, threshold_offset=0, batch_limit=1)
        result = limited.search(figure1_query)
        # Still removes the free riders (one per iteration) and reaches the
        # same community as the unrestricted strict variant.
        assert result.nodes == {"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5"}

    def test_searcher_is_reusable_across_queries(self, figure1_index):
        searcher = BulkDeleteCTC(figure1_index)
        first = searcher.search(["q1", "q2", "q3"])
        second = searcher.search(["q3"])
        third = searcher.search(["q1", "q2", "q3"])
        assert first.nodes == third.nodes
        assert "q3" in second.nodes

    def test_wrapper_builds_index(self, figure1, figure1_query):
        result = bulk_delete_ctc_search(figure1, figure1_query)
        assert result.method == "bulk-delete"
        assert result.trussness == 4

    def test_disconnected_query_raises(self):
        graph = UndirectedGraph([(1, 2), (2, 3), (1, 3), (7, 8), (8, 9), (7, 9)])
        with pytest.raises(NoCommunityFoundError):
            bulk_delete_ctc_search(graph, [1, 7])

    def test_single_query_node(self, figure1_index):
        result = BulkDeleteCTC(figure1_index).search(["q2"])
        assert "q2" in result.nodes
        assert result.trussness == 4
