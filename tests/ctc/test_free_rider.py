"""Unit tests for the free-rider-effect analysis helpers (Section 3.2)."""

from __future__ import annotations

from repro.ctc.basic import BasicCTC
from repro.ctc.free_rider import (
    free_riders,
    retained_edge_percentage,
    retained_node_percentage,
    suffers_free_rider_effect,
)
from repro.datasets.paper_figures import figure_1_free_riders
from repro.trusses.extraction import find_maximal_connected_truss


class TestRetention:
    def test_identical_graphs_are_100_percent(self, k4):
        assert retained_node_percentage(k4, k4) == 100.0
        assert retained_edge_percentage(k4, k4) == 100.0

    def test_empty_reference_convention(self, k4):
        from repro.graph.simple_graph import UndirectedGraph

        assert retained_node_percentage(k4, UndirectedGraph()) == 100.0
        assert retained_edge_percentage(k4, UndirectedGraph()) == 100.0

    def test_figure1_basic_keeps_8_of_11_nodes(self, figure1_index, figure1_query):
        g0, _k = find_maximal_connected_truss(figure1_index, figure1_query)
        result = BasicCTC(figure1_index).search(figure1_query)
        percentage = retained_node_percentage(result.graph, g0)
        assert percentage == 100.0 * 8 / 11


class TestFreeRiders:
    def test_free_rider_nodes_identified(self, figure1_index, figure1_query):
        g0, _k = find_maximal_connected_truss(figure1_index, figure1_query)
        result = BasicCTC(figure1_index).search(figure1_query)
        assert free_riders(result.graph, g0) == figure_1_free_riders()

    def test_no_free_riders_when_equal(self, k4):
        assert free_riders(k4, k4) == set()


class TestFreeRiderEffectDefinition:
    def test_ctc_does_not_suffer_fre_on_figure1(self, figure1, figure1_index, figure1_query):
        """Proposition 1 instantiated: merging the CTC with the query-independent
        4-truss around q3/p1/p2/p3 strictly increases the diameter."""
        result = BasicCTC(figure1_index).search(figure1_query)
        query_independent = figure1.subgraph({"q3", "p1", "p2", "p3"})
        assert not suffers_free_rider_effect(
            figure1, result.graph, query_independent, figure1_query
        )

    def test_contained_optimum_is_not_counted_as_fre(self, figure1, figure1_index, figure1_query):
        """When the query-independent optimum is already inside the community
        (the p-clique lives inside G0), no *new* free riders are added and the
        check reports False by convention."""
        g0, _k = find_maximal_connected_truss(figure1_index, figure1_query)
        query_independent = figure1.subgraph({"q3", "p1", "p2", "p3"})
        assert not suffers_free_rider_effect(figure1, g0, query_independent, figure1_query)

    def test_loose_community_does_suffer_fre(self):
        """A loose, path-shaped 'community' absorbs a dense clique for free:
        the union's diameter does not exceed the community's own diameter, so
        Definition 6 flags the free-rider effect."""
        from repro.graph.simple_graph import UndirectedGraph

        graph = UndirectedGraph(
            [(0, 1), (1, 2), (2, 3), (3, 4), (2, 5), (2, 6), (2, 7), (5, 6), (5, 7), (6, 7)]
        )
        loose_community = graph.subgraph({0, 1, 2, 3, 4})
        dense_optimum = graph.subgraph({2, 5, 6, 7})
        assert suffers_free_rider_effect(graph, loose_community, dense_optimum, [0, 4])

    def test_subset_optimum_is_not_fre(self, figure1, figure1_index, figure1_query):
        result = BasicCTC(figure1_index).search(figure1_query)
        inside = figure1.subgraph({"q1", "q2", "v1", "v2"})
        assert not suffers_free_rider_effect(figure1, result.graph, inside, figure1_query)

    def test_disconnected_union_is_not_fre(self, figure1, figure1_query):
        community = figure1.subgraph({"q1", "q2", "v1", "v2"})
        far_away = figure1.subgraph({"p1", "p2", "p3"})
        assert not suffers_free_rider_effect(figure1, community, far_away, ["q1", "q2"])
