"""Unit tests for Algorithm 1 (Basic) and its approximation guarantee."""

from __future__ import annotations

import pytest

from repro.ctc.basic import BasicCTC, basic_ctc_search
from repro.exceptions import NoCommunityFoundError
from repro.graph.components import is_connected
from repro.graph.generators import complete_graph
from repro.graph.simple_graph import UndirectedGraph
from repro.graph.traversal import diameter, graph_query_distance
from repro.graph.triangles import all_edge_supports
from repro.trusses.extraction import find_maximal_connected_truss
from repro.trusses.index import TrussIndex


class TestBasicOnPaperExamples:
    def test_example_4_removes_free_riders(self, figure1_index, figure1_query):
        """Basic on Figure 1 returns the Figure 1(b) community (diameter 3)."""
        result = BasicCTC(figure1_index).search(figure1_query)
        assert result.nodes == {"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5"}
        assert result.trussness == 4
        assert result.diameter() == 3
        assert result.query_distance == 3

    def test_result_is_connected_k_truss_containing_query(self, figure1_index, figure1_query):
        result = BasicCTC(figure1_index).search(figure1_query)
        assert result.contains_query()
        assert is_connected(result.graph)
        supports = all_edge_supports(result.graph)
        assert all(value >= result.trussness - 2 for value in supports.values())

    def test_trussness_equals_g0_trussness(self, figure1_index, figure1_query):
        """The approximation preserves the maximum trussness (Section 3.3)."""
        _g0, k = find_maximal_connected_truss(figure1_index, figure1_query)
        result = BasicCTC(figure1_index).search(figure1_query)
        assert result.trussness == k

    def test_single_query_node(self, figure1_index):
        result = BasicCTC(figure1_index).search(["q3"])
        assert "q3" in result.nodes
        assert result.trussness == 4
        # One of the two 4-clique communities around q3 has diameter 1.
        assert result.diameter() <= 2

    def test_figure4_query_keeps_bridge(self, figure4, figure4_query):
        index = TrussIndex(figure4)
        result = BasicCTC(index).search(figure4_query)
        assert result.trussness == 2
        assert result.contains_query()

    def test_extras_record_g0_size(self, figure1_index, figure1_query):
        result = BasicCTC(figure1_index).search(figure1_query)
        assert result.extras["g0_nodes"] == 11
        assert result.extras["timed_out"] is False

    def test_iterations_counted(self, figure1_index, figure1_query):
        result = BasicCTC(figure1_index).search(figure1_query)
        assert result.iterations >= 1


class TestBasicGuarantees:
    def test_two_approximation_on_small_network(self, small_network_index):
        """diam(R) <= 2 * dist(R, Q) <= 2 * diam(H*) (Theorem 3 chain).

        The optimum is unknown, but the chain implies the checkable invariant
        diam(R) <= 2 * dist(R, Q).
        """
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:3]
        try:
            result = BasicCTC(small_network_index).search(query)
        except NoCommunityFoundError:
            pytest.skip("query nodes not in a common truss")
        assert result.diameter() <= 2 * result.query_distance

    def test_query_distance_is_optimal_among_known_trusses(self, figure1_index, figure1_query):
        """Lemma 5: the returned community minimises the graph query distance.

        The CTC of Figure 1(b) (the true optimum) has query distance 3; Basic
        must not return anything with a larger query distance.
        """
        result = BasicCTC(figure1_index).search(figure1_query)
        assert result.query_distance <= 3

    def test_complete_graph_is_returned_whole(self):
        graph = complete_graph(6)
        result = basic_ctc_search(graph, [0, 1])
        assert result.nodes == set(range(6))
        assert result.trussness == 6
        assert result.diameter() == 1

    def test_max_iterations_cap(self, small_network_index):
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:2]
        try:
            result = BasicCTC(small_network_index, max_iterations=1).search(query)
        except NoCommunityFoundError:
            pytest.skip("query nodes not in a common truss")
        assert result.iterations <= 1
        assert result.contains_query()

    def test_time_budget_marks_timeout(self, small_network_index):
        graph = small_network_index.graph
        query = sorted(graph.nodes())[:2]
        try:
            result = BasicCTC(small_network_index, time_budget_seconds=0.0).search(query)
        except NoCommunityFoundError:
            pytest.skip("query nodes not in a common truss")
        assert result.extras["timed_out"] is True
        assert result.contains_query()


class TestBasicEdgeCases:
    def test_disconnected_query_raises(self):
        graph = UndirectedGraph([(1, 2), (2, 3), (1, 3), (7, 8), (8, 9), (7, 9)])
        with pytest.raises(NoCommunityFoundError):
            basic_ctc_search(graph, [1, 7])

    def test_query_of_whole_triangle(self, triangle):
        result = basic_ctc_search(triangle, [0, 1, 2])
        assert result.nodes == {0, 1, 2}
        assert result.trussness == 3

    def test_wrapper_builds_index(self, figure1, figure1_query):
        result = basic_ctc_search(figure1, figure1_query)
        assert result.method == "basic"
        assert result.trussness == 4

    def test_result_query_distance_consistent(self, figure1_index, figure1_query):
        result = BasicCTC(figure1_index).search(figure1_query)
        assert result.query_distance == graph_query_distance(result.graph, figure1_query)

    def test_never_returns_larger_diameter_than_g0(self, figure1_index, figure1_query):
        g0, _k = find_maximal_connected_truss(figure1_index, figure1_query)
        result = BasicCTC(figure1_index).search(figure1_query)
        assert result.diameter() <= diameter(g0)
