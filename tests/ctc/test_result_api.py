"""Unit tests for CommunityResult and the top-level search() facade."""

from __future__ import annotations

import pytest

from repro.ctc.api import available_methods, build_index, search
from repro.ctc.result import CommunityResult
from repro.exceptions import ConfigurationError, NoCommunityFoundError, QueryError
from repro.graph.generators import complete_graph
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.index import TrussIndex


class TestCommunityResult:
    def test_basic_accessors(self, k4):
        result = CommunityResult(graph=k4, query=(0, 1), trussness=4, method="test")
        assert result.nodes == {0, 1, 2, 3}
        assert result.num_nodes == 4
        assert result.num_edges == 6
        assert result.density() == pytest.approx(1.0)
        assert result.diameter() == 1
        assert result.contains_query()

    def test_contains_query_false_when_node_missing(self, k4):
        result = CommunityResult(graph=k4, query=(0, 99), trussness=4, method="test")
        assert not result.contains_query()

    def test_recompute_query_distance(self, path4):
        result = CommunityResult(graph=path4, query=(0,), trussness=2, method="test")
        assert result.recompute_query_distance() == 3
        assert result.query_distance == 3

    def test_summary_keys(self, k4):
        result = CommunityResult(graph=k4, query=(0,), trussness=4, method="test")
        summary = result.summary()
        assert summary["method"] == "test"
        assert summary["num_nodes"] == 4
        assert summary["trussness"] == 4

    def test_repr(self, k4):
        result = CommunityResult(graph=k4, query=(0,), trussness=4, method="test")
        assert "method='test'" in repr(result)


class TestSearchFacade:
    def test_available_methods(self):
        methods = available_methods()
        assert set(methods) == {"basic", "bulk-delete", "lctc", "truss", "mdc", "qdc"}

    @pytest.mark.parametrize("method", ["basic", "bulk-delete", "lctc", "truss", "mdc", "qdc"])
    def test_every_method_runs_on_figure1(self, figure1, figure1_query, method):
        result = search(figure1, figure1_query, method=method, eta=50)
        assert result.method == method
        assert result.contains_query()
        assert result.num_nodes >= 3

    def test_accepts_prebuilt_index(self, figure1, figure1_query):
        index = build_index(figure1)
        assert isinstance(index, TrussIndex)
        result = search(index, figure1_query, method="bulk-delete")
        assert result.trussness == 4

    def test_default_method_is_lctc(self, figure1, figure1_query):
        result = search(figure1, figure1_query, eta=50)
        assert result.method == "lctc"

    def test_unknown_method_raises(self, figure1, figure1_query):
        with pytest.raises(ConfigurationError):
            search(figure1, figure1_query, method="magic")

    def test_empty_query_raises(self, figure1):
        with pytest.raises(QueryError):
            search(figure1, [], method="lctc")

    def test_disconnected_query_raises(self):
        graph = UndirectedGraph([(1, 2), (2, 3), (1, 3), (7, 8), (8, 9), (7, 9)])
        with pytest.raises(NoCommunityFoundError):
            search(graph, [1, 7], method="truss")

    def test_max_trussness_cap_via_facade(self, figure1, figure1_query):
        result = search(figure1, figure1_query, method="lctc", eta=50, max_trussness_k=3)
        assert result.trussness <= 3

    def test_quickstart_docstring_example(self):
        graph = complete_graph(4)
        result = search(graph, [0, 1], method="bulk-delete")
        assert result.trussness == 4

    def test_package_level_reexports(self):
        import repro

        assert repro.search is search
        assert repro.available_methods() == available_methods()
        assert repro.__version__
