"""Unit tests for the query-distance snapshots used by the peeling loops."""

from __future__ import annotations

from repro.ctc.query_distance import QueryDistanceSnapshot, compute_snapshot
from repro.graph.generators import path_graph
from repro.graph.simple_graph import UndirectedGraph


class TestComputeSnapshot:
    def test_distances_match_definition(self, figure1):
        snapshot = compute_snapshot(figure1, ["q2", "q3"])
        assert snapshot.distances["v2"] == 2
        assert snapshot.distances["q2"] == 2  # dist(q2, q3) = 2
        assert snapshot.distances["p1"] == 3

    def test_graph_query_distance(self, figure1):
        grey = figure1.subgraph(
            {"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5", "p1", "p2", "p3"}
        )
        snapshot = compute_snapshot(grey, ["q1", "q2", "q3"])
        assert snapshot.graph_query_distance == 4  # dist(p1, q1) inside G0

    def test_empty_graph(self):
        snapshot = compute_snapshot(UndirectedGraph(), [])
        assert snapshot.graph_query_distance == 0.0
        assert snapshot.farthest_vertex() is None


class TestFarthestVertex:
    def test_example_4_farthest_is_a_p_node(self, figure1):
        grey = figure1.subgraph(
            {"q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5", "p1", "p2", "p3"}
        )
        snapshot = compute_snapshot(grey, ["q1", "q2", "q3"])
        assert snapshot.farthest_vertex() in {"p1", "p2", "p3"}

    def test_ties_prefer_non_query_nodes(self):
        graph = path_graph(3)  # 0 - 1 - 2
        snapshot = compute_snapshot(graph, [0, 2])
        # Both 0 and 2 have query distance 2; node 1 has distance 1.  The
        # farthest is a query node here, which the paper's algorithm allows.
        assert snapshot.farthest_vertex() in {0, 2}

    def test_deterministic_tie_break(self, k5):
        first = compute_snapshot(k5, [0]).farthest_vertex()
        second = compute_snapshot(k5, [0]).farthest_vertex()
        assert first == second


class TestVerticesAtLeast:
    def test_example_7_bulk_set(self, figure1, figure1_index, figure1_query):
        """L = {q1, q3, p1, p2, p3} for d - 1 = 3 on G0 (Example 7)."""
        from repro.trusses.extraction import find_maximal_connected_truss

        community, _k = find_maximal_connected_truss(figure1_index, figure1_query)
        snapshot = compute_snapshot(community, figure1_query)
        assert snapshot.graph_query_distance == 4
        bulk = snapshot.vertices_at_least(3)
        assert bulk == {"q1", "q3", "p1", "p2", "p3"}

    def test_exclude_query_variant(self, figure1, figure1_index, figure1_query):
        from repro.trusses.extraction import find_maximal_connected_truss

        community, _k = find_maximal_connected_truss(figure1_index, figure1_query)
        snapshot = compute_snapshot(community, figure1_query)
        bulk = snapshot.vertices_at_least(3, exclude_query=True)
        assert bulk == {"p1", "p2", "p3"}

    def test_threshold_above_everything(self, k4):
        snapshot = compute_snapshot(k4, [0])
        assert snapshot.vertices_at_least(10) == set()


class TestUnreachable:
    def test_has_unreachable_vertex(self):
        graph = UndirectedGraph([(1, 2), (3, 4)])
        snapshot = compute_snapshot(graph, [1])
        assert snapshot.has_unreachable_vertex()

    def test_all_reachable(self, k4):
        snapshot = compute_snapshot(k4, [0])
        assert not snapshot.has_unreachable_vertex()

    def test_repr(self, k4):
        snapshot = compute_snapshot(k4, [0])
        assert "QueryDistanceSnapshot" in repr(snapshot)
