"""Property-based equivalence: CSR-native kernels == the dict-path algorithms.

The acceptance contract of the kernel layer (:mod:`repro.ctc.kernels`) is
that for any graph and any query, running Basic, BulkDelete, LCTC or the
Truss baseline on an :class:`EngineSnapshot`'s arrays returns *exactly* the
community the dict-path classes return — same node set, same edge set, same
trussness, same query distance, same diameter, same iteration count, and
the same ``NoCommunityFoundError`` / ``QueryError`` outcomes — so the
engine's ``kernel`` knob is purely a performance decision.  (Extends the
``tests/trusses/test_delta_equivalence.py`` pattern from snapshot
maintenance to query execution.)
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ctc.api import search
from repro.ctc.basic import BasicCTC
from repro.ctc.bulk_delete import BulkDeleteCTC
from repro.ctc.kernels import QueryKernel, kernel_of
from repro.engine import CTCEngine
from repro.exceptions import NoCommunityFoundError, QueryError
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_graph,
    relaxed_caveman_graph,
)
from repro.trusses.index import TrussIndex

common_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Method matrix: (method name, search() keyword arguments).
METHODS = (
    ("basic", {}),
    ("bulk-delete", {}),
    ("lctc", {"eta": 6}),
    ("lctc", {"eta": 40, "gamma": 0.0}),
    ("lctc", {"eta": 40, "max_trussness_k": 3}),
    ("truss", {}),
)


@st.composite
def graphs_and_queries(draw):
    """Random graphs plus a small stream of random queries against them."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    kind = draw(st.sampled_from(["er", "caveman", "complete"]))
    if kind == "er":
        graph = erdos_renyi_graph(
            draw(st.integers(min_value=4, max_value=24)),
            draw(st.floats(min_value=0.15, max_value=0.7)),
            seed=seed,
        )
    elif kind == "caveman":
        graph = relaxed_caveman_graph(
            draw(st.integers(min_value=2, max_value=4)),
            draw(st.integers(min_value=3, max_value=6)),
            draw(st.floats(min_value=0.0, max_value=0.4)),
            seed=seed,
        )
    else:
        graph = complete_graph(draw(st.integers(min_value=3, max_value=8)))
    if draw(st.booleans()):
        graph.add_node("isolated")  # exercises the vertex-trussness < 2 paths
    nodes = sorted(graph.nodes(), key=repr)
    queries = draw(
        st.lists(
            st.lists(
                st.sampled_from(nodes), min_size=1, max_size=4, unique=True
            ),
            min_size=1,
            max_size=4,
        )
    )
    return graph, queries


def outcome(target, query, method, **kwargs):
    """Run one search, normalizing result/exception into a comparable value."""
    try:
        result = search(target, query, method=method, **kwargs)
    except (NoCommunityFoundError, QueryError) as exc:
        return (type(exc).__name__, str(exc))
    return {
        "nodes": frozenset(result.nodes),
        "edges": frozenset(result.graph.edges()),
        "trussness": result.trussness,
        "query_distance": result.query_distance,
        "diameter": result.diameter(),
        "iterations": result.iterations,
        "query": result.query,
        "extras": {
            key: value
            for key, value in result.extras.items()
            if key != "timed_out"  # timing-dependent by design
        },
    }


class TestKernelEquivalence:
    @common_settings
    @given(data=graphs_and_queries())
    def test_kernels_match_dict_path(self, data):
        """Every method, every query: snapshot kernels == dict-path search."""
        graph, queries = data
        index = TrussIndex(graph)
        snapshot = CTCEngine(graph).snapshot()
        for query in queries:
            for method, kwargs in METHODS:
                expected = outcome(index, query, method, **kwargs)
                actual = outcome(snapshot, query, method, **kwargs)
                assert actual == expected, (method, query, kwargs)
        # The kernel path never needs the dict index.
        assert not snapshot.has_index()

    @common_settings
    @given(data=graphs_and_queries())
    def test_kernel_dict_knob_is_pure_performance(self, data):
        """kernel='csr' and kernel='dict' agree through the engine facade."""
        graph, queries = data
        engine = CTCEngine(graph)
        for query in queries[:2]:
            via_csr = outcome(engine, query, "lctc", eta=10, kernel="csr")
            via_dict = outcome(engine, query, "lctc", eta=10, kernel="dict")
            assert via_csr == via_dict


class TestBulkDeleteKnobs:
    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=500),
        threshold_offset=st.sampled_from([0, 1]),
        batch_limit=st.sampled_from([None, 1, 3]),
    )
    def test_class_level_knobs_match(self, seed, threshold_offset, batch_limit):
        """threshold_offset / batch_limit behave identically on both paths."""
        graph = erdos_renyi_graph(18, 0.4, seed=seed)
        index = TrussIndex(graph)
        snapshot = CTCEngine(graph).snapshot()
        query = sorted(graph.nodes())[:2]
        via_dict = BulkDeleteCTC(
            index, threshold_offset=threshold_offset, batch_limit=batch_limit
        ).search(query)
        via_kernel = BulkDeleteCTC(
            snapshot, threshold_offset=threshold_offset, batch_limit=batch_limit
        ).search(query)
        assert via_kernel.nodes == via_dict.nodes
        assert set(via_kernel.graph.edges()) == set(via_dict.graph.edges())
        assert via_kernel.trussness == via_dict.trussness
        assert via_kernel.iterations == via_dict.iterations


class TestKernelDetails:
    def test_max_iterations_parity(self):
        graph = erdos_renyi_graph(20, 0.4, seed=42)
        index = TrussIndex(graph)
        snapshot = CTCEngine(graph).snapshot()
        for cap in (0, 1, 2):
            via_dict = BasicCTC(index, max_iterations=cap).search([0, 1])
            via_kernel = BasicCTC(snapshot, max_iterations=cap).search([0, 1])
            assert via_kernel.nodes == via_dict.nodes
            assert via_kernel.iterations == via_dict.iterations <= cap

    def test_time_budget_reports_timed_out_flag(self):
        snapshot = CTCEngine(erdos_renyi_graph(20, 0.4, seed=1)).snapshot()
        result = BasicCTC(snapshot, time_budget_seconds=1e9).search([0, 1])
        assert result.extras["timed_out"] is False
        exhausted = BasicCTC(snapshot, time_budget_seconds=0.0).search([0, 1])
        assert exhausted.extras["timed_out"] is True
        assert exhausted.contains_query()

    def test_unknown_kernel_rejected(self):
        engine = CTCEngine(complete_graph(4))
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            search(engine, [0], method="lctc", kernel="simd")

    def test_kernel_of_dispatch_seam(self):
        graph = complete_graph(5)
        snapshot = CTCEngine(graph).snapshot()
        assert isinstance(kernel_of(snapshot), QueryKernel)
        assert kernel_of(TrussIndex(graph)) is None
        assert kernel_of(graph) is None
        kernel = snapshot.kernel
        assert kernel_of(kernel) is kernel

    def test_baselines_route_through_snapshot_graph(self):
        graph = erdos_renyi_graph(15, 0.4, seed=9)
        snapshot = CTCEngine(graph).snapshot()
        for method in ("mdc", "qdc"):
            via_snapshot = search(snapshot, [0, 1], method=method)
            direct = search(graph, [0, 1], method=method)
            assert via_snapshot.nodes == direct.nodes
        # Baselines read snapshot.graph directly; no dict index is forced.
        assert not snapshot.has_index()

    def test_array_peel_forced_through_search_matches_dict_index(self, monkeypatch):
        """With the array threshold floored, every snapshot search peels on
        masks + incidence — and still matches the dict-index path exactly."""
        import repro.ctc.kernels.peeling as peeling

        monkeypatch.setattr(peeling, "DEFAULT_ARRAY_THRESHOLD", 0)
        graph = relaxed_caveman_graph(3, 6, 0.3, seed=11)
        index = TrussIndex(graph)
        snapshot = CTCEngine(graph).snapshot()
        for query in ([0, 1], [5], [2, 9, 14]):
            for method, kwargs in METHODS:
                assert outcome(snapshot, query, method, **kwargs) == outcome(
                    index, query, method, **kwargs
                ), (method, query)


class TestPeelEngineEquivalence:
    """The array peel engine == the dict peel engine, bit for bit."""

    @common_settings
    @given(data=graphs_and_queries())
    def test_array_vs_dict_peel_all_methods(self, data):
        from repro.ctc.kernels import search as kernel_search

        graph, queries = data
        kernel = CTCEngine(graph).snapshot().kernel
        runs = (
            (kernel_search.basic_search, {}),
            (kernel_search.bulk_delete_search, {}),
            (kernel_search.bulk_delete_search, {"batch_limit": 2}),
            (kernel_search.lctc_search, {"eta": 8, "gamma": 1.0}),
        )
        for query in queries:
            for function, kwargs in runs:
                results = {}
                for engine in ("dict", "array"):
                    try:
                        result = function(kernel, query, peel_engine=engine, **kwargs)
                    except (NoCommunityFoundError, QueryError) as exc:
                        results[engine] = (type(exc).__name__, str(exc))
                        continue
                    results[engine] = (
                        frozenset(result.nodes),
                        frozenset(result.graph.edges()),
                        result.trussness,
                        result.query_distance,
                        result.iterations,
                    )
                assert results["array"] == results["dict"], (function.__name__, query, kwargs)

    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=300),
        cap=st.sampled_from([0, 1, 3]),
    )
    def test_max_iterations_parity_across_engines(self, seed, cap):
        from repro.ctc.kernels.search import basic_search, bulk_delete_search

        kernel = CTCEngine(erdos_renyi_graph(20, 0.4, seed=seed)).snapshot().kernel
        for function in (basic_search, bulk_delete_search):
            via_dict = function(kernel, [0, 1], max_iterations=cap, peel_engine="dict")
            via_array = function(kernel, [0, 1], max_iterations=cap, peel_engine="array")
            assert via_array.nodes == via_dict.nodes
            assert via_array.iterations == via_dict.iterations <= cap

    def test_timeout_parity_across_engines(self):
        from repro.ctc.kernels.search import basic_search

        kernel = CTCEngine(erdos_renyi_graph(20, 0.4, seed=1)).snapshot().kernel
        for engine in ("dict", "array"):
            exhausted = basic_search(
                kernel, [0, 1], time_budget_seconds=0.0, peel_engine=engine
            )
            assert exhausted.extras["timed_out"] is True
            assert exhausted.contains_query()
            relaxed = basic_search(
                kernel, [0, 1], time_budget_seconds=1e9, peel_engine=engine
            )
            assert relaxed.extras["timed_out"] is False
        # A zero budget freezes both engines after the same first iteration.
        dict_frozen = basic_search(kernel, [0, 1], time_budget_seconds=0.0, peel_engine="dict")
        array_frozen = basic_search(kernel, [0, 1], time_budget_seconds=0.0, peel_engine="array")
        assert array_frozen.nodes == dict_frozen.nodes
        assert array_frozen.iterations == dict_frozen.iterations == 0

    def test_unknown_peel_engine_rejected(self):
        from repro.ctc.kernels.peeling import basic_selector, peel

        kernel = CTCEngine(complete_graph(5)).snapshot().kernel
        with pytest.raises(ValueError):
            peel(
                kernel,
                list(range(5)),
                list(range(10)),
                2,
                [0],
                basic_selector(kernel, [0]),
                start_time=0.0,
                engine="simd",
            )

    def test_threaded_incidence_changes_nothing(self):
        """peel(incidence=...) (the FindG0/LCTC supports threading) is
        invisible in the outcome, on both engines."""
        import time as time_module

        from repro.ctc.kernels.find_g0 import find_g0
        from repro.ctc.kernels.peeling import bulk_delete_selector, peel
        from repro.graph.csr_triangles import subset_incidence

        import numpy as np

        kernel = CTCEngine(erdos_renyi_graph(30, 0.35, seed=7)).snapshot().kernel
        g0_nodes, g0_edges, k = find_g0(kernel, [0, 1])
        threaded = subset_incidence(
            kernel.ensure_incidence(), np.asarray(g0_edges, dtype=np.int64)
        )
        outcomes = []
        for engine in ("dict", "array"):
            for incidence in (None, threaded):
                run = peel(
                    kernel,
                    g0_nodes,
                    g0_edges,
                    k,
                    [0, 1],
                    bulk_delete_selector(kernel, [0, 1]),
                    start_time=time_module.perf_counter(),
                    engine=engine,
                    incidence=incidence,
                )
                outcomes.append(
                    (run.node_ids, run.edge_ids, run.query_distance, run.iterations)
                )
        assert all(entry == outcomes[0] for entry in outcomes[1:])

    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=300),
        limit=st.integers(min_value=1, max_value=6),
    )
    def test_top_k_selection_matches_full_sort(self, seed, limit):
        """The argpartition top-K equals sorted(..., reverse=True)[:limit]."""
        import numpy as np

        from repro.ctc.kernels.peeling import _top_k_by_distance_rank

        rng = np.random.default_rng(seed)
        size = int(rng.integers(limit + 1, 25))
        nodes = np.arange(size, dtype=np.int64)
        distances = rng.integers(0, 5, size=size).astype(np.float64)
        distances[rng.random(size) < 0.2] = float("inf")
        ranks = rng.permutation(size).astype(np.int64)
        picked = _top_k_by_distance_rank(nodes, distances, ranks, limit)
        assert picked.size == limit
        expected = sorted(
            nodes.tolist(),
            key=lambda node: (distances[node], ranks[node]),
            reverse=True,
        )[:limit]
        assert set(picked.tolist()) == set(expected)

    def test_masked_find_g0_strategy_matches_scalar(self, monkeypatch):
        """LEVEL_SEARCH_THRESHOLD floored: the binary-search masked strategy
        must return the same (k, G0) the scalar union-find sweep does."""
        import importlib

        # The package re-exports find_g0 the *function*, so reach the
        # module through importlib to monkeypatch its threshold.
        find_g0_mod = importlib.import_module("repro.ctc.kernels.find_g0")

        for seed in range(12):
            graph = erdos_renyi_graph(22, 0.35, seed=seed)
            graph.add_node("isolated")
            kernel = CTCEngine(graph).snapshot().kernel
            for query in ([0, 1], [4], [2, 7, 13], [0, "isolated"]):
                query_ids = [kernel.csr.node_id(node) for node in query]
                results = {}
                for name, threshold in (("scalar", 10**9), ("masked", 0)):
                    monkeypatch.setattr(
                        find_g0_mod, "LEVEL_SEARCH_THRESHOLD", threshold
                    )
                    try:
                        results[name] = find_g0_mod.find_g0(kernel, query_ids)
                    except NoCommunityFoundError as exc:
                        results[name] = (type(exc).__name__, str(exc))
                assert results["masked"] == results["scalar"], (seed, query)

    def test_masked_steiner_sweep_matches_scalar(self, monkeypatch):
        """MASKED_SWEEP_THRESHOLD floored: the ordered masked witness-path
        BFS must recover the exact paths (and hence trees) of the scalar
        queue — and the whole LCTC pipeline must still match the dict path."""
        import repro.ctc.kernels.steiner as steiner_mod

        for seed in range(8):
            graph = relaxed_caveman_graph(3, 7, 0.3, seed=seed)
            kernel = CTCEngine(graph).snapshot().kernel
            index = TrussIndex(graph)
            for query in ([0, 1], [2, 9, 14], [5]):
                query_ids = [kernel.csr.node_id(node) for node in query]
                trees = {}
                for name, threshold in (("scalar", 10**9), ("masked", 0)):
                    monkeypatch.setattr(
                        steiner_mod, "MASKED_SWEEP_THRESHOLD", threshold
                    )
                    trees[name] = steiner_mod.build_truss_steiner_tree(
                        kernel, query_ids, gamma=0.3
                    )
                assert trees["masked"] == trees["scalar"], (seed, query)
                # End-to-end: forced-masked LCTC == dict-path LCTC.
                monkeypatch.setattr(steiner_mod, "MASKED_SWEEP_THRESHOLD", 0)
                snapshot = CTCEngine(graph).snapshot()
                assert outcome(snapshot, query, "lctc", eta=10) == outcome(
                    index, query, "lctc", eta=10
                ), (seed, query)

    def test_lctc_incidence_reuse_matches_all_paths(self, monkeypatch):
        """LCTC re-decomposing its expansion on the snapshot's triangle
        incidence (instead of enumerating the subgraph afresh) changes
        nothing observable, against both the fresh-kernel and dict paths."""
        import repro.ctc.kernels.search as kernel_search

        # Force the reuse branch even on small test expansions.
        monkeypatch.setattr(kernel_search, "DEFAULT_VECTOR_THRESHOLD", 1)
        graph = erdos_renyi_graph(35, 0.25, seed=3)
        engine = CTCEngine(graph, decomp="vector")
        snapshot = engine.snapshot()
        assert snapshot.kernel.incidence is not None
        bare_kernel = QueryKernel(snapshot.csr, snapshot.trussness)
        assert bare_kernel.incidence is None
        index = TrussIndex(graph)
        for query in ([0, 1], [5, 9, 12], [3]):
            for eta in (10, 100):
                reused = kernel_search.lctc_search(snapshot.kernel, query, eta=eta, gamma=3.0)
                fresh = kernel_search.lctc_search(bare_kernel, query, eta=eta, gamma=3.0)
                via_dict = outcome(index, query, "lctc", eta=eta)
                assert reused.nodes == fresh.nodes
                assert reused.trussness == fresh.trussness
                assert outcome(snapshot, query, "lctc", eta=eta) == via_dict
