"""Unit tests for truss-distance Steiner trees (Definition 7, Section 5.2)."""

from __future__ import annotations

import pytest

from repro.ctc.steiner import (
    build_truss_steiner_tree,
    minimum_trussness_of_tree,
    truss_distance_between,
    truss_distance_closure,
)
from repro.exceptions import QueryError
from repro.graph.components import is_connected
from repro.graph.simple_graph import UndirectedGraph
from repro.trusses.index import TrussIndex


class TestTrussDistance:
    def test_section_5_2_worked_example(self, figure1_index):
        """With gamma = 3 the penalty for touching the trussness-2 bridge is
        3 * (4 - 2) = 6, so the best q2 -> q3 path stays on trussness-4 edges
        (q2 - v5 - q3, two hops, zero penalty)."""
        value, path = truss_distance_between(figure1_index, "q2", "q3", gamma=3.0)
        assert value == 2
        assert path is not None
        assert "t" not in path

    def test_zero_gamma_reduces_to_hop_distance(self, figure1_index):
        value, path = truss_distance_between(figure1_index, "q1", "q3", gamma=0.0)
        assert value == 2  # q1 - t - q3 is the shortest hop path
        assert path == ["q1", "t", "q3"]

    def test_large_gamma_avoids_weak_bridge(self, figure1_index):
        value, path = truss_distance_between(figure1_index, "q1", "q3", gamma=3.0)
        assert path is not None
        assert "t" not in path
        assert value == 3  # three hops through trussness-4 edges, no penalty

    def test_same_node_distance_zero(self, figure1_index):
        value, path = truss_distance_between(figure1_index, "q1", "q1", gamma=3.0)
        assert value == 0.0
        assert path == ["q1"]

    def test_disconnected_nodes(self):
        graph = UndirectedGraph([(1, 2), (3, 4)])
        index = TrussIndex(graph)
        value, path = truss_distance_between(index, 1, 3, gamma=1.0)
        assert value == float("inf")
        assert path is None

    def test_figure4_prefers_intra_clique_paths(self, figure4):
        index = TrussIndex(figure4)
        # Within one clique the distance is 1 hop with zero penalty.
        value, path = truss_distance_between(index, "q1", "v1", gamma=3.0)
        assert value == 1
        # Across the bridge the penalty 3 * (4 - 2) = 6 is unavoidable.
        cross_value, cross_path = truss_distance_between(index, "q1", "q2", gamma=3.0)
        assert cross_path is not None
        assert cross_value == pytest.approx(3 + 6)

    def test_closure_contains_all_pairs(self, figure1_index):
        closure = truss_distance_closure(figure1_index, ["q1", "q2", "q3"], gamma=3.0)
        assert len(closure) == 3
        for (_u, _v), (value, path) in closure.items():
            assert value >= 1
            assert len(path) >= 2


class TestSteinerTree:
    def test_tree_spans_terminals_and_is_a_tree(self, figure1_index):
        tree = build_truss_steiner_tree(figure1_index, ["q1", "q2", "q3"], gamma=3.0)
        for terminal in ("q1", "q2", "q3"):
            assert tree.has_node(terminal)
        assert is_connected(tree)
        assert tree.number_of_edges() == tree.number_of_nodes() - 1

    def test_tree_avoids_low_trussness_bridge(self, figure1_index):
        """The Section 5.2 discussion: the tree through t (trussness 2) must
        lose to the tree through v4/v5 (trussness 4) under the truss distance."""
        tree = build_truss_steiner_tree(figure1_index, ["q1", "q2", "q3"], gamma=3.0)
        assert not tree.has_node("t")
        assert minimum_trussness_of_tree(figure1_index, tree) == 4

    def test_gamma_zero_may_use_the_shortcut(self, figure1_index):
        tree = build_truss_steiner_tree(figure1_index, ["q1", "q3"], gamma=0.0)
        # Pure hop distance: q1 - t - q3 (length 2) beats the length-3 path.
        assert tree.has_node("t")

    def test_single_terminal(self, figure1_index):
        tree = build_truss_steiner_tree(figure1_index, ["q2"], gamma=3.0)
        assert tree.node_set() == {"q2"}
        assert tree.number_of_edges() == 0

    def test_two_adjacent_terminals(self, figure1_index):
        tree = build_truss_steiner_tree(figure1_index, ["q1", "q2"], gamma=3.0)
        assert tree.edge_set() == {("q1", "q2")}

    def test_empty_terminals_raise(self, figure1_index):
        with pytest.raises(QueryError):
            build_truss_steiner_tree(figure1_index, [], gamma=3.0)

    def test_disconnected_terminals_raise(self):
        graph = UndirectedGraph([(1, 2), (2, 3), (5, 6), (6, 7)])
        index = TrussIndex(graph)
        with pytest.raises(QueryError):
            build_truss_steiner_tree(index, [1, 5], gamma=1.0)

    def test_no_nonterminal_leaves(self, small_network_index):
        graph = small_network_index.graph
        terminals = sorted(graph.nodes())[:4]
        tree = build_truss_steiner_tree(small_network_index, terminals, gamma=3.0)
        for node in tree.nodes():
            if node not in terminals:
                assert tree.degree(node) >= 2

    def test_minimum_trussness_of_edgeless_tree(self, figure1_index):
        tree = UndirectedGraph()
        tree.add_node("q2")
        assert minimum_trussness_of_tree(figure1_index, tree) == 4
