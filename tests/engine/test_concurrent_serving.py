"""Stress and property tests for the concurrent serving layer.

Three contracts under test:

* **Snapshot isolation** — N reader threads (head + time-travel leases)
  race a writer streaming :class:`EdgeChurn`; every read must be
  bit-identical to a fresh single-threaded engine replayed to the leased
  version (no torn reads), and the writer must never be blocked.
* **Epoch-pinned reclamation** — the snapshot LRU defers eviction of
  leased versions: a lease keeps its version readable even after the
  delta log trims past it, and reclamation happens on release.
* **Serving front-ends** — thread-pool batches, the asyncio facade, and
  shard-per-process workers all answer exactly like a plain engine, with
  the documented cross-shard refusals in process mode.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.datasets.queries import EdgeChurn
from repro.engine import CTCEngine, ServingEngine
from repro.exceptions import (
    ConfigurationError,
    CrossShardMutationError,
    NoCommunityFoundError,
    QueryError,
    VersionEvictedError,
)
from repro.graph.generators import erdos_renyi_graph
from repro.graph.shm import SharedArrayBundle
from repro.graph.simple_graph import UndirectedGraph

QUERY = [0, 1]
SEARCH = dict(method="lctc", eta=20)


def fingerprint(result):
    return (frozenset(result.nodes), result.trussness, result.num_edges)


class _Recorder:
    """EdgeChurn target that journals the op stream alongside the engine.

    Only the single writer thread mutates, so ``ops[:v]`` replayed onto the
    initial graph reproduces the store exactly at version ``v``.
    """

    def __init__(self, engine):
        self._engine = engine
        self.ops: list[tuple[str, object, object]] = []

    @property
    def graph(self):
        return self._engine.graph

    def add_edge(self, u, v):
        self._engine.add_edge(u, v)
        self.ops.append(("add", u, v))

    def remove_edge(self, u, v):
        self._engine.remove_edge(u, v)
        self.ops.append(("remove", u, v))


def _replay(initial: UndirectedGraph, ops, version: int) -> UndirectedGraph:
    graph = initial.copy()
    for op, u, v in ops[:version]:
        if op == "add":
            graph.add_edge(u, v)
        else:
            graph.remove_edge(u, v)
    return graph


class TestSnapshotIsolationUnderChurn:
    def test_racing_readers_match_single_threaded_replay(self):
        initial = erdos_renyi_graph(40, 0.2, seed=11)
        engine = CTCEngine(initial.copy(), cache_size=3, delta_log_limit=256)
        recorder = _Recorder(engine)
        churn = EdgeChurn(recorder, seed=11, protect=QUERY)

        observations: list[tuple[int, tuple]] = []
        errors: list[Exception] = []
        done = threading.Event()

        def writer():
            try:
                for _ in range(40):
                    churn.step()
            finally:
                done.set()

        def reader(seed: int):
            rng = random.Random(seed)
            while True:
                finished = done.is_set()
                try:
                    if rng.random() < 0.5:
                        version = None  # head read
                    else:
                        lo, hi = engine.retained_versions()
                        version = rng.randint(lo, hi)  # time-travel read
                    with engine.lease(version) as lease:
                        result = lease.query(QUERY, **SEARCH)
                        observations.append((lease.version, fingerprint(result)))
                except VersionEvictedError:
                    pass  # the log trimmed past the version we rolled; fine
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)
                    return
                if finished:
                    return

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader, args=(100 + n,)) for n in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()

        assert not errors, errors
        assert engine.version == 40  # the writer was never blocked
        assert observations

        by_version: dict[int, set] = {}
        for version, fp in observations:
            by_version.setdefault(version, set()).add(fp)
        # No torn reads: one fingerprint per version, ever.
        for version, fps in by_version.items():
            assert len(fps) == 1, f"torn read at version {version}"
        # Bit-identical to a fresh single-threaded engine at that version.
        sample = sorted(by_version)
        sample = sample[:4] + sample[-4:]
        for version in dict.fromkeys(sample):
            oracle = CTCEngine(_replay(initial, recorder.ops, version))
            expected = fingerprint(oracle.query(QUERY, **SEARCH))
            assert by_version[version] == {expected}

    def test_concurrent_head_misses_build_once(self):
        engine = CTCEngine(erdos_renyi_graph(40, 0.2, seed=11))
        engine.add_edge(900, 901)  # make the head version a cache miss
        results = []
        barrier = threading.Barrier(4)

        def read():
            barrier.wait()
            results.append(engine.snapshot())

        threads = [threading.Thread(target=read) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len({id(snapshot) for snapshot in results}) == 1
        assert engine.stats.misses == 1
        assert engine.stats.full_rebuilds + engine.stats.delta_applies == 1


class TestEpochPinnedReclamation:
    def test_leased_version_survives_eviction_and_log_trim(self):
        engine = CTCEngine(
            erdos_renyi_graph(30, 0.25, seed=5), cache_size=2, delta_log_limit=4
        )
        lease = engine.lease()  # pins version 0
        baseline = fingerprint(lease.query(QUERY, **SEARCH))
        for extra in range(8):
            engine.add_edge(700 + extra, 701 + extra)
            engine.snapshot()  # force cache pressure past cache_size

        lo, _ = engine.retained_versions()
        assert lo > 0  # the delta log trimmed past version 0 ...
        assert 0 in engine.pinned_versions()  # ... but the pin held it
        assert engine.stats.deferred_reclamations >= 1
        assert fingerprint(lease.query(QUERY, **SEARCH)) == baseline
        # Cache-first resolution: the pinned version resolves without the log.
        assert engine.snapshot_at(0) is lease.snapshot

        lease.release()
        assert lease.released
        assert engine.pinned_versions() == []
        with pytest.raises(VersionEvictedError):
            engine.snapshot_at(0)

    def test_release_is_idempotent_and_context_managed(self):
        engine = CTCEngine(erdos_renyi_graph(20, 0.3, seed=2))
        with engine.lease() as lease:
            assert engine.pinned_versions() == [0]
        assert engine.pinned_versions() == []
        lease.release()  # second release is a no-op
        assert engine.stats.leases == 1

    def test_nested_leases_refcount(self):
        engine = CTCEngine(erdos_renyi_graph(20, 0.3, seed=2))
        first = engine.lease()
        second = engine.lease()
        first.release()
        assert engine.pinned_versions() == [0]  # still held by `second`
        second.release()
        assert engine.pinned_versions() == []


class TestThreadServing:
    def test_batch_matches_sequential_engine(self):
        graph = erdos_renyi_graph(40, 0.2, seed=11)
        oracle = CTCEngine(graph.copy())
        queries = [[0, 1], [2, 3], [4, 5], [0, 1]]
        expected = [fingerprint(oracle.query(q, **SEARCH)) for q in queries]
        with ServingEngine(graph, workers=3) as serving:
            got = [fingerprint(r) for r in serving.query_batch(queries, **SEARCH)]
        assert got == expected

    def test_batch_amortizes_snapshot_and_lease(self):
        with ServingEngine(erdos_renyi_graph(40, 0.2, seed=11), workers=2) as serving:
            serving.query_batch([QUERY] * 5, **SEARCH)
            assert serving.stats.batches == 1
            assert serving.stats.queries == 5
            assert serving.stats.coalesced_queries == 4
            assert serving.stats.leases == 1
            serving.query_batch([QUERY] * 3, **SEARCH)
            assert serving.stats.snapshot_reuses == 1  # store never moved

    def test_return_exceptions_keeps_slot_order(self):
        with ServingEngine(erdos_renyi_graph(20, 0.3, seed=2), workers=2) as serving:
            ok, bad = serving.query_batch(
                [QUERY, ["no-such-node"]], return_exceptions=True, **SEARCH
            )
            assert ok.trussness >= 2
            assert isinstance(bad, QueryError)
            with pytest.raises(QueryError):
                serving.query_batch([QUERY, ["no-such-node"]], **SEARCH)

    def test_readers_race_writer_and_land_on_real_versions(self):
        initial = erdos_renyi_graph(40, 0.2, seed=11)
        engine = CTCEngine(initial.copy(), cache_size=4)
        recorder = _Recorder(engine)
        churn = EdgeChurn(recorder, seed=7, protect=QUERY)
        errors: list[Exception] = []
        done = threading.Event()
        with ServingEngine(engine, workers=2) as serving:

            def writer():
                try:
                    for _ in range(25):
                        churn.step()
                finally:
                    done.set()

            def reader():
                while True:
                    finished = done.is_set()
                    try:
                        serving.query_batch([QUERY, QUERY], **SEARCH)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return
                    if finished:
                        return

            threads = [threading.Thread(target=writer)] + [
                threading.Thread(target=reader) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive()
            assert not errors, errors
            assert engine.version == 25
            # Final head read matches a fresh engine over the final store.
            oracle = CTCEngine(_replay(initial, recorder.ops, len(recorder.ops)))
            assert fingerprint(serving.query(QUERY, **SEARCH)) == fingerprint(
                oracle.query(QUERY, **SEARCH)
            )

    def test_time_travel_batches(self):
        engine = CTCEngine(erdos_renyi_graph(30, 0.25, seed=5))
        with ServingEngine(engine, workers=2) as serving:
            before = fingerprint(serving.query(QUERY, **SEARCH))
            engine.add_edge(800, 801)
            pinned = serving.query_batch([QUERY] * 2, at_version=0, **SEARCH)
            assert {fingerprint(r) for r in pinned} == {before}

    def test_async_facade_coalesces_concurrent_queries(self):
        with ServingEngine(erdos_renyi_graph(30, 0.25, seed=5), workers=2) as serving:

            async def fan_out():
                return await asyncio.gather(
                    *(serving.aquery(QUERY, **SEARCH) for _ in range(6))
                )

            results = asyncio.run(fan_out())
            assert len({fingerprint(r) for r in results}) == 1
            assert serving.stats.leases < 6  # the whole point: they coalesced
            assert serving.stats.coalesced_queries >= 1

    def test_async_facade_propagates_query_errors(self):
        with ServingEngine(erdos_renyi_graph(20, 0.3, seed=2), workers=2) as serving:

            async def bad():
                return await serving.aquery(["no-such-node"], **SEARCH)

            with pytest.raises(QueryError):
                asyncio.run(bad())

    def test_rejects_bad_configuration(self):
        graph = erdos_renyi_graph(10, 0.3, seed=1)
        with pytest.raises(ValueError):
            ServingEngine(graph, workers=0)
        with pytest.raises(ValueError):
            ServingEngine(graph, workers=2, mode="fiber")


@pytest.fixture(scope="module")
def two_component_graph():
    graph = UndirectedGraph()
    for base in (0, 100):
        component = erdos_renyi_graph(20, 0.3, seed=4)
        for u, v in component.edges():
            graph.add_edge(base + u, base + v)
    return graph


class TestProcessServing:
    def test_shard_answers_match_unsharded_engine(self, two_component_graph):
        oracle = CTCEngine(two_component_graph.copy())
        queries = [[0, 1], [100, 101], [2, 3], [102, 103]]
        expected = [fingerprint(oracle.query(q, **SEARCH)) for q in queries]
        with ServingEngine(
            two_component_graph, workers=2, mode="process"
        ) as serving:
            assert serving.shard_count == 2
            got = [fingerprint(r) for r in serving.query_batch(queries, **SEARCH)]
            assert got == expected
            assert serving.shard_of(0) != serving.shard_of(100)

    def test_mutations_route_to_the_owning_shard(self, two_component_graph):
        oracle = CTCEngine(two_component_graph.copy())
        with ServingEngine(
            two_component_graph, workers=2, mode="process"
        ) as serving:
            churn_edge = next(
                (u, v)
                for u, v in sorted(two_component_graph.edges(), key=repr)
                if u >= 100 and QUERY[0] not in (u, v)
            )
            for target in (oracle, serving):
                target.remove_edge(*churn_edge)
            got = fingerprint(serving.query([100, 101], **SEARCH))
            assert got == fingerprint(oracle.query([100, 101], **SEARCH))
            # A brand-new component lands on a hash-assigned shard.
            serving.add_edge(900, 901)
            assert serving.shard_of(900) is not None
            assert fingerprint(serving.query([900, 901], **SEARCH)) == fingerprint(
                CTCEngine(_replay(UndirectedGraph(), [("add", 900, 901)], 1)).query(
                    [900, 901], **SEARCH
                )
            )

    def test_cross_shard_query_refused(self, two_component_graph):
        with ServingEngine(
            two_component_graph, workers=2, mode="process"
        ) as serving:
            with pytest.raises(NoCommunityFoundError):
                serving.query([0, 100], **SEARCH)
            assert serving.stats.cross_shard_rejects == 1
            with pytest.raises(QueryError):
                serving.query(["no-such-node"], **SEARCH)
            with pytest.raises(QueryError):
                serving.query([], **SEARCH)

    def test_cross_shard_mutation_refused(self, two_component_graph):
        with ServingEngine(
            two_component_graph, workers=2, mode="process"
        ) as serving:
            with pytest.raises(CrossShardMutationError):
                serving.add_edge(0, 100)

    def test_time_travel_refused(self, two_component_graph):
        with ServingEngine(
            two_component_graph, workers=2, mode="process"
        ) as serving:
            with pytest.raises(ConfigurationError):
                serving.query(QUERY, at_version=0, **SEARCH)

    def test_close_unlinks_shared_memory(self, two_component_graph):
        serving = ServingEngine(two_component_graph, workers=2, mode="process")
        metas = [bundle.meta for bundle in serving._bundles]
        serving.query(QUERY, **SEARCH)
        serving.close()
        serving.close()  # idempotent
        for meta in metas:
            with pytest.raises(FileNotFoundError):
                SharedArrayBundle.attach(meta)

    def test_worker_engines_skip_the_decomposition(self, two_component_graph):
        with ServingEngine(
            two_component_graph, workers=2, mode="process"
        ) as serving:
            serving.query_batch([[0, 1], [100, 101]], **SEARCH)
            totals = serving.engine_stats()
            # The shm-seeded version-0 snapshots serve straight from cache.
            assert totals["full_rebuilds"] == 0
            assert totals["hits"] >= 2


class _ReprCollidingInt(int):
    """An int whose repr collides with a *different* int's repr.

    ``_ReprCollidingInt(21)`` reprs as ``"20"``, so a kwargs dict holding it
    produces the same repr-based aquery group key as ``{"eta": 20}`` while
    comparing unequal — exactly the collision the drainer's equality
    sub-bucketing exists for.
    """

    def __repr__(self):
        return "20"


class TestAsyncFacadeGrouping:
    def test_unhashable_kwarg_values_resolve_instead_of_hanging(self):
        """Regression: a list-valued kwarg used to crash the drainer task
        while building the (formerly tuple-of-items, hashable-only) group
        key, leaving every pending future unresolved — a silent hang.  The
        repr-based key groups any kwargs; the search layer's TypeError for
        the unknown argument then comes back through the future."""
        with ServingEngine(erdos_renyi_graph(20, 0.3, seed=4), workers=2) as serving:

            async def ask():
                return await asyncio.wait_for(
                    serving.aquery(QUERY, method="lctc", bogus_weights=[1, 2, 3]),
                    timeout=30,
                )

            with pytest.raises(TypeError, match="bogus_weights"):
                asyncio.run(ask())

    def test_repr_colliding_kwargs_split_into_separate_batches(self):
        """Two queries whose kwargs repr identically but compare unequal
        must NOT share a batch (one would silently run with the other's
        kwargs).  The drainer sub-buckets each group by dict equality."""
        graph = erdos_renyi_graph(20, 0.3, seed=4)
        colliding = _ReprCollidingInt(21)
        assert repr({"eta": colliding}) == repr({"eta": 20})
        assert {"eta": colliding} != {"eta": 20}
        oracle = CTCEngine(graph.copy())
        with ServingEngine(graph, workers=2) as serving:

            async def fan_out():
                return await asyncio.gather(
                    serving.aquery(QUERY, method="lctc", eta=colliding),
                    serving.aquery(QUERY, method="lctc", eta=20),
                )

            first, second = asyncio.run(fan_out())
            assert serving.stats.batches == 2  # split, not coalesced
            assert fingerprint(first) == fingerprint(
                oracle.query(QUERY, method="lctc", eta=21)
            )
            assert fingerprint(second) == fingerprint(
                oracle.query(QUERY, method="lctc", eta=20)
            )


class TestReturnExceptionsEndToEnd:
    """return_exceptions=True contracts, exercised in BOTH serving modes."""

    def test_thread_mode_all_slots_failing(self):
        with ServingEngine(erdos_renyi_graph(20, 0.3, seed=4), workers=2) as serving:
            results = serving.query_batch(
                [["no-such-node"], []], return_exceptions=True, **SEARCH
            )
            assert len(results) == 2
            assert all(isinstance(result, QueryError) for result in results)
            # The same batch without the flag raises the first failure.
            with pytest.raises(QueryError):
                serving.query_batch([["no-such-node"], []], **SEARCH)

    def test_process_mode_all_slots_failing(self, two_component_graph):
        with ServingEngine(
            two_component_graph, workers=2, mode="process"
        ) as serving:
            results = serving.query_batch(
                [["no-such-node"], [0, 100]], return_exceptions=True, **SEARCH
            )
            assert isinstance(results[0], QueryError)
            assert isinstance(results[1], NoCommunityFoundError)  # cross-shard
            with pytest.raises(QueryError):
                serving.query_batch([["no-such-node"], [0, 100]], **SEARCH)

    def test_process_mode_mixes_rejects_with_successes(self, two_component_graph):
        oracle = CTCEngine(two_component_graph.copy())
        with ServingEngine(
            two_component_graph, workers=2, mode="process"
        ) as serving:
            results = serving.query_batch(
                [[0, 1], [0, 100], [100, 101]], return_exceptions=True, **SEARCH
            )
            assert fingerprint(results[0]) == fingerprint(
                oracle.query([0, 1], **SEARCH)
            )
            assert isinstance(results[1], NoCommunityFoundError)
            assert fingerprint(results[2]) == fingerprint(
                oracle.query([100, 101], **SEARCH)
            )
            assert serving.stats.cross_shard_rejects == 1
